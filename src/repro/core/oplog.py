"""Operation recording.

§3.2: "the base filesystem must record the operation sequence that tracks
the gap between the applications' view and the on-disk state. ...The
recorded operation sequence also reflects the outcome of the operations,
such as the return value, new file descriptors, and new inode numbers."

The log has two parts:

* **entries** — every operation completed since the last durability
  point (journal commit), each with its :class:`~repro.api.OpResult`
  outcome.  This is what constrained replay re-executes.
* **fd registry** — a snapshot of the open-descriptor table taken at the
  last durability point.  Descriptors can long outlive any single commit
  window, so truncating the entries must not lose them; the snapshot is
  the replay engine's starting fd state.

Truncation: when the base commits, everything recorded so far is
reflected on disk, so the entries are discarded and the registry is
re-snapshotted — the paper's "when a file descriptor is closed and the
buffered updates are flushed to disk, the corresponding recorded
operations can be discarded", generalized to the commit boundary that
actually makes updates durable here.

``read`` and ``lseek`` are recorded too: they mutate fd offsets (part of
essential state) and their recorded outcomes give constrained mode its
cross-check material.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import FsOp, OpResult
from repro.basefs.vfs import FdState


@dataclass
class OpRecord:
    """One completed operation and its application-visible outcome."""

    seq: int
    op: FsOp
    outcome: OpResult

    def describe(self) -> str:
        status = self.outcome.errno.name if self.outcome.errno else "ok"
        return f"#{self.seq} {self.op.describe()} -> {status}"


@dataclass
class OpLogStats:
    recorded: int = 0
    truncations: int = 0
    max_entries: int = 0
    max_bytes: int = 0


_FD_SLOT_BYTES = 64
_RECORD_BASE_BYTES = 96


def _record_bytes(record: OpRecord) -> int:
    """Approximate footprint of one record (payloads + fixed overhead)."""
    total = _RECORD_BASE_BYTES
    for value in record.op.args.values():
        if isinstance(value, (bytes, bytearray, str)):
            total += len(value)
    value = record.outcome.value
    if isinstance(value, (bytes, bytearray, str)):
        total += len(value)
    elif isinstance(value, list):
        total += sum(len(str(item)) for item in value)
    return total


@dataclass
class OpLog:
    entries: list[OpRecord] = field(default_factory=list)
    fd_snapshot: dict[int, FdState] = field(default_factory=dict)
    stats: OpLogStats = field(default_factory=OpLogStats)
    _entry_bytes: int = 0

    def record(self, seq: int, op: FsOp, outcome: OpResult) -> OpRecord:
        record = OpRecord(seq=seq, op=op, outcome=outcome)
        self.entries.append(record)
        self._entry_bytes += _record_bytes(record)
        self.stats.recorded += 1
        self.stats.max_entries = max(self.stats.max_entries, len(self.entries))
        self.stats.max_bytes = max(self.stats.max_bytes, self.approximate_bytes())
        return record

    def truncate(self, fd_snapshot: dict[int, FdState]) -> None:
        """Durability point reached: drop entries, refresh the registry."""
        self.entries.clear()
        self._entry_bytes = 0
        self.fd_snapshot = {fd: st.snapshot() for fd, st in fd_snapshot.items()}
        self.stats.truncations += 1

    def __len__(self) -> int:
        return len(self.entries)

    def window_bounds(self) -> tuple[int, int] | None:
        """(first, last) correlation ids recorded in the current window.

        The sequence number *is* the correlation id threaded through the
        detector, the recovery phases, and the forensic bundle: a
        bundle's ``window`` section uses these bounds to state exactly
        which recorded ops constrained replay re-executed."""
        if not self.entries:
            return None
        return (self.entries[0].seq, self.entries[-1].seq)

    def approximate_bytes(self) -> int:
        """Rough memory footprint, for the op-log ablation benchmark.

        O(1): a running byte counter is maintained on ``record`` and
        reset on ``truncate`` — ``record`` calls this per append, so a
        full rescan here would make the commit window O(n²).
        """
        return _FD_SLOT_BYTES * len(self.fd_snapshot) + self._entry_bytes

    def recount_bytes(self) -> int:
        """Full-rescan footprint — the pre-optimization definition, kept
        as the oracle for the O(1) counter's regression test."""
        total = _FD_SLOT_BYTES * len(self.fd_snapshot)
        for record in self.entries:
            total += _record_bytes(record)
        return total
