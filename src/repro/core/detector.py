"""Error detection.

"All errors that can be detected are handled by the shadow" (§2.1); this
module decides what counts as detected.  Anything escaping a base
filesystem operation that is not a legitimate :class:`FsError` is a
runtime error:

* :class:`KernelBug` — a BUG()-style crash (deterministic or not);
* :class:`KernelWarning` — a WARN_ON hit.  The paper's Table 1 tracks
  WARN as its own consequence class; :class:`WarnPolicy` decides whether
  a WARN engages recovery (``RECOVER``) or is merely counted
  (``IGNORE`` — in which case the *injector* is configured not to raise,
  since a WARN_ON in a real kernel does not abort the operation);
* :class:`InvariantViolation` — validate-on-sync or another runtime
  check caught corrupted state before it could persist (the fault-model
  assumption of §3.1);
* :class:`DeviceError` — an IO failure, transient or not;
* anything else — an unexpected software fault (in kernel terms, an
  oops from a code path nobody annotated).

The detector never *handles* anything; it classifies and counts, and the
supervisor acts.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import DeviceError, FsError, InvariantViolation, KernelBug, KernelWarning


class WarnPolicy(enum.Enum):
    RECOVER = "recover"
    IGNORE = "ignore"


class ErrorKind(enum.Enum):
    BUG = "bug"
    WARN = "warn"
    INVARIANT = "invariant"
    DEVICE = "device"
    UNEXPECTED = "unexpected"


@dataclass
class DetectedError:
    kind: ErrorKind
    exception: BaseException
    seq: int | None = None
    op_name: str | None = None

    @property
    def corr_id(self) -> int | None:
        """The op-log sequence number of the operation that was in
        flight when the error escaped — the correlation id every
        downstream artifact (events, spans, forensic bundle) carries."""
        return self.seq

    def describe(self) -> str:
        where = f" during op #{self.seq} ({self.op_name})" if self.seq is not None else ""
        return f"{self.kind.value}{where}: {self.exception}"

    def as_dict(self) -> dict:
        """JSON-able record for the forensic bundle's ``trigger``."""
        return {
            "corr_id": self.corr_id,
            "kind": self.kind.value,
            "op": self.op_name,
            "exception": type(self.exception).__name__,
            "message": str(self.exception),
        }


@dataclass
class DetectorStats:
    detections: dict[str, int] = field(default_factory=dict)

    def count(self, kind: ErrorKind) -> None:
        self.detections[kind.value] = self.detections.get(kind.value, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.detections.values())


#: Default bound on the detection history ring; cumulative counts live in
#: :class:`DetectorStats` and are never dropped.
DEFAULT_HISTORY_LIMIT = 256


class Detector:
    def __init__(self, warn_policy: WarnPolicy = WarnPolicy.RECOVER, history_limit: int = DEFAULT_HISTORY_LIMIT):
        if history_limit <= 0:
            raise ValueError(f"history_limit must be positive, got {history_limit}")
        self.warn_policy = warn_policy
        self.stats = DetectorStats()
        # Bounded: a supervisor lives for millions of ops, and each
        # DetectedError pins its exception (and traceback) alive.
        self.history: deque[DetectedError] = deque(maxlen=history_limit)
        self.history_limit = history_limit

    def classify(self, exc: BaseException, seq: int | None = None, op_name: str | None = None) -> DetectedError:
        """Classify an escaped exception.  ``FsError`` is a caller bug —
        those are outcomes, not runtime errors — and is rejected loudly."""
        if isinstance(exc, FsError):
            raise AssertionError("FsError reached the detector; it should have been an outcome") from exc
        if isinstance(exc, KernelBug):
            kind = ErrorKind.BUG
        elif isinstance(exc, KernelWarning):
            kind = ErrorKind.WARN
        elif isinstance(exc, InvariantViolation):
            kind = ErrorKind.INVARIANT
        elif isinstance(exc, DeviceError):
            kind = ErrorKind.DEVICE
        else:
            kind = ErrorKind.UNEXPECTED
        detected = DetectedError(kind=kind, exception=exc, seq=seq, op_name=op_name)
        self.stats.count(kind)
        self.history.append(detected)
        return detected

    def should_recover(self, detected: DetectedError) -> bool:
        """WARNs obey the policy; everything else always recovers."""
        if detected.kind is ErrorKind.WARN:
            return self.warn_policy is WarnPolicy.RECOVER
        return True
