"""Contained reboot (§2.2 problem 1, §3.2).

"Once an error is detected, all the states in the base filesystem's
memory is not trusted, so we need to reset them, including the metadata
and file descriptors."  Concretely:

* every metadata cache — dentry, inode, buffer — and the fd table,
  allocator state, lock state, and reservations are *discarded with the
  old filesystem object*;
* the **data pages survive**: "The data pages are shared between the
  base and the shadow because only applications can detect their
  corruption" (§2.3).  They are detached from the dying instance and
  attached to the new one (and exposed read-only to the shadow);
* the on-disk journal is replayed and reset by the re-mount, exactly as
  a crash-restart mount would, establishing the trusted on-disk state
  S0 that recovery reconstructs from;
* the OS and the application are untouched — in this reproduction that
  simply means no exception crosses the supervisor boundary.

The new instance reuses the old instance's :class:`HookPoints`: armed
deterministic bugs stay armed, which is the entire reason state
reconstruction cannot simply re-execute the sequence on the base.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.page_cache import Page
from repro.basefs.writeback import WritebackPolicy
from repro.blockdev.device import BlockDevice


@dataclass
class RebootResult:
    fs: BaseFilesystem
    preserved_pages: dict[tuple[int, int], Page]
    replayed_txns: int


def contained_reboot(
    old_fs: BaseFilesystem,
    device: BlockDevice,
    writeback_policy: WritebackPolicy | None = None,
    validate_on_sync: bool | None = None,
) -> RebootResult:
    """Tear down ``old_fs`` without writing anything it buffered, and
    re-mount the device as a fresh instance."""
    preserved = old_fs.page_cache.detach()
    # The pages are shared with the shadow / new instance as *read* cache:
    # the authoritative dirty copies arrive via the hand-off, so preserved
    # dirtiness is cleared — a failed recovery must never flush distrusted
    # buffered data.
    for page in preserved.values():
        page.dirty = False
    hooks = old_fs.hooks

    # Scrub the distrusted state explicitly (the object is about to be
    # dropped anyway, but a fenced instance must not be usable by stale
    # references — _mounted=False makes every subsequent call fail fast).
    old_fs.inode_cache.drop_all()
    old_fs.dentry_cache.drop_all()
    old_fs.cache.drop_all()
    old_fs.fd_table.clear()
    old_fs.locks.release_all()
    old_fs._mounted = False

    new_fs = BaseFilesystem(
        device,
        hooks=hooks,
        buffer_cache_capacity=old_fs.cache.capacity,
        page_cache_capacity=old_fs.page_cache.capacity,
        inode_cache_capacity=old_fs.inode_cache.capacity,
        dentry_cache_capacity=old_fs.dentry_cache.capacity,
        writeback_policy=writeback_policy or old_fs.writeback.policy,
        validate_on_sync=old_fs.validate_on_sync if validate_on_sync is None else validate_on_sync,
        nr_queues=old_fs.blkmq.nr_queues,
        io_scheduler=old_fs.blkmq.scheduler,
        preserved_pages=preserved,
    )
    return RebootResult(fs=new_fs, preserved_pages=preserved, replayed_txns=new_fs.replayed_txns)
