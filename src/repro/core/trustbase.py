"""Trusted-code quantification (§4.3).

"Our current plan is to reuse the code from the base's implementation to
read the metadata from the device and fill the base's cache (e.g., page
cache, inode cache).  We expect to quantify the code we trust (i.e.,
reused)."

This module does that quantification for the reproduction: it measures
(in source lines, comments and blanks excluded) the four trust
categories the design implies:

* **verified-equivalent** — the shadow implementation and its checks:
  the code whose correctness the design stakes everything on (in the
  paper, the Verus-verified body; here, the exhaustively/property-
  checked one), plus the executable spec it is checked against;
* **shared format** — the on-disk (de)serialization both filesystems
  use; a bug here affects both sides identically, so it is inside the
  trusted base by construction;
* **reused hand-off interfaces** — the base-side code recovery relies
  on: the absorb interfaces, the buffer/page cache and fd-table
  machinery they fill, and journal replay.  The paper's point is that
  this set should be small and "extensively-tested";
* **unverified base** — everything else in the base: the code RAE
  assumes is buggy.

The interesting output is the ratio: how much *less* code the recovery
path trusts compared to the base it protects.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field


def _count_sloc(module) -> int:
    """Source lines of code: non-blank, non-comment physical lines."""
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return 0
    count = 0
    in_doc = False
    doc_delim = None
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_doc:
            if doc_delim in line:
                in_doc = False
            continue
        if line.startswith("#"):
            continue
        if line.startswith(('"""', "'''")):
            doc_delim = line[:3]
            # one-line docstring?
            if line.count(doc_delim) >= 2 and len(line) > 3:
                continue
            in_doc = True
            continue
        count += 1
    return count


@dataclass
class TrustCategory:
    name: str
    modules: list[str]
    sloc: int = 0


@dataclass
class TrustReport:
    categories: list[TrustCategory] = field(default_factory=list)

    def category(self, name: str) -> TrustCategory:
        return next(c for c in self.categories if c.name == name)

    @property
    def recovery_trusted(self) -> int:
        """Code the recovery path must trust: verified-equivalent +
        shared format + reused hand-off interfaces."""
        return sum(
            c.sloc
            for c in self.categories
            if c.name in ("verified-equivalent", "shared-format", "reused-handoff")
        )

    @property
    def unverified(self) -> int:
        return self.category("unverified-base").sloc

    def render(self) -> str:
        lines = ["Trusted-code quantification (§4.3), source lines (SLOC):", ""]
        width = max(len(c.name) for c in self.categories)
        for category in self.categories:
            lines.append(f"  {category.name:<{width}}  {category.sloc:6d}   ({len(category.modules)} modules)")
        reused = self.category("reused-handoff").sloc
        checked = self.category("verified-equivalent").sloc + self.category("shared-format").sloc
        lines.append("")
        lines.append(f"  checked code (shadow + spec + format)        : {checked} SLOC")
        lines.append(f"  trusted-but-unverified reused base machinery : {reused} SLOC")
        lines.append(f"  distrusted base the pair protects            : {self.unverified} SLOC")
        if self.unverified:
            lines.append(
                f"  -> recovery relies on unverified code for only "
                f"{reused / (reused + self.unverified):.0%} of the base-side line count"
            )
        return "\n".join(lines)


_CATEGORIES: dict[str, list[str]] = {
    "verified-equivalent": [
        "repro.shadowfs.filesystem",
        "repro.shadowfs.checks",
        "repro.shadowfs.replay",
        "repro.shadowfs.output",
        "repro.spec.model",
        "repro.spec.equivalence",
        "repro.spec.verifier",
    ],
    "shared-format": [
        "repro.ondisk.layout",
        "repro.ondisk.superblock",
        "repro.ondisk.bitmap",
        "repro.ondisk.inode",
        "repro.ondisk.directory",
        "repro.ondisk.mapping",
        "repro.ondisk.journal",
        "repro.api",
    ],
    "reused-handoff": [
        # The base-side machinery recovery reuses: absorb interfaces live
        # in basefs.filesystem but the caches/fd-table they fill are whole
        # modules, counted fully (a conservative over-estimate).
        "repro.blockdev.cache",
        "repro.basefs.page_cache",
        "repro.basefs.inode_cache",
        "repro.basefs.vfs",
        "repro.core.handoff",
        "repro.core.reboot",
    ],
    "unverified-base": [
        "repro.basefs.filesystem",
        "repro.basefs.allocator",
        "repro.basefs.journal_mgr",
        "repro.basefs.writeback",
        "repro.basefs.dentry_cache",
        "repro.basefs.locks",
        "repro.basefs.hooks",
        "repro.blockdev.blkmq",
    ],
}


def trusted_code_report() -> TrustReport:
    import importlib

    report = TrustReport()
    for name, module_names in _CATEGORIES.items():
        category = TrustCategory(name=name, modules=module_names)
        for module_name in module_names:
            category.sloc += _count_sloc(importlib.import_module(module_name))
        report.categories.append(category)
    return report
