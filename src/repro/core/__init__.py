"""RAE: the paper's primary contribution.

This package turns a base filesystem and a shadow implementation into a
Robust-Alternative-Execution pair:

* :mod:`repro.core.oplog` — records "the operation sequence that tracks
  the gap between the applications' view and the on-disk state" (§3.2),
  including outcomes (return values, fds, inode numbers), truncated when
  buffered updates reach disk;
* :mod:`repro.core.detector` — classifies escaping exceptions into
  detected runtime errors and applies the WARN policy;
* :mod:`repro.core.reboot` — contained reboot: discard the base's
  in-memory state, replay the journal, re-mount, preserving data pages
  and the application;
* :mod:`repro.core.recovery` — the coordinator: reboot, launch the
  shadow, replay constrained + autonomous, collect output;
* :mod:`repro.core.handoff` — metadata downloading: ingest the shadow's
  output into the rebooted base's caches, marked dirty (constrained-mode
  cross-checking itself lives in :mod:`repro.shadowfs.replay`);
* :mod:`repro.core.procrunner` — run the shadow in a separate OS process
  (the paper's isolation boundary) instead of in-process;
* :mod:`repro.core.supervisor` — :class:`RAEFilesystem`, the facade
  applications call.  In the common case it is a thin recording wrapper
  over the base; when the detector fires, it runs recovery and resumes.
"""

__all__ = [
    "OpLog",
    "OpRecord",
    "Detector",
    "DetectedError",
    "WarnPolicy",
    "RAEFilesystem",
    "RAEConfig",
    "RecoveryOutcome",
    "RecoveryStats",
]

_EXPORTS = {
    "OpLog": "repro.core.oplog",
    "OpRecord": "repro.core.oplog",
    "Detector": "repro.core.detector",
    "DetectedError": "repro.core.detector",
    "WarnPolicy": "repro.core.detector",
    "RAEFilesystem": "repro.core.supervisor",
    "RAEConfig": "repro.core.supervisor",
    "RecoveryOutcome": "repro.core.recovery",
    "RecoveryStats": "repro.core.recovery",
}


def __getattr__(name: str):
    # Lazy exports: repro.shadowfs.replay imports repro.core.oplog, and an
    # eager package __init__ here would close an import cycle through
    # repro.core.recovery -> repro.core.procrunner -> repro.shadowfs.replay.
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
