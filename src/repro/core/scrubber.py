"""Background integrity scrubbing (an extension past the paper).

The paper's runtime checks run *reactively*: validate-on-sync guards the
commit path, and the shadow checks everything during recovery.  Neither
notices corruption of *already-committed* on-disk state until something
trips over it.  The scrubber closes that gap: it walks the image
incrementally in the background (a few inodes per step, like a
patrol-read), validating each structure straight from the device with
the shadow's own check engine — cheap because it is incremental, and
honest because it bypasses every cache.

Findings are reported, not repaired: a scrub hit on recent state is
fixable by recovery (the journal still holds a clean copy — see
``tests/test_integration_device_faults.py``), an older one is fsck
territory.  Either way the operator learns *before* an application does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockdev.device import BlockDevice
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import OnDiskInode
from repro.ondisk.layout import INODE_SIZE, DiskLayout
from repro.ondisk.mapping import BlockMapReader
from repro.shadowfs.checks import CheckLevel, ShadowChecks
from repro.errors import InvariantViolation


@dataclass
class ScrubFinding:
    ino: int
    problem: str

    def __str__(self) -> str:
        return f"inode {self.ino}: {self.problem}"


@dataclass
class ScrubStats:
    passes: int = 0  # full sweeps completed
    inodes_scanned: int = 0
    dir_blocks_scanned: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)


class Scrubber:
    """Incremental on-disk integrity patrol.

    ``step(n)`` validates the next ``n`` inode slots (wrapping); live
    inodes get the full shadow check treatment plus a directory-block
    parse for directories.  Reads go straight to the device — the whole
    point is to distrust every cache.

    The scrubber never writes and never raises: corruption becomes a
    :class:`ScrubFinding`.  Callers that want RAE to engage can raise on
    findings themselves (see ``tests/test_core_scrubber.py``).
    """

    def __init__(self, device: BlockDevice, layout: DiskLayout, check_level: CheckLevel = CheckLevel.BASIC):
        self.device = device
        self.layout = layout
        self.checks = ShadowChecks(layout, level=check_level)
        self.stats = ScrubStats()
        self._cursor = 1  # next ino to scan
        self._reader = BlockMapReader(device.read_block)

    def _inode_bitmap(self, group: int) -> Bitmap:
        return Bitmap.from_block(
            self.layout.inodes_per_group, self.device.read_block(self.layout.inode_bitmap_block(group))
        )

    def _block_allocated(self, block: int) -> bool:
        group = self.layout.group_of_block(block)
        bitmap = Bitmap.from_block(
            self.layout.blocks_per_group, self.device.read_block(self.layout.block_bitmap_block(group))
        )
        return bitmap.test(block - self.layout.group_start(group))

    def step(self, n_inodes: int = 8) -> list[ScrubFinding]:
        """Scan the next ``n_inodes`` slots; returns new findings."""
        new_findings: list[ScrubFinding] = []
        for _ in range(n_inodes):
            ino = self._cursor
            self._cursor += 1
            if self._cursor > self.layout.inode_count:
                self._cursor = 1
                self.stats.passes += 1
            if ino == 1:
                continue  # reserved
            new_findings.extend(self._scan_ino(ino))
        self.stats.findings.extend(new_findings)
        return new_findings

    def full_pass(self) -> list[ScrubFinding]:
        """One complete sweep of the inode space."""
        start_findings = len(self.stats.findings)
        self._cursor = 1
        self.step(self.layout.inode_count)
        return self.stats.findings[start_findings:]

    # ------------------------------------------------------------------

    def _scan_ino(self, ino: int) -> list[ScrubFinding]:
        findings: list[ScrubFinding] = []
        self.stats.inodes_scanned += 1
        block, offset = self.layout.inode_location(ino)
        raw = self.device.read_block(block)[offset : offset + INODE_SIZE]
        try:
            inode = OnDiskInode.unpack(raw)
        except ValueError as exc:
            findings.append(ScrubFinding(ino=ino, problem=f"unparseable inode: {exc}"))
            return findings
        group = self.layout.group_of_ino(ino)
        allocated = self._inode_bitmap(group).test(self.layout.ino_index_in_group(ino))
        if inode.is_free:
            if allocated:
                findings.append(ScrubFinding(ino=ino, problem="bitmap says allocated, slot is free"))
            return findings
        if not allocated:
            findings.append(ScrubFinding(ino=ino, problem="live inode free in the bitmap"))
        try:
            self.checks.inode(ino, inode, allow_orphan=True)
            for pointer in self._reader.all_referenced_blocks(inode):
                if 0 < pointer < self.layout.block_count and not self.layout.is_metadata_block(pointer):
                    self.checks.block_allocated(pointer, self._block_allocated)
        except (InvariantViolation, ValueError) as exc:
            findings.append(ScrubFinding(ino=ino, problem=str(exc)))
            return findings
        if inode.is_dir:
            for _logical, physical in self._reader.iter_data_blocks(inode):
                self.stats.dir_blocks_scanned += 1
                try:
                    self.checks.dir_block(ino, physical, self.device.read_block(physical))
                except InvariantViolation as exc:
                    findings.append(ScrubFinding(ino=ino, problem=str(exc)))
        return findings
