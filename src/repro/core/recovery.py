"""The recovery coordinator.

One function, :func:`run_recovery`, executes the full §3.2 procedure:

    contained reboot  →  shadow launch  →  constrained + autonomous
    replay  →  metadata download  →  (supervisor commits and resumes)

and times each phase, because "the time required for recovery ... does
impact the expected response time observed by applications with
in-flight operations" (§4.3) — the recovery-time ablation benchmark
reads these timings.

The shadow runs in-process by default; with ``in_process=False`` and a
file-backed device it runs as a separate OS process via
:mod:`repro.core.procrunner`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api import FsOp
from repro.basefs.filesystem import BaseFilesystem
from repro.blockdev.device import BlockDevice, FileBlockDevice
from repro.core.handoff import download_metadata
from repro.core.oplog import OpLog
from repro.core.procrunner import run_shadow_process
from repro.core.reboot import contained_reboot
from repro.errors import RecoveryFailure
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.output import MetadataUpdate
from repro.shadowfs.replay import ReplayEngine, ReplayReport


@dataclass
class RecoveryStats:
    """Cumulative over a supervisor's lifetime; per-event timings too."""

    attempts: int = 0
    successes: int = 0
    failures: int = 0
    ops_replayed: int = 0
    reboot_seconds: list[float] = field(default_factory=list)
    replay_seconds: list[float] = field(default_factory=list)
    handoff_seconds: list[float] = field(default_factory=list)
    total_seconds: list[float] = field(default_factory=list)

    def note(self, reboot_s: float, replay_s: float, handoff_s: float) -> None:
        self.reboot_seconds.append(reboot_s)
        self.replay_seconds.append(replay_s)
        self.handoff_seconds.append(handoff_s)
        self.total_seconds.append(reboot_s + replay_s + handoff_s)


@dataclass
class RecoveryOutcome:
    fs: BaseFilesystem
    update: MetadataUpdate
    report: ReplayReport
    reboot_seconds: float
    replay_seconds: float
    handoff_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.reboot_seconds + self.replay_seconds + self.handoff_seconds


def run_recovery(
    old_fs: BaseFilesystem,
    device: BlockDevice,
    oplog: OpLog,
    inflight: tuple[int, FsOp] | None,
    check_level: CheckLevel = CheckLevel.FULL,
    strict_crosscheck: bool = True,
    in_process: bool = True,
) -> RecoveryOutcome:
    """Execute one recovery.  Raises :class:`RecoveryFailure` if the
    shadow cannot produce trustworthy state."""
    t0 = time.perf_counter()
    reboot = contained_reboot(old_fs, device)
    new_fs = reboot.fs
    t1 = time.perf_counter()

    # The preserved data pages stay with the rebooted base (read cache);
    # they are NOT given to the shadow's replay: a page reflects the state
    # at crash time, while replay needs the state at each op's position —
    # the recorded write payloads regenerate that exactly.  (The paper
    # shares pages because it does not record payloads; see DESIGN.md.)
    if in_process:
        shadow = ShadowFilesystem(device, check_level=check_level)
        engine = ReplayEngine(shadow, strict=strict_crosscheck)
        update = engine.run(oplog.entries, oplog.fd_snapshot, inflight)
        report = engine.report
    else:
        if not isinstance(device, FileBlockDevice):
            raise RecoveryFailure(
                "separate-process shadow requires a file-backed device", phase="shadow-process"
            )
        device.flush()
        update, report = run_shadow_process(
            device.path,
            oplog.entries,
            oplog.fd_snapshot,
            inflight,
            check_level=check_level,
            strict=strict_crosscheck,
        )
    t2 = time.perf_counter()

    download_metadata(new_fs, update)
    t3 = time.perf_counter()

    return RecoveryOutcome(
        fs=new_fs,
        update=update,
        report=report,
        reboot_seconds=t1 - t0,
        replay_seconds=t2 - t1,
        handoff_seconds=t3 - t2,
    )
