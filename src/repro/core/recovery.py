"""The recovery coordinator.

One function, :func:`run_recovery`, executes the full §3.2 procedure:

    contained reboot  →  shadow launch  →  constrained + autonomous
    replay  →  metadata download  →  (supervisor commits and resumes)

and times each phase, because "the time required for recovery ... does
impact the expected response time observed by applications with
in-flight operations" (§4.3) — the recovery-time ablation benchmark
reads these timings.

The shadow runs in-process by default; with ``in_process=False`` and a
file-backed device it runs as a separate OS process via
:mod:`repro.core.procrunner`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.api import FsOp
from repro.basefs.filesystem import BaseFilesystem
from repro.blockdev.device import BlockDevice, FileBlockDevice
from repro.core.handoff import download_metadata
from repro.core.oplog import OpLog
from repro.core.procrunner import run_shadow_process
from repro.core.reboot import contained_reboot
from repro.errors import RecoveryFailure
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.output import MetadataUpdate
from repro.shadowfs.replay import ReplayEngine, ReplayReport


@dataclass
class RecoveryStats:
    """Cumulative over a supervisor's lifetime; per-event timings too."""

    attempts: int = 0
    successes: int = 0
    failures: int = 0
    ops_replayed: int = 0
    reboot_seconds: list[float] = field(default_factory=list)
    replay_seconds: list[float] = field(default_factory=list)
    handoff_seconds: list[float] = field(default_factory=list)
    total_seconds: list[float] = field(default_factory=list)
    failure_phases: list[str] = field(default_factory=list)

    def note(self, reboot_s: float, replay_s: float, handoff_s: float) -> None:
        self.reboot_seconds.append(reboot_s)
        self.replay_seconds.append(replay_s)
        self.handoff_seconds.append(handoff_s)
        self.total_seconds.append(reboot_s + replay_s + handoff_s)

    def note_failure(self, phase: str, phase_seconds: dict[str, float]) -> None:
        """Failed recoveries spend real time too — without this, the
        per-phase averages only ever see successes and understate the
        response-time impact §4.3 cares about."""
        self.failure_phases.append(phase)
        reboot_s = float(phase_seconds.get("reboot", 0.0))
        replay_s = float(phase_seconds.get("replay", 0.0))
        handoff_s = float(phase_seconds.get("handoff", 0.0))
        self.note(reboot_s, replay_s, handoff_s)

    def mean_seconds(self) -> dict[str, float]:
        """Mean per-phase timings over every attempt that got timed."""
        def mean(values: list[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        return {
            "reboot": mean(self.reboot_seconds),
            "replay": mean(self.replay_seconds),
            "handoff": mean(self.handoff_seconds),
            "total": mean(self.total_seconds),
        }


@dataclass
class RecoveryOutcome:
    fs: BaseFilesystem
    update: MetadataUpdate
    report: ReplayReport
    reboot_seconds: float
    replay_seconds: float
    handoff_seconds: float
    # True when the remounted base's write generation proved the whole
    # replay window already durable (crash after the commit record was
    # sealed but before the supervisor's truncation callback ran); the
    # window was handed off as-is instead of replayed, and the
    # supervisor must acknowledge the durability point by truncating it.
    window_durable: bool = False

    @property
    def total_seconds(self) -> float:
        return self.reboot_seconds + self.replay_seconds + self.handoff_seconds


def _span(tracer, name: str, **attrs):
    """A tracer span, or a no-op context when no tracer was injected.

    The tracer is always passed in from *outside* the replay closure —
    the shadow itself stays instrumentation-free; these spans time the
    phases around it.
    """
    return tracer.span(name, **attrs) if tracer is not None else nullcontext()


def _emit(events, kind: str, corr_id: int | None, **fields) -> None:
    """Emit a correlated event when an event log was injected.

    ``events`` is duck-typed (:class:`repro.obs.events.EventLog` in
    production) so this module — like the tracer threading above —
    never has to import the observability package.
    """
    if events is not None:
        events.emit(kind, corr_id=corr_id, **fields)


class CrossCheckingReplayEngine(ReplayEngine):
    """A :class:`ReplayEngine` that feeds every constrained-mode
    cross-check into a supervisor-side capture sink.

    This is the divergence table's capture point: it lives *here*, at
    the engine call boundary in the recovery layer, rather than inside
    ``repro.shadowfs`` — the shadow gains only the ``_crosscheck`` seam
    and stays free of observability imports (SHADOW-PURITY).  The sink
    is duck-typed (``note(record, replayed)``;
    :class:`repro.obs.forensics.CrossCheckCapture` in production) and
    is consulted *before* the strict policy can abort replay, so even a
    failed recovery's bundle shows the rows checked up to the mismatch.
    """

    def __init__(self, shadow: ShadowFilesystem, strict: bool, capture):
        super().__init__(shadow, strict=strict)
        self._capture = capture

    def _crosscheck(self, record, replayed) -> None:
        self._capture.note(record, replayed)
        super()._crosscheck(record, replayed)


def _phase_seconds(t0: float, t1: float | None, t2: float | None, now: float) -> dict[str, float]:
    """Per-phase durations when the procedure stopped at time ``now``;
    the phase that raised gets its partial duration, later phases 0."""
    timings = {"reboot": (t1 if t1 is not None else now) - t0, "replay": 0.0, "handoff": 0.0}
    if t1 is not None:
        timings["replay"] = (t2 if t2 is not None else now) - t1
    if t2 is not None:
        timings["handoff"] = now - t2
    return timings


def run_recovery(
    old_fs: BaseFilesystem,
    device: BlockDevice,
    oplog: OpLog,
    inflight: tuple[int, FsOp] | None,
    check_level: CheckLevel = CheckLevel.FULL,
    strict_crosscheck: bool = True,
    in_process: bool = True,
    tracer=None,
    corr_id: int | None = None,
    events=None,
    crosscheck=None,
    window_generation: int | None = None,
) -> RecoveryOutcome:
    """Execute one recovery.  Raises :class:`RecoveryFailure` if the
    shadow cannot produce trustworthy state; the failure carries a
    ``phase_seconds`` dict so even failed attempts contribute timings.

    ``corr_id`` is the triggering op's log sequence number: it is
    stamped on every phase span and event so the whole procedure can be
    traced back to one operation.  ``events`` (an
    :class:`~repro.obs.events.EventLog`, duck-typed) receives one event
    per phase; ``crosscheck`` (a
    :class:`~repro.obs.forensics.CrossCheckCapture`, duck-typed) makes
    in-process replay run under :class:`CrossCheckingReplayEngine`,
    capturing the per-op divergence table for the forensic bundle.

    ``window_generation`` is the superblock write generation as of the
    window's durability point (the supervisor tracks it at every commit
    callback).  After the contained reboot's journal replay, a *larger*
    on-disk generation proves the crashing commit sealed the entire
    window before the failure escaped — the crash landed between the
    commit record reaching the device and the truncation callback.
    Replaying the window then would double-apply it against a base that
    already contains it (EEXIST-style divergences); instead the replay
    runs with no entries and the descriptor table captured from the
    crashed base, and the outcome is flagged ``window_durable`` so the
    supervisor truncates the stale window.
    """
    t0 = time.perf_counter()
    t1: float | None = None
    t2: float | None = None
    # Captured before the reboot scrubs it.  Trustworthy exactly in the
    # durable-window case: a mid-op crash can only leave the window
    # durable from inside a commit, and the only inflight ops that reach
    # a commit (fsync — unmount/writeback/scrub run with none) do not
    # mutate descriptor state first.
    crash_fd_registry = old_fs.fd_table.snapshot()
    try:
        with _span(tracer, "recovery.reboot", corr_id=corr_id):
            reboot = contained_reboot(old_fs, device)
            new_fs = reboot.fs
        t1 = time.perf_counter()
        _emit(events, "recovery.reboot", corr_id, seconds=t1 - t0)

        entries = oplog.entries
        fd_registry = oplog.fd_snapshot
        window_durable = (
            window_generation is not None
            and bool(entries)
            and new_fs.sb.write_generation > window_generation
        )
        if window_durable:
            entries = []
            fd_registry = crash_fd_registry
            _emit(
                events, "recovery.window-durable", corr_id,
                window_generation=window_generation,
                disk_generation=new_fs.sb.write_generation,
                entries_skipped=len(oplog.entries),
            )

        # The preserved data pages stay with the rebooted base (read cache);
        # they are NOT given to the shadow's replay: a page reflects the state
        # at crash time, while replay needs the state at each op's position —
        # the recorded write payloads regenerate that exactly.  (The paper
        # shares pages because it does not record payloads; see DESIGN.md.)
        with _span(
            tracer, "recovery.replay",
            ops=len(entries), inflight=inflight is not None, corr_id=corr_id,
        ):
            if in_process:
                shadow = ShadowFilesystem(device, check_level=check_level)
                if crosscheck is not None:
                    engine = CrossCheckingReplayEngine(shadow, strict_crosscheck, crosscheck)
                else:
                    engine = ReplayEngine(shadow, strict=strict_crosscheck)
                update = engine.run(entries, fd_registry, inflight)
                report = engine.report
            else:
                # Process-mode replay crosses an OS boundary: the
                # divergence table is not captured there (the child
                # returns only the discrepancy report), which the
                # bundle's replay.mode field makes explicit.
                if not isinstance(device, FileBlockDevice):
                    raise RecoveryFailure(
                        "separate-process shadow requires a file-backed device", phase="shadow-process"
                    )
                device.flush()
                update, report = run_shadow_process(
                    device.path,
                    entries,
                    fd_registry,
                    inflight,
                    check_level=check_level,
                    strict=strict_crosscheck,
                )
        t2 = time.perf_counter()
        _emit(
            events, "recovery.replay", corr_id,
            seconds=t2 - t1,
            constrained=report.constrained_ops,
            autonomous=report.autonomous_ops,
            discrepancies=len(report.discrepancies),
        )

        with _span(tracer, "recovery.handoff", corr_id=corr_id):
            download_metadata(new_fs, update, events=events, corr_id=corr_id)
        t3 = time.perf_counter()
        _emit(events, "recovery.handoff", corr_id, seconds=t3 - t2)
    except RecoveryFailure as exc:
        exc.phase_seconds = _phase_seconds(t0, t1, t2, time.perf_counter())
        raise

    return RecoveryOutcome(
        fs=new_fs,
        update=update,
        report=report,
        reboot_seconds=t1 - t0,
        replay_seconds=t2 - t1,
        handoff_seconds=t3 - t2,
        window_durable=window_durable,
    )
