"""The filesystem API contract shared by base, shadow, and spec model.

RAE requires the base and shadow to "adhere to the same API"; this module
*is* that API.  It defines:

* :class:`FilesystemAPI` — the abstract operation set (POSIX-flavoured);
* :class:`OpenFlags` — open(2) flags the reproduction supports;
* :class:`StatResult` — what ``stat`` returns (inode identity included,
  because the paper calls inode numbers out as application-visible state
  that recovery must preserve);
* :class:`FsOp` / :class:`OpResult` — a reified operation and its outcome,
  used by the op log, the shadow's replay engine, workload generators, and
  the differential testers;
* shared path validation, so all three implementations reject malformed
  paths identically (divergent *validation* would register as a
  cross-check discrepancy, which is reserved for real bugs).

Path rules: paths are absolute (`/a/b`), components are non-empty, never
``.`` or ``..``, contain no NUL or ``/``, and are at most
:data:`~repro.ondisk.directory.MAX_NAME_LEN` bytes.  Symbolic links are
resolved in intermediate components and (unless the operation says
otherwise) in the final component, with an 8-link depth limit (``ELOOP``).

Timestamps are logical: every operation carries a sequence number assigned
by the caller (the RAE supervisor in production, tests directly), and any
timestamp written during that operation equals it.  This is what makes
base-vs-shadow metadata equality exact rather than approximate.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.errors import Errno, FsError
from repro.ondisk.directory import MAX_NAME_LEN
from repro.ondisk.inode import FileType

SYMLINK_DEPTH_LIMIT = 8


class OpenFlags(enum.IntFlag):
    """Supported open(2) flags.  Access-mode enforcement is intentionally
    omitted (single-principal model); the flags that matter are the ones
    with namespace or data side effects."""

    NONE = 0
    CREAT = 1
    EXCL = 2
    TRUNC = 4
    APPEND = 8


@dataclass(frozen=True)
class StatResult:
    """Application-visible inode attributes.

    ``ino`` is part of the result on purpose: the paper's recovery
    contract says completed operations' inode numbers must be preserved,
    and the equivalence/cross-check machinery compares them.
    """

    ino: int
    ftype: FileType
    size: int
    nlink: int
    perms: int
    uid: int
    gid: int
    atime: int
    mtime: int
    ctime: int


def validate_name(name: str) -> None:
    """Validate one path component; raises ``FsError(EINVAL/ENAMETOOLONG)``."""
    if not name:
        raise FsError(Errno.EINVAL, "empty path component")
    if name in (".", ".."):
        raise FsError(Errno.EINVAL, f"component {name!r} not permitted in API paths")
    if "/" in name or "\x00" in name:
        raise FsError(Errno.EINVAL, f"illegal character in component {name!r}")
    if len(name.encode()) > MAX_NAME_LEN:
        raise FsError(Errno.ENAMETOOLONG, name[:32] + "...")


def split_path(path: str) -> list[str]:
    """Split an absolute path into validated components.

    ``"/"`` splits to ``[]``.  Trailing slashes are tolerated (``/a/b/``
    equals ``/a/b``), repeated slashes are not (``EINVAL``), matching the
    strictness the shadow's input validation is supposed to exhibit.
    """
    if not isinstance(path, str):
        raise FsError(Errno.EINVAL, f"path must be str, got {type(path).__name__}")
    if not path.startswith("/"):
        raise FsError(Errno.EINVAL, f"path not absolute: {path!r}")
    trimmed = path[1:]
    if trimmed.endswith("/"):
        trimmed = trimmed[:-1]
    if not trimmed:
        return []
    components = trimmed.split("/")
    for component in components:
        validate_name(component)
    return components


def parent_and_name(path: str) -> tuple[list[str], str]:
    """Split into (parent components, final name); "/" is rejected."""
    components = split_path(path)
    if not components:
        raise FsError(Errno.EINVAL, "operation not permitted on /")
    return components[:-1], components[-1]


class FilesystemAPI(ABC):
    """The operation set both filesystems implement.

    Every method either returns its documented result or raises
    :class:`~repro.errors.FsError`.  Any *other* exception escaping an
    implementation is a runtime error in the RAE sense — the supervisor's
    detector treats it as a reason to engage the shadow.

    ``opseq`` on mutating calls is the logical timestamp (see module
    docstring).  Implementations must use it for any time they record.
    """

    # --- namespace -------------------------------------------------------

    @abstractmethod
    def mkdir(self, path: str, perms: int = 0o755, opseq: int = 0) -> None:
        """Create a directory.  EEXIST if the name exists, ENOENT/ENOTDIR
        on bad parents, ENOSPC when out of inodes or blocks."""

    @abstractmethod
    def rmdir(self, path: str, opseq: int = 0) -> None:
        """Remove an empty directory.  ENOTEMPTY if it has entries,
        ENOTDIR if not a directory, EPERM on the root."""

    @abstractmethod
    def unlink(self, path: str, opseq: int = 0) -> None:
        """Remove a file or symlink name.  EISDIR on directories."""

    @abstractmethod
    def rename(self, src: str, dst: str, opseq: int = 0) -> None:
        """Atomically rename.  POSIX semantics: an existing empty-dir /
        file destination is replaced if types are compatible; EINVAL when
        moving a directory into its own subtree."""

    @abstractmethod
    def link(self, existing: str, new: str, opseq: int = 0) -> None:
        """Create a hard link to a regular file (EPERM on directories)."""

    @abstractmethod
    def symlink(self, target: str, path: str, opseq: int = 0) -> None:
        """Create a symbolic link holding ``target`` (not validated)."""

    @abstractmethod
    def readlink(self, path: str) -> str:
        """Return a symlink's target.  EINVAL if not a symlink."""

    @abstractmethod
    def readdir(self, path: str) -> list[str]:
        """Names in a directory, sorted, excluding '.' and '..'."""

    # --- attributes ------------------------------------------------------

    @abstractmethod
    def stat(self, path: str) -> StatResult:
        """Attributes, following symlinks."""

    @abstractmethod
    def lstat(self, path: str) -> StatResult:
        """Attributes of the name itself (no final-symlink follow)."""

    @abstractmethod
    def truncate(self, path: str, size: int, opseq: int = 0) -> None:
        """Grow (zero-fill) or shrink a regular file to ``size``."""

    # --- descriptors and data ---------------------------------------------

    @abstractmethod
    def open(self, path: str, flags: OpenFlags = OpenFlags.NONE, perms: int = 0o644, opseq: int = 0) -> int:
        """Open (optionally creating) a regular file; returns an fd.
        Lowest-free-fd allocation starting at 3 — fd numbers are
        application-visible state that recovery must reproduce."""

    @abstractmethod
    def close(self, fd: int, opseq: int = 0) -> None:
        """Release an fd.  EBADF if not open."""

    @abstractmethod
    def read(self, fd: int, length: int, opseq: int = 0) -> bytes:
        """Read up to ``length`` bytes at the fd's offset, advancing it."""

    @abstractmethod
    def write(self, fd: int, data: bytes, opseq: int = 0) -> int:
        """Write at the fd's offset (end-of-file under APPEND), advancing
        it; returns the byte count.  Full writes only — ENOSPC rolls the
        operation back entirely rather than writing a prefix."""

    @abstractmethod
    def lseek(self, fd: int, offset: int, whence: int = 0, opseq: int = 0) -> int:
        """Reposition (0=SET, 1=CUR, 2=END); returns the new offset."""

    @abstractmethod
    def fsync(self, fd: int, opseq: int = 0) -> None:
        """Make completed operations durable.  The base commits its
        journal; the shadow does not implement fsync (§3.3) and its
        replay engine skips it."""

    @abstractmethod
    def fstat_ino(self, fd: int) -> int:
        """The inode number behind an open fd (EBADF if not open).

        Used by the op log to record the allocation outcome of ``open``
        with CREAT, which constrained replay must validate."""


# --------------------------------------------------------------------------
# Reified operations


#: name -> (argument names, is_mutation)
OP_SIGNATURES: dict[str, tuple[tuple[str, ...], bool]] = {
    "mkdir": (("path", "perms"), True),
    "rmdir": (("path",), True),
    "unlink": (("path",), True),
    "rename": (("src", "dst"), True),
    "link": (("existing", "new"), True),
    "symlink": (("target", "path"), True),
    "readlink": (("path",), False),
    "readdir": (("path",), False),
    "stat": (("path",), False),
    "lstat": (("path",), False),
    "truncate": (("path", "size"), True),
    "open": (("path", "flags", "perms"), True),
    "close": (("fd",), True),
    "read": (("fd", "length"), True),  # advances the offset: replay-relevant
    "write": (("fd", "data"), True),
    "lseek": (("fd", "offset", "whence"), True),
    "fsync": (("fd",), True),
}


@dataclass
class OpResult:
    """The outcome of one operation, as the application saw it.

    Exactly one of ``errno``/success holds.  ``value`` carries the return
    (fd for open, bytes for read, offset for lseek, names for readdir,
    StatResult for stat...).  ``ino`` is filled for namespace-creating
    operations so constrained replay can validate allocation decisions.
    """

    errno: Errno | None = None
    value: Any = None
    ino: int | None = None

    @property
    def ok(self) -> bool:
        return self.errno is None

    def same_outcome_as(self, other: "OpResult") -> bool:
        """Outcome equality as the cross-checker defines it."""
        return self.errno == other.errno and self.value == other.value and self.ino == other.ino


@dataclass
class FsOp:
    """One reified filesystem operation."""

    name: str
    args: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.name not in OP_SIGNATURES:
            raise ValueError(f"unknown operation {self.name!r}")
        expected, _mut = OP_SIGNATURES[self.name]
        for arg in self.args:
            if arg not in expected:
                raise ValueError(f"{self.name} does not take argument {arg!r}")

    @property
    def is_mutation(self) -> bool:
        return OP_SIGNATURES[self.name][1]

    def apply(self, fs: FilesystemAPI, opseq: int = 0) -> OpResult:
        """Execute against any implementation, capturing the outcome.

        ``FsError`` becomes an errno outcome; anything else propagates —
        that is the detector's business, not the API's.
        """
        try:
            value = self._dispatch(fs, opseq)
        except FsError as err:
            return OpResult(errno=err.errno)
        ino = None
        if self.name in ("mkdir", "symlink"):
            ino = fs.stat(self.args["path"]).ino if self.name == "mkdir" else fs.lstat(self.args["path"]).ino
        elif self.name == "open":
            ino = fs.fstat_ino(value)
        return OpResult(value=value, ino=ino)

    def _dispatch(self, fs: FilesystemAPI, opseq: int) -> Any:
        a = self.args
        name = self.name
        if name == "mkdir":
            return fs.mkdir(a["path"], a.get("perms", 0o755), opseq=opseq)
        if name == "rmdir":
            return fs.rmdir(a["path"], opseq=opseq)
        if name == "unlink":
            return fs.unlink(a["path"], opseq=opseq)
        if name == "rename":
            return fs.rename(a["src"], a["dst"], opseq=opseq)
        if name == "link":
            return fs.link(a["existing"], a["new"], opseq=opseq)
        if name == "symlink":
            return fs.symlink(a["target"], a["path"], opseq=opseq)
        if name == "readlink":
            return fs.readlink(a["path"])
        if name == "readdir":
            return fs.readdir(a["path"])
        if name == "stat":
            return fs.stat(a["path"])
        if name == "lstat":
            return fs.lstat(a["path"])
        if name == "truncate":
            return fs.truncate(a["path"], a["size"], opseq=opseq)
        if name == "open":
            return fs.open(a["path"], OpenFlags(a.get("flags", 0)), a.get("perms", 0o644), opseq=opseq)
        if name == "close":
            return fs.close(a["fd"], opseq=opseq)
        if name == "read":
            return fs.read(a["fd"], a["length"], opseq=opseq)
        if name == "write":
            return fs.write(a["fd"], a["data"], opseq=opseq)
        if name == "lseek":
            return fs.lseek(a["fd"], a["offset"], a.get("whence", 0), opseq=opseq)
        if name == "fsync":
            return fs.fsync(a["fd"], opseq=opseq)
        raise AssertionError(f"unhandled op {name}")

    def describe(self) -> str:
        """Compact human-readable form for logs and reports."""
        parts = []
        for key, value in self.args.items():
            if isinstance(value, bytes):
                parts.append(f"{key}=<{len(value)}B>")
            else:
                parts.append(f"{key}={value!r}")
        return f"{self.name}({', '.join(parts)})"


def op(name: str, **args: Any) -> FsOp:
    """Terse FsOp constructor: ``op('mkdir', path='/a')``."""
    return FsOp(name=name, args=args)
