"""Device-level fault injection.

The paper's fault model (§3.1) covers transient hardware faults alongside
software bugs; the shadow's extensive runtime checks exist specifically to
"defend against transient hardware faults that are outside of the
specification, e.g., the silent data corruption of CPU cores".  This module
provides the hardware half of that model at the device boundary:

* **transient read errors** — a read fails with a :class:`DeviceError`
  (``transient=True``) a configured number of times, then succeeds, the way
  a retried medium error behaves;
* **silent corruption** — a read returns bit-flipped data without any error
  indication, the failure mode checksums and invariant checks exist for;
* **stuck corruption** — the stored data itself is corrupted, so every
  subsequent read observes the same damage.

Fault plans are deterministic: each fault names a block, a trigger count
(which access to the block should misbehave), and a payload.  Determinism
matters because the reproduction's recovery property tests re-run the exact
same fault schedule under the shadow and assert the checks catch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockdev.device import BlockDevice
from repro.errors import DeviceError


@dataclass
class ReadErrorFault:
    """Fail reads of ``block`` with a transient IO error.

    ``times`` reads fail starting from access number ``after`` (0-based
    count of reads of that block); later reads succeed, modelling a
    transient medium error that clears on retry.
    """

    block: int
    times: int = 1
    after: int = 0


@dataclass
class FlipFault:
    """Corrupt reads of ``block`` by XOR-ing ``xor_byte`` at ``offset``.

    If ``sticky`` is true the stored data is corrupted in place on first
    trigger (all subsequent readers see it); otherwise only the returned
    copy is damaged, modelling corruption on the wire — for ``times``
    accesses starting at access ``after`` (``times=None`` = every one).
    """

    block: int
    offset: int = 0
    xor_byte: int = 0xFF
    after: int = 0
    times: int | None = None
    sticky: bool = False


@dataclass
class DeviceFaultPlan:
    """A deterministic schedule of device faults.

    The plan is consumed by :class:`FaultyBlockDevice`.  ``injected`` and
    ``triggered`` counters let tests assert that a planned fault actually
    fired during the scenario under test.
    """

    read_errors: list[ReadErrorFault] = field(default_factory=list)
    flips: list[FlipFault] = field(default_factory=list)

    def add_read_error(self, block: int, times: int = 1, after: int = 0) -> "DeviceFaultPlan":
        self.read_errors.append(ReadErrorFault(block=block, times=times, after=after))
        return self

    def add_flip(
        self,
        block: int,
        offset: int = 0,
        xor_byte: int = 0xFF,
        after: int = 0,
        times: int | None = None,
        sticky: bool = False,
    ) -> "DeviceFaultPlan":
        self.flips.append(
            FlipFault(block=block, offset=offset, xor_byte=xor_byte, after=after, times=times, sticky=sticky)
        )
        return self


class FaultyBlockDevice(BlockDevice):
    """Wrap a device with a :class:`DeviceFaultPlan`.

    Reads consult the plan; writes and flushes pass straight through.  The
    wrapper counts per-block read accesses so ``after``/``times`` windows
    are interpreted deterministically regardless of caching behaviour above
    (callers that want cache-independent schedules should mount the faulty
    device below the cache, which is what the test suite does).
    """

    def __init__(self, inner: BlockDevice, plan: DeviceFaultPlan):
        super().__init__(inner.block_size, inner.block_count)
        self._inner = inner
        self.plan = plan
        self._read_counts: dict[int, int] = {}
        self.faults_fired = 0

    def access_count(self, block: int) -> int:
        """Reads of ``block`` so far — i.e. the access index the *next*
        read will have.  Use it to schedule a fault 'from now on'."""
        return self._read_counts.get(block, 0)

    def read_block(self, block: int) -> bytes:
        access = self._read_counts.get(block, 0)
        self._read_counts[block] = access + 1

        for fault in self.plan.read_errors:
            if fault.block == block and fault.after <= access < fault.after + fault.times:
                self.faults_fired += 1
                raise DeviceError(
                    f"injected transient read error on block {block} (access {access})",
                    block=block,
                    transient=True,
                )

        data = self._inner.read_block(block)
        for fault in self.plan.flips:
            if fault.block == block and access >= fault.after:
                if fault.times is not None and access >= fault.after + fault.times:
                    continue
                if fault.sticky:
                    # Damage the stored copy once; subsequent reads see it
                    # naturally, so only trigger on the first qualifying read.
                    if access == fault.after:
                        self.faults_fired += 1
                        damaged = bytearray(data)
                        damaged[fault.offset] ^= fault.xor_byte
                        self._inner.write_block(block, bytes(damaged))
                        data = bytes(damaged)
                else:
                    self.faults_fired += 1
                    damaged = bytearray(data)
                    damaged[fault.offset] ^= fault.xor_byte
                    data = bytes(damaged)
        return data

    def write_block(self, block: int, data: bytes) -> None:
        self._inner.write_block(block, data)

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()
