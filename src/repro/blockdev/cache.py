"""Write-back buffer cache.

The base filesystem never touches the device directly for metadata: it goes
through this cache, which is one of the "performance-oriented components"
(Figure 2, left) that the shadow deliberately lacks.  The cache provides:

* read caching with LRU eviction (clean blocks only — dirty blocks are
  pinned until written back);
* write-back semantics: ``write`` dirties the cached copy, and the dirty
  set is flushed either by the write-back daemon, by a journal commit, or
  by an explicit ``sync``;
* hit/miss statistics consumed by the Figure 2 benchmark.

Because a detected error distrusts *all* base in-memory state, contained
reboot simply drops this whole object; the cache therefore keeps no state
that matters beyond the dirty set, and ``dirty_blocks`` is exactly the
"buffered update" the paper's op log protects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.blockdev.device import BlockDevice


@dataclass
class BufferCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    # Dirty blocks force-written by memory pressure.  For the base this
    # bypasses the journal, so the write-back thresholds are sized to
    # keep it at zero; tests assert that it stays there.
    forced_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferCache:
    """LRU write-back cache of device blocks.

    ``capacity`` bounds the number of cached blocks.  Dirty blocks do not
    count against evictability: if every cached block is dirty and capacity
    is exceeded, the cache force-writes the least-recently-used dirty block
    back (this mirrors memory-pressure write-back).
    """

    def __init__(self, device: BlockDevice, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.device = device
        self.capacity = capacity
        self._blocks: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self.stats = BufferCacheStats()

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def dirty_blocks(self) -> frozenset[int]:
        """Block numbers with un-written-back modifications."""
        return frozenset(self._dirty)

    def read(self, block: int) -> bytes:
        """Return block contents, from cache if present."""
        cached = self._blocks.get(block)
        if cached is not None:
            self.stats.hits += 1
            self._blocks.move_to_end(block)
            return bytes(cached)
        self.stats.misses += 1
        data = self.device.read_block(block)
        self._insert(block, bytearray(data))
        return data

    def write(self, block: int, data: bytes) -> None:
        """Buffer a write; the device is not touched until write-back."""
        if len(data) != self.device.block_size:
            raise ValueError(f"write of {len(data)} bytes; block size is {self.device.block_size}")
        if block in self._blocks:
            self._blocks[block][:] = data
            self._blocks.move_to_end(block)
            self._dirty.add(block)
        else:
            # Dirty before insert: insertion may trigger eviction, and the
            # brand-new dirty block must never be the victim.
            self._dirty.add(block)
            self._insert(block, bytearray(data))

    def peek(self, block: int) -> bytes | None:
        """Return cached contents without affecting LRU order, or None."""
        cached = self._blocks.get(block)
        return bytes(cached) if cached is not None else None

    def is_dirty(self, block: int) -> bool:
        return block in self._dirty

    def writeback(self, block: int) -> bool:
        """Write one dirty block to the device; returns whether it was dirty."""
        if block not in self._dirty:
            return False
        self.device.write_block(block, bytes(self._blocks[block]))
        self._dirty.discard(block)
        self.stats.writebacks += 1
        return True

    def writeback_some(self, limit: int) -> int:
        """Write back up to ``limit`` dirty blocks (LRU-first); return count."""
        victims = [b for b in self._blocks if b in self._dirty][:limit]
        for block in victims:
            self.writeback(block)
        return len(victims)

    def sync(self) -> int:
        """Write back every dirty block and flush the device."""
        count = 0
        for block in list(self._blocks):
            if self.writeback(block):
                count += 1
        self.device.flush()
        return count

    def invalidate(self, block: int) -> None:
        """Drop a block from the cache, discarding dirty data if present.

        Used by contained reboot (which distrusts the dirty data) and by
        tests; normal operation never discards dirty blocks.
        """
        self._blocks.pop(block, None)
        self._dirty.discard(block)

    def drop_all(self) -> None:
        """Drop the entire cache including dirty data (contained reboot)."""
        self._blocks.clear()
        self._dirty.clear()

    def _insert(self, block: int, data: bytearray) -> None:
        self._blocks[block] = data
        self._blocks.move_to_end(block)
        while len(self._blocks) > self.capacity:
            evicted = self._evict_one()
            if not evicted:
                break

    def _evict_one(self) -> bool:
        for block in self._blocks:
            if block not in self._dirty:
                del self._blocks[block]
                self.stats.evictions += 1
                return True
        # All dirty: force write-back of the LRU dirty block, then evict it.
        for block in self._blocks:
            self.writeback(block)
            del self._blocks[block]
            self.stats.evictions += 1
            self.stats.forced_evictions += 1
            return True
        return False
