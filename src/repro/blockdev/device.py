"""Synchronous block devices.

Every filesystem in the reproduction — base and shadow alike — ultimately
reads and writes fixed-size blocks through the :class:`BlockDevice`
interface.  The base stacks a buffer cache and an asynchronous blk-mq layer
on top; the shadow calls ``read_block`` directly, synchronously, which is
exactly the simplification the paper prescribes (§3.3).

Two concrete devices are provided.  :class:`MemoryBlockDevice` backs the
image with a ``bytearray`` and is what tests and most benchmarks use.
:class:`FileBlockDevice` backs the image with a file on the host
filesystem, which lets the shadow run in a genuinely separate OS process
(``repro.core.procrunner``) while reading the same image the base mounted.

Wrappers:

* :class:`WriteFencedDevice` enforces the shadow's never-write rule by
  raising :class:`~repro.errors.ShadowWriteAttempt` on any mutation.
* :class:`CountingDevice` tallies reads/writes/flushes for benchmarks and
  for tests that assert IO behaviour (e.g. "the shadow read only the blocks
  it needed").
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import DeviceError, ShadowWriteAttempt


@dataclass
class DeviceIOStats:
    """Lifetime IO tallies kept by every concrete device.

    Plain integers bumped inline — no ``repro.obs`` import, so devices
    stay usable inside the shadow's replay closure; the supervisor's
    registry *pulls* these at snapshot time.  (:class:`CountingDevice`
    remains the heavier wrapper that also records block numbers.)
    """

    reads: int = 0
    writes: int = 0
    flushes: int = 0


class BlockDevice(ABC):
    """Abstract fixed-block-size storage device.

    Blocks are addressed ``0 .. block_count - 1``.  ``read_block`` returns
    exactly ``block_size`` bytes; ``write_block`` requires exactly
    ``block_size`` bytes.  ``flush`` is a barrier: after it returns, all
    previously written blocks are considered durable (crash simulation in
    :class:`MemoryBlockDevice` keys off this).
    """

    def __init__(self, block_size: int, block_count: int):
        if block_size <= 0 or block_size % 512 != 0:
            raise ValueError(f"block_size must be a positive multiple of 512, got {block_size}")
        if block_count <= 0:
            raise ValueError(f"block_count must be positive, got {block_count}")
        self.block_size = block_size
        self.block_count = block_count
        self.io_stats = DeviceIOStats()

    @property
    def size_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.block_size * self.block_count

    def check_block(self, block: int) -> None:
        """Raise :class:`DeviceError` if ``block`` is out of range."""
        if not 0 <= block < self.block_count:
            raise DeviceError(f"block {block} out of range [0, {self.block_count})", block=block)

    @abstractmethod
    def read_block(self, block: int) -> bytes:
        """Return the ``block_size`` bytes stored at ``block``."""

    @abstractmethod
    def write_block(self, block: int, data: bytes) -> None:
        """Store ``data`` (exactly ``block_size`` bytes) at ``block``."""

    @abstractmethod
    def flush(self) -> None:
        """Barrier: make all prior writes durable."""

    def close(self) -> None:
        """Release any resources.  Safe to call more than once."""

    def _check_write(self, block: int, data: bytes) -> None:
        self.check_block(block)
        if len(data) != self.block_size:
            raise DeviceError(
                f"write of {len(data)} bytes to block {block}; block size is {self.block_size}",
                block=block,
            )


class MemoryBlockDevice(BlockDevice):
    """A ``bytearray``-backed device with optional crash simulation.

    When ``track_durability`` is true the device keeps a second copy of the
    image representing what would survive a power failure: writes land only
    in the volatile image until ``flush`` copies them to the durable image.
    ``crash()`` then discards the volatile image.  The journal-atomicity
    property tests (DESIGN §5.5) are built on this.
    """

    def __init__(self, block_size: int = 4096, block_count: int = 4096, track_durability: bool = False):
        super().__init__(block_size, block_count)
        self._data = bytearray(self.size_bytes)
        self._track_durability = track_durability
        self._durable: bytearray | None = bytearray(self.size_bytes) if track_durability else None
        self._dirty_since_flush: set[int] = set()
        self._closed = False

    def read_block(self, block: int) -> bytes:
        if self._closed:
            raise DeviceError("device is closed", block=block)
        self.check_block(block)
        self.io_stats.reads += 1
        off = block * self.block_size
        return bytes(self._data[off : off + self.block_size])

    def write_block(self, block: int, data: bytes) -> None:
        if self._closed:
            raise DeviceError("device is closed", block=block)
        self._check_write(block, data)
        self.io_stats.writes += 1
        off = block * self.block_size
        self._data[off : off + self.block_size] = data
        if self._track_durability:
            self._dirty_since_flush.add(block)

    def flush(self) -> None:
        if self._closed:
            raise DeviceError("device is closed")
        self.io_stats.flushes += 1
        if self._track_durability:
            assert self._durable is not None
            for block in self._dirty_since_flush:
                off = block * self.block_size
                self._durable[off : off + self.block_size] = self._data[off : off + self.block_size]
            self._dirty_since_flush.clear()

    def crash(self) -> None:
        """Simulate a power failure: discard un-flushed writes.

        Only meaningful with ``track_durability``; without it the call is
        rejected because there is no durable image to fall back to.
        """
        if not self._track_durability:
            raise DeviceError("crash() requires track_durability=True")
        assert self._durable is not None
        self._data = bytearray(self._durable)
        self._dirty_since_flush.clear()

    def snapshot(self) -> bytes:
        """Return a copy of the current (volatile) image."""
        return bytes(self._data)

    def restore(self, image: bytes) -> None:
        """Replace the image contents (both volatile and durable views)."""
        if len(image) != self.size_bytes:
            raise DeviceError(f"image is {len(image)} bytes; device holds {self.size_bytes}")
        self._data = bytearray(image)
        if self._track_durability:
            self._durable = bytearray(image)
            self._dirty_since_flush.clear()

    def close(self) -> None:
        self._closed = True


class FileBlockDevice(BlockDevice):
    """A device backed by a regular file on the host filesystem.

    The file is created (zero-filled) if it does not exist or is too short.
    ``flush`` maps to ``os.fsync``.  Because the image lives in a real file,
    a shadow process started by :mod:`repro.core.procrunner` can open its
    own read-only :class:`FileBlockDevice` on the same path.
    """

    def __init__(self, path: str | os.PathLike, block_size: int = 4096, block_count: int = 4096, readonly: bool = False):
        super().__init__(block_size, block_count)
        self.path = os.fspath(path)
        self.readonly = readonly
        mode = "rb" if readonly else ("r+b" if os.path.exists(self.path) else "w+b")
        self._file = open(self.path, mode)
        if not readonly:
            self._file.seek(0, os.SEEK_END)
            current = self._file.tell()
            if current < self.size_bytes:
                self._file.truncate(self.size_bytes)
        self._closed = False

    def read_block(self, block: int) -> bytes:
        if self._closed:
            raise DeviceError("device is closed", block=block)
        self.check_block(block)
        self.io_stats.reads += 1
        self._file.seek(block * self.block_size)
        data = self._file.read(self.block_size)
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        return data

    def write_block(self, block: int, data: bytes) -> None:
        if self._closed:
            raise DeviceError("device is closed", block=block)
        if self.readonly:
            raise DeviceError(f"write to read-only device {self.path}", block=block)
        self._check_write(block, data)
        self.io_stats.writes += 1
        self._file.seek(block * self.block_size)
        self._file.write(data)

    def flush(self) -> None:
        if self._closed:
            raise DeviceError("device is closed")
        self.io_stats.flushes += 1
        if not self.readonly:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True


class WriteFencedDevice(BlockDevice):
    """A read-only view of another device that *raises* on writes.

    This is how the reproduction enforces the paper's rule that the shadow
    never writes to disk: the recovery coordinator always hands the shadow a
    write-fenced device, and :class:`~repro.errors.ShadowWriteAttempt` is a
    non-recoverable programming error, not a maskable fault.
    """

    def __init__(self, inner: BlockDevice):
        super().__init__(inner.block_size, inner.block_count)
        self._inner = inner

    def read_block(self, block: int) -> bytes:
        return self._inner.read_block(block)

    def write_block(self, block: int, data: bytes) -> None:
        raise ShadowWriteAttempt(f"shadow attempted to write block {block}")

    def flush(self) -> None:
        raise ShadowWriteAttempt("shadow attempted to flush the device")

    def close(self) -> None:
        """Closing the fence does not close the underlying device."""


class CountingDevice(BlockDevice):
    """Pass-through wrapper that counts IO operations.

    Benchmarks use the counters to report IO amplification; tests use them
    to assert properties such as "the dentry cache eliminated repeat
    directory reads" or "the shadow issued no writes".
    """

    def __init__(self, inner: BlockDevice):
        super().__init__(inner.block_size, inner.block_count)
        self._inner = inner
        self.reads = 0
        self.writes = 0
        self.flushes = 0
        self.blocks_read: list[int] = []
        self.blocks_written: list[int] = []

    def read_block(self, block: int) -> bytes:
        self.reads += 1
        self.blocks_read.append(block)
        return self._inner.read_block(block)

    def write_block(self, block: int, data: bytes) -> None:
        self.writes += 1
        self.blocks_written.append(block)
        self._inner.write_block(block, data)

    def flush(self) -> None:
        self.flushes += 1
        self._inner.flush()

    def reset_counts(self) -> None:
        """Zero all counters (the wrapped device is untouched)."""
        self.reads = 0
        self.writes = 0
        self.flushes = 0
        self.blocks_read.clear()
        self.blocks_written.clear()

    def close(self) -> None:
        self._inner.close()
