"""Block device substrate.

This package models the storage stack below the filesystem:

* :mod:`repro.blockdev.device` — synchronous block devices (memory- and
  file-backed), plus wrappers used throughout the reproduction: a write
  fence that enforces the shadow's never-write rule, and an IO-counting
  wrapper used by benchmarks.
* :mod:`repro.blockdev.faults` — deterministic fault injection at the
  device boundary: transient read errors and silent corruption, the
  hardware-fault half of the paper's fault model.
* :mod:`repro.blockdev.blkmq` — a blk-mq-style asynchronous block layer
  with per-queue submission/completion rings and pluggable IO schedulers.
  Only the base filesystem uses it; the shadow does synchronous IO.
* :mod:`repro.blockdev.cache` — a write-back buffer cache with LRU
  eviction and dirty tracking, again base-only.
"""

from repro.blockdev.device import (
    BlockDevice,
    CountingDevice,
    FileBlockDevice,
    MemoryBlockDevice,
    WriteFencedDevice,
)
from repro.blockdev.faults import DeviceFaultPlan, FaultyBlockDevice
from repro.blockdev.blkmq import BlockMQ, IoRequest, IoScheduler, NoopScheduler, DeadlineScheduler
from repro.blockdev.cache import BufferCache

__all__ = [
    "BlockDevice",
    "MemoryBlockDevice",
    "FileBlockDevice",
    "WriteFencedDevice",
    "CountingDevice",
    "DeviceFaultPlan",
    "FaultyBlockDevice",
    "BlockMQ",
    "IoRequest",
    "IoScheduler",
    "NoopScheduler",
    "DeadlineScheduler",
    "BufferCache",
]
