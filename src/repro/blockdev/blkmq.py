"""A blk-mq-style asynchronous block layer.

The paper repeatedly singles out the modern asynchronous block layer
(blk-mq, io_uring, polling-mode IO) as a source of complexity — and of bugs
— in the base filesystem's environment, and its *absence* as a defining
simplification of the shadow ("performs IO synchronously").  This module
models that layer for the base:

* callers build :class:`IoRequest` objects and ``submit`` them to one of
  several hardware-context queues (selected by block number, like blk-mq's
  per-CPU software queues mapping to hardware queues);
* a pluggable :class:`IoScheduler` orders each queue's pending requests;
* :meth:`BlockMQ.pump` dispatches up to a configurable number of requests
  per call to the underlying synchronous device and moves them to the
  completion list, where callbacks fire.

Everything is deterministic — there are no threads.  "Asynchrony" means
requests sit in queues until a pump step, which is exactly what the
write-back machinery of the base needs, and what makes the base's behaviour
reproducible in tests.  Benchmarks use queue depth and merge statistics to
show the base's common-path IO batching (Figure 2's left side).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.blockdev.device import BlockDevice
from repro.errors import DeviceError


@dataclass
class IoRequest:
    """One asynchronous block IO request.

    ``op`` is ``"read"``, ``"write"``, or ``"flush"``.  ``callback`` (if
    set) runs at completion with the finished request; for reads the data is
    in ``result``, for failures ``error`` is set instead.
    """

    op: str
    block: int = 0
    data: bytes | None = None
    callback: Callable[["IoRequest"], None] | None = None
    tag: int = 0
    result: bytes | None = None
    error: Exception | None = None
    done: bool = False

    def complete(self, result: bytes | None = None, error: Exception | None = None) -> None:
        self.result = result
        self.error = error
        self.done = True
        if self.callback is not None:
            self.callback(self)


class IoScheduler(ABC):
    """Orders the pending requests of one hardware queue."""

    @abstractmethod
    def order(self, pending: list[IoRequest]) -> list[IoRequest]:
        """Return ``pending`` in dispatch order (must be a permutation)."""


class NoopScheduler(IoScheduler):
    """FIFO dispatch — the no-op elevator."""

    def order(self, pending: list[IoRequest]) -> list[IoRequest]:
        return list(pending)


class DeadlineScheduler(IoScheduler):
    """Sort by block number, reads before writes, preserving arrival ties.

    A simplified deadline/elevator hybrid: it demonstrates that the base's
    IO completion *order* differs from submission order, which is one of
    the non-determinism sources the shadow eliminates.
    """

    def order(self, pending: list[IoRequest]) -> list[IoRequest]:
        reads = sorted((r for r in pending if r.op == "read"), key=lambda r: (r.block, r.tag))
        other = sorted((r for r in pending if r.op != "read"), key=lambda r: (r.block, r.tag))
        return reads + other


@dataclass
class BlockMQStats:
    """Counters exposed to benchmarks."""

    submitted: int = 0
    dispatched: int = 0
    merged: int = 0
    max_queue_depth: int = 0
    pump_calls: int = 0


class BlockMQ:
    """Multi-queue asynchronous front-end over a synchronous device.

    ``nr_queues`` hardware contexts each hold a pending list; ``submit``
    hashes the request's block to a queue and attempts a write-merge (a
    newer write to the same block replaces the queued one — the classic
    write-combining the page cache relies on).  ``pump(budget)`` dispatches
    up to ``budget`` requests round-robin across queues; ``drain`` pumps
    until empty.  ``fail_submissions`` lets the bug injector wedge the
    layer, modelling the block-layer interaction bugs from the study.
    """

    def __init__(
        self,
        device: BlockDevice,
        nr_queues: int = 4,
        scheduler: IoScheduler | None = None,
    ):
        if nr_queues <= 0:
            raise ValueError("nr_queues must be positive")
        self.device = device
        self.nr_queues = nr_queues
        self.scheduler = scheduler or NoopScheduler()
        self._queues: list[list[IoRequest]] = [[] for _ in range(nr_queues)]
        self._tag_counter = itertools.count()
        self.completed: list[IoRequest] = []
        self.stats = BlockMQStats()
        self.fail_submissions = False

    def queue_for(self, block: int) -> int:
        """Map a block number to a hardware-queue index."""
        return block % self.nr_queues

    @property
    def depth(self) -> int:
        """Total requests currently queued (not yet dispatched)."""
        return sum(len(q) for q in self._queues)

    def submit(self, request: IoRequest) -> IoRequest:
        """Queue a request; returns it with its dispatch tag assigned."""
        if self.fail_submissions:
            raise DeviceError("block layer is wedged (injected)", block=request.block)
        if request.op not in ("read", "write", "flush"):
            raise ValueError(f"unknown IO op {request.op!r}")
        if request.op == "write" and request.data is None:
            raise ValueError("write request without data")
        request.tag = next(self._tag_counter)
        queue = self._queues[self.queue_for(request.block)]

        if request.op == "write":
            for i, pending in enumerate(queue):
                if pending.op == "write" and pending.block == request.block:
                    # Write merge: the newer data supersedes the queued write.
                    queue[i] = request
                    self.stats.merged += 1
                    self.stats.submitted += 1
                    pending.complete(error=None)
                    return request

        queue.append(request)
        self.stats.submitted += 1
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, self.depth)
        return request

    def submit_write(self, block: int, data: bytes, callback: Callable[[IoRequest], None] | None = None) -> IoRequest:
        return self.submit(IoRequest(op="write", block=block, data=data, callback=callback))

    def submit_read(self, block: int, callback: Callable[[IoRequest], None] | None = None) -> IoRequest:
        return self.submit(IoRequest(op="read", block=block, callback=callback))

    def submit_flush(self, callback: Callable[[IoRequest], None] | None = None) -> IoRequest:
        return self.submit(IoRequest(op="flush", callback=callback))

    def pump(self, budget: int = 64) -> int:
        """Dispatch up to ``budget`` queued requests; return the number done.

        Queues are visited round-robin; within a queue the scheduler decides
        order.  Errors from the device are captured on the request rather
        than raised, mirroring asynchronous completion status.
        """
        self.stats.pump_calls += 1
        dispatched = 0
        ordered: list[list[IoRequest]] = [self.scheduler.order(q) for q in self._queues]
        for q in self._queues:
            q.clear()
        cursors = [0] * self.nr_queues
        while dispatched < budget:
            progressed = False
            for qi in range(self.nr_queues):
                if dispatched >= budget:
                    break
                if cursors[qi] < len(ordered[qi]):
                    request = ordered[qi][cursors[qi]]
                    cursors[qi] += 1
                    self._dispatch(request)
                    dispatched += 1
                    progressed = True
            if not progressed:
                break
        # Anything not dispatched goes back on its queue in order.
        for qi in range(self.nr_queues):
            self._queues[qi].extend(ordered[qi][cursors[qi] :])
        return dispatched

    def drain(self) -> int:
        """Pump until all queues are empty; return total dispatched."""
        total = 0
        while self.depth:
            total += self.pump()
        return total

    def _dispatch(self, request: IoRequest) -> None:
        self.stats.dispatched += 1
        try:
            if request.op == "read":
                request.complete(result=self.device.read_block(request.block))
            elif request.op == "write":
                assert request.data is not None
                self.device.write_block(request.block, request.data)
                request.complete()
            else:
                self.device.flush()
                request.complete()
        except Exception as exc:  # raelint: disable=ERRNO-DISCIPLINE — async-completion contract: the error must reach the reaper via request.error, never unwind the pump
            request.complete(error=exc)
        self.completed.append(request)

    def reap(self) -> list[IoRequest]:
        """Return and clear the completed-request list."""
        done = self.completed
        self.completed = []
        return done
