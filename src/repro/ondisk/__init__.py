"""The shared on-disk format.

RAE's central constraint is that the base and shadow filesystems "adhere to
the same API and on-disk formats" — the shadow must be able to mount the
very image the base was mutating.  This package is that contract: a binary
ext2/4-flavoured format with

* a checksummed superblock (:mod:`repro.ondisk.superblock`),
* block groups of block/inode bitmaps + inode tables
  (:mod:`repro.ondisk.layout`, :mod:`repro.ondisk.bitmap`),
* 256-byte inodes with 12 direct, one single-indirect and one
  double-indirect block pointer (:mod:`repro.ondisk.inode`,
  :mod:`repro.ondisk.mapping`),
* ext2-style variable-length directory entries
  (:mod:`repro.ondisk.directory`),
* a JBD2-style physical journal (:mod:`repro.ondisk.journal`),
* ``mkfs`` and image inspection tools (:mod:`repro.ondisk.mkfs`,
  :mod:`repro.ondisk.image`).

Everything here is pure (de)serialization plus arithmetic: no caching, no
policy.  The base and the shadow each build their own machinery on top.
"""

from repro.ondisk.layout import DiskLayout, BLOCK_SIZE, ROOT_INO, INODE_SIZE
from repro.ondisk.superblock import Superblock, SUPERBLOCK_MAGIC
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.inode import OnDiskInode, FileType, N_DIRECT
from repro.ondisk.directory import DirEntry, DirBlock, MAX_NAME_LEN
from repro.ondisk.journal import JournalWriter, JournalTxn, replay_journal, reset_journal
from repro.ondisk.mkfs import mkfs
from repro.ondisk.mapping import BlockMapReader

__all__ = [
    "DiskLayout",
    "BLOCK_SIZE",
    "ROOT_INO",
    "INODE_SIZE",
    "Superblock",
    "SUPERBLOCK_MAGIC",
    "Bitmap",
    "OnDiskInode",
    "FileType",
    "N_DIRECT",
    "DirEntry",
    "DirBlock",
    "MAX_NAME_LEN",
    "JournalWriter",
    "JournalTxn",
    "replay_journal",
    "reset_journal",
    "mkfs",
    "BlockMapReader",
]
