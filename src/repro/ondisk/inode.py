"""On-disk inodes.

Each inode is 256 bytes: type/permissions, ownership, link count, size,
logical timestamps, 12 direct block pointers, one single-indirect and one
double-indirect pointer, a generation number, and a trailing CRC.  A block
pointer of 0 means "hole / unallocated" (block 0 is the superblock, so it
can never legitimately be file data).

With 4 KiB blocks the size ceiling is ``(12 + 1024 + 1024²) * 4096`` ≈ 4 GiB,
far beyond anything the experiments create, but enforced anyway
(``EFBIG``) because bound checks are exactly the kind of input sanity the
bug study found missing in real filesystems.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.ondisk.layout import BLOCK_SIZE, INODE_SIZE
from repro.util import checksum32

N_DIRECT = 12
PTRS_PER_BLOCK = BLOCK_SIZE // 4  # 1024 u32 pointers per indirect block

MAX_FILE_BLOCKS = N_DIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK
MAX_FILE_SIZE = MAX_FILE_BLOCKS * BLOCK_SIZE


class FileType(enum.IntEnum):
    """File type stored in the high bits of ``mode`` (values are ad hoc)."""

    NONE = 0
    REGULAR = 1
    DIRECTORY = 2
    SYMLINK = 3


_TYPE_SHIFT = 12
_PERM_MASK = 0o7777

# mode, uid, gid, nlink, flags, size, atime, mtime, ctime, generation,
# 12 direct, indirect, double_indirect, checksum
_FORMAT = "<IIIIIQQQQI" + "I" * N_DIRECT + "III"
_SIZE = struct.calcsize(_FORMAT)
assert _SIZE <= INODE_SIZE, _SIZE


def make_mode(ftype: FileType, perms: int = 0o644) -> int:
    """Compose a mode word from a file type and permission bits."""
    return (int(ftype) << _TYPE_SHIFT) | (perms & _PERM_MASK)


@dataclass
class OnDiskInode:
    """One inode as stored in the inode table.

    The dataclass is mutable working state; ``pack`` freezes it into its
    256-byte slot.  Equality compares every stored field, which the
    base/shadow equivalence checker relies on (timestamps are logical, so
    they too must agree).
    """

    mode: int = 0
    uid: int = 0
    gid: int = 0
    nlink: int = 0
    flags: int = 0
    size: int = 0
    atime: int = 0
    mtime: int = 0
    ctime: int = 0
    generation: int = 0
    direct: list[int] = field(default_factory=lambda: [0] * N_DIRECT)
    indirect: int = 0
    double_indirect: int = 0

    # ---- type helpers ----------------------------------------------------

    @property
    def ftype(self) -> FileType:
        raw = self.mode >> _TYPE_SHIFT
        try:
            return FileType(raw)
        except ValueError:
            return FileType.NONE

    @property
    def perms(self) -> int:
        return self.mode & _PERM_MASK

    @property
    def is_regular(self) -> bool:
        return self.ftype == FileType.REGULAR

    @property
    def is_dir(self) -> bool:
        return self.ftype == FileType.DIRECTORY

    @property
    def is_symlink(self) -> bool:
        return self.ftype == FileType.SYMLINK

    @property
    def is_free(self) -> bool:
        """An all-zero mode marks a never-used / freed inode slot."""
        return self.mode == 0

    def block_count(self) -> int:
        """Logical blocks spanned by ``size`` (not blocks allocated)."""
        return (self.size + BLOCK_SIZE - 1) // BLOCK_SIZE

    # ---- serialization ---------------------------------------------------

    def pack(self) -> bytes:
        if len(self.direct) != N_DIRECT:
            raise ValueError(f"inode has {len(self.direct)} direct pointers, expected {N_DIRECT}")
        body = struct.pack(
            _FORMAT,
            self.mode,
            self.uid,
            self.gid,
            self.nlink,
            self.flags,
            self.size,
            self.atime,
            self.mtime,
            self.ctime,
            self.generation,
            *self.direct,
            self.indirect,
            self.double_indirect,
            0,
        )
        crc = checksum32(body[: _SIZE - 4])
        body = body[: _SIZE - 4] + struct.pack("<I", crc)
        return body + b"\x00" * (INODE_SIZE - len(body))

    @classmethod
    def unpack(cls, raw: bytes, verify: bool = True) -> "OnDiskInode":
        """Parse a 256-byte inode slot.

        A completely zeroed slot parses as a free inode without checksum
        verification (zero is not a valid CRC of the zero prefix, and free
        slots are simply never written).  Any nonzero slot must checksum.
        """
        if len(raw) < _SIZE:
            raise ValueError(f"inode slot too short: {len(raw)} bytes")
        if raw[:_SIZE] == b"\x00" * _SIZE:
            return cls()
        fields = struct.unpack(_FORMAT, raw[:_SIZE])
        stored_crc = fields[-1]
        if verify:
            actual_crc = checksum32(raw[: _SIZE - 4])
            if actual_crc != stored_crc:
                raise ValueError(
                    f"inode checksum mismatch: stored 0x{stored_crc:08x}, computed 0x{actual_crc:08x}"
                )
        ino = cls(
            mode=fields[0],
            uid=fields[1],
            gid=fields[2],
            nlink=fields[3],
            flags=fields[4],
            size=fields[5],
            atime=fields[6],
            mtime=fields[7],
            ctime=fields[8],
            generation=fields[9],
            direct=list(fields[10 : 10 + N_DIRECT]),
            indirect=fields[10 + N_DIRECT],
            double_indirect=fields[11 + N_DIRECT],
        )
        return ino

    def copy(self) -> "OnDiskInode":
        return OnDiskInode(
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            nlink=self.nlink,
            flags=self.flags,
            size=self.size,
            atime=self.atime,
            mtime=self.mtime,
            ctime=self.ctime,
            generation=self.generation,
            direct=list(self.direct),
            indirect=self.indirect,
            double_indirect=self.double_indirect,
        )

    def direct_and_indirect_roots(self) -> list[int]:
        """All nonzero top-level pointers (for fsck reachability scans)."""
        roots = [b for b in self.direct if b]
        if self.indirect:
            roots.append(self.indirect)
        if self.double_indirect:
            roots.append(self.double_indirect)
        return roots
