"""Disk geometry.

The image is divided into equal *block groups*, ext2-style, with every
block of the device belonging to exactly one group::

    group 0:  [ SB ][ journal ... ][ BB ][ IB ][ inode table ][ data ... ]
    group g:  [ BB ][ IB ][ inode table ][ data ... ]

where ``SB`` is the superblock (block 0), ``BB``/``IB`` are the group's
block and inode bitmaps, and the journal lives at the front of group 0
only.  Each group's block bitmap covers *its own* block range, including
the metadata blocks inside it (marked allocated at mkfs time).

Inode numbers are 1-based; 0 means "no inode" in directory entries and
block pointers.  Inode ``ROOT_INO`` (2, as in ext2) is the root directory;
inode 1 is reserved.  Inode ``i`` lives in group ``(i-1) //
inodes_per_group`` at index ``(i-1) % inodes_per_group`` in that group's
table.

:class:`DiskLayout` is pure arithmetic over these rules and is shared by
mkfs, the base, the shadow, fsck, and the crafted-image generator — any
disagreement about geometry would be a format bug, so there is exactly one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

BLOCK_SIZE = 4096
INODE_SIZE = 256
INODES_PER_BLOCK = BLOCK_SIZE // INODE_SIZE  # 16

ROOT_INO = 2
FIRST_FREE_INO = 3  # 0 invalid, 1 reserved, 2 root

DEFAULT_BLOCKS_PER_GROUP = 1024
DEFAULT_INODES_PER_GROUP = 256
# 1 MiB of journal: large enough that a recovery hand-off commit — the
# biggest single transaction the system produces — fits as one atomic
# multi-chunk group (ext4's default journal is 64x this).
DEFAULT_JOURNAL_BLOCKS = 256


@dataclass(frozen=True)
class DiskLayout:
    """Immutable geometry for one filesystem image.

    Constructed either directly (mkfs) or from a superblock (mount).  All
    methods raise ``ValueError`` on out-of-range arguments, because callers
    include fsck and the crafted-image attack path where garbage input is
    the whole point.
    """

    block_count: int
    blocks_per_group: int = DEFAULT_BLOCKS_PER_GROUP
    inodes_per_group: int = DEFAULT_INODES_PER_GROUP
    journal_blocks: int = DEFAULT_JOURNAL_BLOCKS

    def __post_init__(self):
        if self.blocks_per_group < 8:
            raise ValueError(f"blocks_per_group too small: {self.blocks_per_group}")
        if self.blocks_per_group > BLOCK_SIZE * 8:
            raise ValueError("blocks_per_group exceeds one bitmap block")
        if self.inodes_per_group % INODES_PER_BLOCK != 0:
            raise ValueError(f"inodes_per_group must be a multiple of {INODES_PER_BLOCK}")
        if self.inodes_per_group > BLOCK_SIZE * 8:
            raise ValueError("inodes_per_group exceeds one bitmap block")
        if self.block_count < self.blocks_per_group:
            raise ValueError("device smaller than one block group")
        if self.journal_blocks < 8:
            raise ValueError(f"journal_blocks too small: {self.journal_blocks}")
        min_group0 = 1 + self.journal_blocks + 2 + self.inode_table_blocks + 1
        if self.blocks_per_group < min_group0:
            raise ValueError(
                f"group 0 metadata ({min_group0} blocks) does not fit in a "
                f"{self.blocks_per_group}-block group"
            )

    # ---- derived sizes -------------------------------------------------

    @property
    def inode_table_blocks(self) -> int:
        """Blocks occupied by one group's inode table."""
        return self.inodes_per_group // INODES_PER_BLOCK

    @property
    def group_count(self) -> int:
        """Number of (possibly partial-last) block groups."""
        return (self.block_count + self.blocks_per_group - 1) // self.blocks_per_group

    @property
    def inode_count(self) -> int:
        """Total inodes on the image."""
        return self.group_count * self.inodes_per_group

    @property
    def journal_start(self) -> int:
        """First journal block (immediately after the superblock)."""
        return 1

    # ---- per-group arithmetic -------------------------------------------

    def check_group(self, group: int) -> None:
        if not 0 <= group < self.group_count:
            raise ValueError(f"group {group} out of range [0, {self.group_count})")

    def group_start(self, group: int) -> int:
        """First block of ``group``."""
        self.check_group(group)
        return group * self.blocks_per_group

    def group_block_count(self, group: int) -> int:
        """Blocks actually present in ``group`` (the last may be short)."""
        self.check_group(group)
        start = self.group_start(group)
        return min(self.blocks_per_group, self.block_count - start)

    def _meta_start(self, group: int) -> int:
        """First metadata block of ``group`` (after SB+journal in group 0)."""
        start = self.group_start(group)
        if group == 0:
            return start + 1 + self.journal_blocks
        return start

    def block_bitmap_block(self, group: int) -> int:
        self.check_group(group)
        return self._meta_start(group)

    def inode_bitmap_block(self, group: int) -> int:
        self.check_group(group)
        return self._meta_start(group) + 1

    def inode_table_start(self, group: int) -> int:
        self.check_group(group)
        return self._meta_start(group) + 2

    def data_start(self, group: int) -> int:
        """First general-purpose data block of ``group``."""
        self.check_group(group)
        return self.inode_table_start(group) + self.inode_table_blocks

    def metadata_blocks(self, group: int) -> list[int]:
        """Every block of ``group`` reserved for metadata (incl. SB/journal)."""
        self.check_group(group)
        blocks = []
        if group == 0:
            blocks.append(0)
            blocks.extend(range(self.journal_start, self.journal_start + self.journal_blocks))
        blocks.append(self.block_bitmap_block(group))
        blocks.append(self.inode_bitmap_block(group))
        start = self.inode_table_start(group)
        blocks.extend(range(start, start + self.inode_table_blocks))
        return blocks

    def group_of_block(self, block: int) -> int:
        if not 0 <= block < self.block_count:
            raise ValueError(f"block {block} out of range [0, {self.block_count})")
        return block // self.blocks_per_group

    def is_metadata_block(self, block: int) -> bool:
        """True if ``block`` holds format metadata (never file data)."""
        group = self.group_of_block(block)
        return block in self.metadata_blocks(group)

    def data_blocks_in_group(self, group: int) -> range:
        """The data-block range of ``group``."""
        self.check_group(group)
        start = self.group_start(group)
        return range(self.data_start(group), start + self.group_block_count(group))

    # ---- inode arithmetic ------------------------------------------------

    def check_ino(self, ino: int) -> None:
        if not 1 <= ino <= self.inode_count:
            raise ValueError(f"inode {ino} out of range [1, {self.inode_count}]")

    def group_of_ino(self, ino: int) -> int:
        self.check_ino(ino)
        return (ino - 1) // self.inodes_per_group

    def ino_index_in_group(self, ino: int) -> int:
        self.check_ino(ino)
        return (ino - 1) % self.inodes_per_group

    def inode_location(self, ino: int) -> tuple[int, int]:
        """Return ``(block, byte_offset)`` of inode ``ino`` on disk."""
        group = self.group_of_ino(ino)
        index = self.ino_index_in_group(ino)
        block = self.inode_table_start(group) + index // INODES_PER_BLOCK
        offset = (index % INODES_PER_BLOCK) * INODE_SIZE
        return block, offset
