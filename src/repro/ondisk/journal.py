"""Physical metadata journal (JBD2-flavoured).

The journal occupies a fixed region at the front of group 0.  Block 0 of
the region is a journal superblock; transactions are laid out sequentially
after it::

    [ JSB ][ D | data... | C ][ D | data... | C ] ...

* **descriptor** (D): magic, sequence number, tag count, then the home
  block number of each following data block, then a CRC;
* **data**: the new contents of each journaled (metadata) block;
* **commit** (C): magic, sequence number, a CRC over the transaction's
  data blocks, and its own header CRC.

A transaction is *committed* iff its commit block is present, sequenced,
and both checksums verify.  Replay scans from the journal superblock's
starting sequence, applies every committed transaction in order to the
home locations, and stops at the first hole — which yields the prefix
semantics the journal-atomicity property test (DESIGN §5.5) asserts.

There is no wraparound: when the region cannot fit the next transaction,
the journal *manager* (base side) checkpoints dirty metadata and calls
:func:`reset_journal`, which bumps the starting sequence and rewinds the
write position.  That is a simplification of JBD2's circular log, but it
preserves the property RAE relies on: the on-disk state reachable by
replay is always a transaction-consistent prefix.

The journal is metadata-only (ordered mode): file data blocks are written
in place before the transaction that references them commits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.blockdev.device import BlockDevice
from repro.ondisk.layout import BLOCK_SIZE, DiskLayout
from repro.util import checksum32

JOURNAL_MAGIC = 0x10DE_10AD
JSB_MAGIC = 0x1051_B10C

_BLOCKTYPE_DESCRIPTOR = 1
_BLOCKTYPE_COMMIT = 2

_JSB_FORMAT = "<IIQI"  # magic, version, start_seq, crc
_DESC_HEADER = "<IIQII"  # magic, blocktype, seq, ntags, flags  (crc after tags)
_COMMIT_FORMAT = "<IIQII"  # magic, blocktype, seq, data_crc, header_crc

#: Descriptor flag: this transaction is a non-final chunk of a larger
#: atomic commit group; replay must not apply the group until a final
#: (flag-less) member arrives.
FLAG_MORE_CHUNKS = 1

_DESC_HEADER_SIZE = struct.calcsize(_DESC_HEADER)
MAX_TAGS = (BLOCK_SIZE - _DESC_HEADER_SIZE - 4) // 4


@dataclass
class JournalTxn:
    """One committed transaction: home-block number -> new contents."""

    seq: int
    writes: dict[int, bytes] = field(default_factory=dict)

    def apply(self, device: BlockDevice) -> None:
        """Write every journaled block to its home location."""
        for block, data in self.writes.items():
            device.write_block(block, data)


def _pack_jsb(start_seq: int) -> bytes:
    body = struct.pack(_JSB_FORMAT, JSB_MAGIC, 1, start_seq, 0)
    crc = checksum32(body[:-4])
    body = body[:-4] + struct.pack("<I", crc)
    return body + b"\x00" * (BLOCK_SIZE - len(body))


def _unpack_jsb(block: bytes) -> int:
    """Return the starting sequence, or raise ValueError."""
    magic, version, start_seq, stored_crc = struct.unpack_from(_JSB_FORMAT, block)
    if magic != JSB_MAGIC:
        raise ValueError(f"bad journal superblock magic 0x{magic:08x}")
    if version != 1:
        raise ValueError(f"unsupported journal version {version}")
    size = struct.calcsize(_JSB_FORMAT)
    if checksum32(block[: size - 4]) != stored_crc:
        raise ValueError("journal superblock checksum mismatch")
    return start_seq


def reset_journal(device: BlockDevice, layout: DiskLayout, start_seq: int = 1) -> None:
    """(Re)initialize the journal region: fresh superblock, no transactions.

    Old transaction blocks are left in place — a stale descriptor after the
    reset point cannot replay because its sequence predates ``start_seq``.
    """
    device.write_block(layout.journal_start, _pack_jsb(start_seq))


class JournalWriter:
    """Appends transactions to the journal region.

    The writer owns the region's write cursor and sequence counter.  It is
    used by the base's journal manager only — the shadow never journals
    (it never writes at all).
    """

    def __init__(self, device: BlockDevice, layout: DiskLayout):
        self.device = device
        self.layout = layout
        start_seq = _unpack_jsb(device.read_block(layout.journal_start))
        self.next_seq = start_seq
        self._cursor = layout.journal_start + 1
        self._end = layout.journal_start + layout.journal_blocks

    @property
    def free_blocks(self) -> int:
        """Journal blocks still available before a reset is required."""
        return self._end - self._cursor

    def blocks_needed(self, nwrites: int) -> int:
        """Journal footprint of a transaction with ``nwrites`` blocks."""
        if nwrites > MAX_TAGS:
            raise ValueError(f"transaction of {nwrites} blocks exceeds MAX_TAGS {MAX_TAGS}")
        return 1 + nwrites + 1  # descriptor + data + commit

    def can_fit(self, nwrites: int) -> bool:
        return self.blocks_needed(nwrites) <= self.free_blocks

    def append(self, writes: dict[int, bytes], more: bool = False) -> int:
        """Write one transaction; returns its sequence number.

        The commit block is written *after* the descriptor and data and is
        followed by a device flush, giving the usual write-ahead ordering.
        The caller must have verified :meth:`can_fit`.

        ``more`` marks this transaction as a non-final chunk of an atomic
        commit group: replay withholds the whole group until a final
        (``more=False``) member commits, so a crash between chunks can
        never surface a partially-applied commit.
        """
        if not writes:
            raise ValueError("empty transaction")
        if not self.can_fit(len(writes)):
            raise ValueError(
                f"transaction of {len(writes)} blocks does not fit "
                f"({self.free_blocks} journal blocks free); checkpoint first"
            )
        for block, data in writes.items():
            if len(data) != BLOCK_SIZE:
                raise ValueError(f"journaled block {block} has {len(data)} bytes")
            if self.layout.journal_start <= block < self._end:
                raise ValueError(f"refusing to journal a write into the journal region (block {block})")

        seq = self.next_seq
        targets = sorted(writes)  # deterministic on-journal order

        flags = FLAG_MORE_CHUNKS if more else 0
        descriptor = struct.pack(_DESC_HEADER, JOURNAL_MAGIC, _BLOCKTYPE_DESCRIPTOR, seq, len(targets), flags)
        descriptor += struct.pack(f"<{len(targets)}I", *targets)
        descriptor += struct.pack("<I", checksum32(descriptor))
        descriptor += b"\x00" * (BLOCK_SIZE - len(descriptor))
        self.device.write_block(self._cursor, descriptor)
        self._cursor += 1

        data_crc = 0
        for block in targets:
            self.device.write_block(self._cursor, writes[block])
            data_crc = checksum32(struct.pack("<I", data_crc) + writes[block])
            self._cursor += 1

        commit = struct.pack(_COMMIT_FORMAT, JOURNAL_MAGIC, _BLOCKTYPE_COMMIT, seq, data_crc, 0)
        crc = checksum32(commit[:-4])
        commit = commit[:-4] + struct.pack("<I", crc)
        commit += b"\x00" * (BLOCK_SIZE - len(commit))
        # Barrier before the commit record: descriptor+data must be durable
        # before the commit block can claim the transaction happened.
        self.device.flush()
        self.device.write_block(self._cursor, commit)
        self._cursor += 1
        self.device.flush()

        self.next_seq += 1
        return seq

    def reset(self) -> None:
        """Checkpoint boundary: rewind the region under a fresh sequence."""
        reset_journal(self.device, self.layout, start_seq=self.next_seq)
        self.device.flush()
        self._cursor = self.layout.journal_start + 1


def replay_journal(device: BlockDevice, layout: DiskLayout, apply: bool = True) -> list[JournalTxn]:
    """Scan the journal and (optionally) apply committed transactions.

    Returns the committed transactions found, in order.  Scanning stops at
    the first block that is not a valid, correctly-sequenced descriptor, or
    at an unverifiable commit — everything after a torn transaction is
    ignored, giving prefix semantics.
    """
    start_seq = _unpack_jsb(device.read_block(layout.journal_start))
    txns: list[JournalTxn] = []
    pending_group: list[JournalTxn] = []  # chunks awaiting their final member
    cursor = layout.journal_start + 1
    end = layout.journal_start + layout.journal_blocks
    expected_seq = start_seq

    while cursor < end:
        raw = device.read_block(cursor)
        try:
            magic, blocktype, seq, ntags, flags = struct.unpack_from(_DESC_HEADER, raw)
        except struct.error:
            break
        if magic != JOURNAL_MAGIC or blocktype != _BLOCKTYPE_DESCRIPTOR or seq != expected_seq:
            break
        if not 0 < ntags <= MAX_TAGS:
            break
        desc_len = _DESC_HEADER_SIZE + 4 * ntags
        stored_crc = struct.unpack_from("<I", raw, desc_len)[0]
        if checksum32(raw[:desc_len]) != stored_crc:
            break
        targets = list(struct.unpack_from(f"<{ntags}I", raw, _DESC_HEADER_SIZE))
        if cursor + 1 + ntags >= end:
            break

        writes: dict[int, bytes] = {}
        data_crc = 0
        for i, target in enumerate(targets):
            data = device.read_block(cursor + 1 + i)
            writes[target] = data
            data_crc = checksum32(struct.pack("<I", data_crc) + data)

        commit_raw = device.read_block(cursor + 1 + ntags)
        try:
            cmagic, cbt, cseq, stored_data_crc, commit_crc = struct.unpack_from(_COMMIT_FORMAT, commit_raw)
        except struct.error:
            break
        commit_size = struct.calcsize(_COMMIT_FORMAT)
        if (
            cmagic != JOURNAL_MAGIC
            or cbt != _BLOCKTYPE_COMMIT
            or cseq != expected_seq
            or stored_data_crc != data_crc
            or checksum32(commit_raw[: commit_size - 4]) != commit_crc
        ):
            break

        pending_group.append(JournalTxn(seq=expected_seq, writes=writes))
        if not flags & FLAG_MORE_CHUNKS:
            # Final chunk: the whole group becomes visible atomically.
            for txn in pending_group:
                txns.append(txn)
                if apply:
                    txn.apply(device)
            pending_group = []
        cursor += 1 + ntags + 1
        expected_seq += 1

    # A trailing pending_group (crash between chunks) is discarded whole.
    if apply and txns:
        device.flush()
    return txns
