"""Filesystem creation.

``mkfs`` lays down a fresh, fsck-clean image: superblock, empty journal,
bitmaps with every metadata block pre-allocated, zeroed inode tables, and
a root directory containing ``.`` and ``..``.  Both filesystems mount what
mkfs produces, and the property tests use "mkfs + operations + clean
unmount passes fsck" as a foundational invariant.
"""

from __future__ import annotations

from repro.blockdev.device import BlockDevice
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import FileType, OnDiskInode, make_mode
from repro.ondisk.journal import reset_journal
from repro.ondisk.layout import (
    BLOCK_SIZE,
    DEFAULT_BLOCKS_PER_GROUP,
    DEFAULT_INODES_PER_GROUP,
    DEFAULT_JOURNAL_BLOCKS,
    INODES_PER_BLOCK,
    ROOT_INO,
    DiskLayout,
)
from repro.ondisk.superblock import STATE_CLEAN, Superblock


def mkfs(
    device: BlockDevice,
    blocks_per_group: int = DEFAULT_BLOCKS_PER_GROUP,
    inodes_per_group: int = DEFAULT_INODES_PER_GROUP,
    journal_blocks: int = DEFAULT_JOURNAL_BLOCKS,
) -> Superblock:
    """Format ``device``; returns the superblock that was written.

    The device's existing contents are ignored except that only the blocks
    mkfs owns are written — data blocks keep whatever stale bytes they had,
    as on real disks.
    """
    if device.block_size != BLOCK_SIZE:
        raise ValueError(f"device block size {device.block_size} != format block size {BLOCK_SIZE}")
    layout = DiskLayout(
        block_count=device.block_count,
        blocks_per_group=blocks_per_group,
        inodes_per_group=inodes_per_group,
        journal_blocks=journal_blocks,
    )

    # Journal: empty, sequence 1.
    reset_journal(device, layout, start_seq=1)

    # Root directory: inode + one data block with "." and "..".
    root_data_block = layout.data_start(0)
    dir_block = DirBlock()
    if not dir_block.insert(ROOT_INO, ".", FileType.DIRECTORY):
        raise AssertionError("fresh dir block rejected '.'")
    if not dir_block.insert(ROOT_INO, "..", FileType.DIRECTORY):
        raise AssertionError("fresh dir block rejected '..'")
    device.write_block(root_data_block, dir_block.to_block())

    root = OnDiskInode(
        mode=make_mode(FileType.DIRECTORY, 0o755),
        nlink=2,  # "." and the parent link from itself
        size=BLOCK_SIZE,
        atime=1,
        mtime=1,
        ctime=1,
    )
    root.direct[0] = root_data_block

    # Per-group metadata: bitmaps and inode tables.
    free_blocks = 0
    for group in range(layout.group_count):
        present = layout.group_block_count(group)
        block_bitmap = Bitmap(layout.blocks_per_group)
        group_start = layout.group_start(group)
        for meta in layout.metadata_blocks(group):
            block_bitmap.set(meta - group_start)
        # Bits beyond the device end (short last group) are never free.
        for bit in range(present, layout.blocks_per_group):
            block_bitmap.set(bit)
        if group == 0:
            block_bitmap.set(root_data_block - group_start)

        inode_bitmap = Bitmap(layout.inodes_per_group)
        if group == 0:
            inode_bitmap.set(0)  # ino 1, reserved
            inode_bitmap.set(1)  # ino 2, root

        device.write_block(layout.block_bitmap_block(group), block_bitmap.to_block())
        device.write_block(layout.inode_bitmap_block(group), inode_bitmap.to_block())
        free_blocks += block_bitmap.count_free()

        table_start = layout.inode_table_start(group)
        zero_block = b"\x00" * BLOCK_SIZE
        for i in range(layout.inode_table_blocks):
            device.write_block(table_start + i, zero_block)

    # Write the root inode into its table slot.
    root_block, root_offset = layout.inode_location(ROOT_INO)
    table_block = bytearray(device.read_block(root_block))
    table_block[root_offset : root_offset + len(root.pack())] = root.pack()
    device.write_block(root_block, bytes(table_block))

    free_inodes = layout.inode_count - 2  # reserved + root

    sb = Superblock(
        block_size=BLOCK_SIZE,
        block_count=layout.block_count,
        blocks_per_group=layout.blocks_per_group,
        inodes_per_group=layout.inodes_per_group,
        journal_blocks=layout.journal_blocks,
        free_blocks=free_blocks,
        free_inodes=free_inodes,
        root_ino=ROOT_INO,
        mount_state=STATE_CLEAN,
    )
    device.write_block(0, sb.pack())
    device.flush()
    return sb


__all__ = ["mkfs", "INODES_PER_BLOCK"]
