"""The superblock: block 0 of every image.

Fields cover geometry (so :class:`~repro.ondisk.layout.DiskLayout` can be
reconstructed at mount time), free-space accounting, and mount state.  The
trailing CRC detects torn or corrupted superblocks; both filesystems and
fsck refuse images whose superblock fails validation — except the
crafted-image machinery, whose whole purpose is to produce images that
*pass* these checks yet still trip the base (§2.1's bypass-FSCK attacks).

``mount_state`` distinguishes a cleanly unmounted image (``CLEAN``) from
one that was in use (``DIRTY``); mounting a dirty image triggers journal
replay, exactly the path contained reboot takes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.ondisk.layout import BLOCK_SIZE, DiskLayout
from repro.util import checksum32

SUPERBLOCK_MAGIC = 0x5AD0_F54E  # "ShaDowFS", squinting
SUPERBLOCK_VERSION = 1

STATE_CLEAN = 1
STATE_DIRTY = 2

# magic, version, block_size, block_count, blocks_per_group,
# inodes_per_group, journal_blocks, group_count, free_blocks, free_inodes,
# root_ino, mount_state, mount_count, write_generation, checksum
_FORMAT = "<IIIIIIIIIIIIIQI"
_SIZE = struct.calcsize(_FORMAT)


@dataclass
class Superblock:
    """In-memory superblock.  ``pack``/``unpack`` round-trip block 0."""

    block_size: int
    block_count: int
    blocks_per_group: int
    inodes_per_group: int
    journal_blocks: int
    free_blocks: int
    free_inodes: int
    root_ino: int
    mount_state: int = STATE_CLEAN
    mount_count: int = 0
    write_generation: int = 0
    magic: int = SUPERBLOCK_MAGIC
    version: int = SUPERBLOCK_VERSION

    @property
    def group_count(self) -> int:
        return (self.block_count + self.blocks_per_group - 1) // self.blocks_per_group

    def layout(self) -> DiskLayout:
        """Reconstruct the geometry this superblock describes."""
        return DiskLayout(
            block_count=self.block_count,
            blocks_per_group=self.blocks_per_group,
            inodes_per_group=self.inodes_per_group,
            journal_blocks=self.journal_blocks,
        )

    def pack(self) -> bytes:
        """Serialize to one block, checksum included."""
        body = struct.pack(
            _FORMAT,
            self.magic,
            self.version,
            self.block_size,
            self.block_count,
            self.blocks_per_group,
            self.inodes_per_group,
            self.journal_blocks,
            self.group_count,
            self.free_blocks,
            self.free_inodes,
            self.root_ino,
            self.mount_state,
            self.mount_count,
            self.write_generation,
            0,  # checksum placeholder
        )
        crc = checksum32(body[: _SIZE - 4])
        body = body[: _SIZE - 4] + struct.pack("<I", crc)
        return body + b"\x00" * (BLOCK_SIZE - len(body))

    @classmethod
    def unpack(cls, block: bytes, verify: bool = True) -> "Superblock":
        """Parse block 0.  Raises ``ValueError`` on any validation failure."""
        if len(block) < _SIZE:
            raise ValueError(f"superblock too short: {len(block)} bytes")
        fields = struct.unpack(_FORMAT, block[:_SIZE])
        (
            magic,
            version,
            block_size,
            block_count,
            blocks_per_group,
            inodes_per_group,
            journal_blocks,
            group_count,
            free_blocks,
            free_inodes,
            root_ino,
            mount_state,
            mount_count,
            write_generation,
            stored_crc,
        ) = fields
        if verify:
            if magic != SUPERBLOCK_MAGIC:
                raise ValueError(f"bad superblock magic 0x{magic:08x}")
            if version != SUPERBLOCK_VERSION:
                raise ValueError(f"unsupported superblock version {version}")
            actual_crc = checksum32(block[: _SIZE - 4])
            if actual_crc != stored_crc:
                raise ValueError(
                    f"superblock checksum mismatch: stored 0x{stored_crc:08x}, computed 0x{actual_crc:08x}"
                )
            if block_size != BLOCK_SIZE:
                raise ValueError(f"unsupported block size {block_size}")
        sb = cls(
            block_size=block_size,
            block_count=block_count,
            blocks_per_group=blocks_per_group,
            inodes_per_group=inodes_per_group,
            journal_blocks=journal_blocks,
            free_blocks=free_blocks,
            free_inodes=free_inodes,
            root_ino=root_ino,
            mount_state=mount_state,
            mount_count=mount_count,
            write_generation=write_generation,
            magic=magic,
            version=version,
        )
        if verify and group_count != sb.group_count:
            raise ValueError(f"superblock group_count {group_count} inconsistent with geometry {sb.group_count}")
        if verify and mount_state not in (STATE_CLEAN, STATE_DIRTY):
            raise ValueError(f"bad mount_state {mount_state}")
        return sb

    def validate_against(self, layout: DiskLayout) -> list[str]:
        """Cross-check against an independently known geometry (fsck)."""
        problems = []
        if self.block_count != layout.block_count:
            problems.append(f"block_count {self.block_count} != device {layout.block_count}")
        if self.blocks_per_group != layout.blocks_per_group:
            problems.append("blocks_per_group mismatch")
        if self.inodes_per_group != layout.inodes_per_group:
            problems.append("inodes_per_group mismatch")
        if self.journal_blocks != layout.journal_blocks:
            problems.append("journal_blocks mismatch")
        if not 1 <= self.root_ino <= layout.inode_count:
            problems.append(f"root_ino {self.root_ino} out of range")
        if self.free_blocks > self.block_count:
            problems.append(f"free_blocks {self.free_blocks} exceeds block_count")
        if self.free_inodes > layout.inode_count:
            problems.append(f"free_inodes {self.free_inodes} exceeds inode_count")
        return problems
