"""Logical-to-physical block mapping.

An inode maps logical file blocks to physical device blocks through 12
direct pointers, a single-indirect block, and a double-indirect block.
Reading that mapping requires device reads (of the indirect blocks), so
the resolver takes a ``read_block`` callable: the base passes its buffer
cache's ``read``, the shadow passes its raw synchronous device read, and
fsck passes a read that also records reachability.  One implementation,
three consumers — the same no-disagreement rule as the layout module.

Writing the mapping (growing files) is policy-laden and lives in each
filesystem; only the *pure read side* is shared here.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator

from repro.ondisk.inode import N_DIRECT, PTRS_PER_BLOCK, OnDiskInode
from repro.ondisk.layout import BLOCK_SIZE

ReadBlock = Callable[[int], bytes]


def unpack_pointers(block: bytes) -> list[int]:
    """Parse an indirect block into its 1024 u32 pointers."""
    if len(block) != BLOCK_SIZE:
        raise ValueError(f"indirect block must be {BLOCK_SIZE} bytes, got {len(block)}")
    return list(struct.unpack(f"<{PTRS_PER_BLOCK}I", block))


def pack_pointers(pointers: list[int]) -> bytes:
    """Serialize 1024 u32 pointers into an indirect block."""
    if len(pointers) != PTRS_PER_BLOCK:
        raise ValueError(f"expected {PTRS_PER_BLOCK} pointers, got {len(pointers)}")
    return struct.pack(f"<{PTRS_PER_BLOCK}I", *pointers)


class BlockMapReader:
    """Resolve and enumerate an inode's block map, read-only."""

    def __init__(self, read_block: ReadBlock):
        self._read = read_block

    def resolve(self, inode: OnDiskInode, logical: int) -> int:
        """Physical block for logical block ``logical``; 0 means hole."""
        if logical < 0:
            raise ValueError(f"negative logical block {logical}")
        if logical < N_DIRECT:
            return inode.direct[logical]
        logical -= N_DIRECT
        if logical < PTRS_PER_BLOCK:
            if not inode.indirect:
                return 0
            return unpack_pointers(self._read(inode.indirect))[logical]
        logical -= PTRS_PER_BLOCK
        if logical < PTRS_PER_BLOCK * PTRS_PER_BLOCK:
            if not inode.double_indirect:
                return 0
            outer_index, inner_index = divmod(logical, PTRS_PER_BLOCK)
            outer = unpack_pointers(self._read(inode.double_indirect))
            inner_block = outer[outer_index]
            if not inner_block:
                return 0
            return unpack_pointers(self._read(inner_block))[inner_index]
        raise ValueError(f"logical block {logical + N_DIRECT + PTRS_PER_BLOCK} beyond maximum file size")

    def iter_data_blocks(self, inode: OnDiskInode) -> Iterator[tuple[int, int]]:
        """Yield ``(logical, physical)`` for every mapped (nonzero) block
        within the inode's size."""
        for logical in range(inode.block_count()):
            physical = self.resolve(inode, logical)
            if physical:
                yield logical, physical

    def all_referenced_blocks(self, inode: OnDiskInode) -> list[int]:
        """Every physical block the inode references — data *and* the
        indirect blocks themselves.  fsck's reachability set."""
        blocks: list[int] = [b for b in inode.direct if b]
        if inode.indirect:
            blocks.append(inode.indirect)
            blocks.extend(b for b in unpack_pointers(self._read(inode.indirect)) if b)
        if inode.double_indirect:
            blocks.append(inode.double_indirect)
            outer = unpack_pointers(self._read(inode.double_indirect))
            for inner_block in outer:
                if inner_block:
                    blocks.append(inner_block)
                    blocks.extend(b for b in unpack_pointers(self._read(inner_block)) if b)
        return blocks

    def read_file_range(self, inode: OnDiskInode, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, zero-filling holes,
        truncating at EOF."""
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        if offset >= inode.size:
            return b""
        length = min(length, inode.size - offset)
        out = bytearray()
        while length > 0:
            logical, within = divmod(offset, BLOCK_SIZE)
            take = min(BLOCK_SIZE - within, length)
            physical = self.resolve(inode, logical)
            if physical:
                out += self._read(physical)[within : within + take]
            else:
                out += b"\x00" * take
            offset += take
            length -= take
        return bytes(out)
