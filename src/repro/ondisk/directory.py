"""Directory entry format.

Directories are regular files whose data blocks hold ext2-style
variable-length entries::

    +--------+---------+----------+-----------+-----------------+
    | ino u32| rec_len | name_len | file_type | name (name_len) |
    +--------+---------+----------+-----------+-----------------+

``rec_len`` chains entries within a block (entries never cross block
boundaries); an entry with ``ino == 0`` is a free slot whose space is
described by its ``rec_len``.  Deleting an entry folds its space into the
*previous* entry's ``rec_len`` (or zeroes the ino if it is first), exactly
the ext2 discipline — which means directory blocks accumulate the kind of
slack and tombstones the shadow's checks and fsck must handle.

:class:`DirBlock` wraps one block with insert/remove/find.  Packing is
byte-exact: base and shadow must produce identical directory *contents*
for identical operation histories (slot placement included, since both use
first-fit), which the equivalence checker exploits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.ondisk.inode import FileType
from repro.ondisk.layout import BLOCK_SIZE

MAX_NAME_LEN = 255
_HEADER = "<IHBB"
_HEADER_SIZE = struct.calcsize(_HEADER)  # 8


def entry_size(name_len: int) -> int:
    """On-disk footprint of an entry with ``name_len`` bytes of name,
    rounded to 4-byte alignment."""
    return (_HEADER_SIZE + name_len + 3) & ~3


@dataclass
class DirEntry:
    """One live directory entry (free slots are not represented)."""

    ino: int
    name: str
    ftype: FileType
    offset: int = 0  # byte offset within the block, filled in by parse

    def __post_init__(self):
        if not self.name:
            raise ValueError("empty directory entry name")
        if len(self.name.encode()) > MAX_NAME_LEN:
            raise ValueError(f"name too long: {self.name[:32]}...")


class DirBlock:
    """One directory data block.

    A fresh block is a single free slot spanning the whole block.  All
    mutation is first-fit and deterministic.
    """

    def __init__(self, data: bytes | None = None):
        if data is None:
            empty = struct.pack(_HEADER, 0, BLOCK_SIZE, 0, 0)
            self._data = bytearray(empty + b"\x00" * (BLOCK_SIZE - len(empty)))
        else:
            if len(data) != BLOCK_SIZE:
                raise ValueError(f"directory block must be {BLOCK_SIZE} bytes, got {len(data)}")
            self._data = bytearray(data)

    def to_block(self) -> bytes:
        return bytes(self._data)

    # ---- raw record walking ----------------------------------------------

    def _records(self) -> list[tuple[int, int, int, int, int]]:
        """Yield ``(offset, ino, rec_len, name_len, file_type)`` for every
        record — live and free — validating the chain as it goes."""
        records = []
        offset = 0
        while offset < BLOCK_SIZE:
            if offset + _HEADER_SIZE > BLOCK_SIZE:
                raise ValueError(f"directory record header at {offset} crosses block end")
            ino, rec_len, name_len, ftype = struct.unpack_from(_HEADER, self._data, offset)
            if rec_len < _HEADER_SIZE:
                raise ValueError(f"directory record at {offset} has rec_len {rec_len} < header size")
            if rec_len % 4 != 0:
                raise ValueError(f"directory record at {offset} has unaligned rec_len {rec_len}")
            if offset + rec_len > BLOCK_SIZE:
                raise ValueError(f"directory record at {offset} overruns the block (rec_len {rec_len})")
            if ino != 0 and entry_size(name_len) > rec_len:
                raise ValueError(f"directory record at {offset}: name_len {name_len} exceeds rec_len {rec_len}")
            records.append((offset, ino, rec_len, name_len, ftype))
            offset += rec_len
        if offset != BLOCK_SIZE:
            raise ValueError(f"directory records end at {offset}, not at block boundary")
        return records

    def entries(self) -> list[DirEntry]:
        """All live entries in block order."""
        out = []
        for offset, ino, _rec_len, name_len, ftype in self._records():
            if ino == 0:
                continue
            name = self._data[offset + _HEADER_SIZE : offset + _HEADER_SIZE + name_len].decode()
            out.append(DirEntry(ino=ino, name=name, ftype=FileType(ftype), offset=offset))
        return out

    def find(self, name: str) -> DirEntry | None:
        for entry in self.entries():
            if entry.name == name:
                return entry
        return None

    # ---- mutation ----------------------------------------------------------

    def insert(self, ino: int, name: str, ftype: FileType) -> bool:
        """First-fit insert; returns False if no slot is large enough.

        The caller (either filesystem) is responsible for having checked
        name uniqueness across the whole directory.
        """
        if ino == 0:
            raise ValueError("cannot insert entry with ino 0")
        encoded = name.encode()
        if not 0 < len(encoded) <= MAX_NAME_LEN:
            raise ValueError(f"bad name length {len(encoded)}")
        needed = entry_size(len(encoded))

        for offset, rec_ino, rec_len, name_len, _ftype in self._records():
            if rec_ino == 0:
                if rec_len >= needed:
                    self._write_record(offset, ino, rec_len, encoded, ftype)
                    return True
            else:
                used = entry_size(name_len)
                slack = rec_len - used
                if slack >= needed:
                    # Shrink the live record to its minimal footprint and
                    # carve the new entry out of its slack.
                    struct.pack_into("<H", self._data, offset + 4, used)
                    self._write_record(offset + used, ino, slack, encoded, ftype)
                    return True
        return False

    def remove(self, name: str) -> bool:
        """Remove the entry named ``name``; returns whether it existed."""
        records = self._records()
        for i, (offset, ino, rec_len, name_len, _ftype) in enumerate(records):
            if ino == 0:
                continue
            current = self._data[offset + _HEADER_SIZE : offset + _HEADER_SIZE + name_len].decode()
            if current != name:
                continue
            if i == 0:
                # First record: mark free, keep its rec_len.
                struct.pack_into(_HEADER, self._data, offset, 0, rec_len, 0, 0)
            else:
                # Fold into the previous record.
                prev_offset, prev_ino, prev_len, prev_name_len, prev_ftype = records[i - 1]
                struct.pack_into(
                    _HEADER, self._data, prev_offset, prev_ino, prev_len + rec_len, prev_name_len, prev_ftype
                )
            return True
        return False

    def is_empty(self) -> bool:
        """True if the block holds no live entries."""
        return not self.entries()

    def free_space_for(self, name: str) -> bool:
        """Would ``insert(name)`` succeed?  (Non-mutating probe.)"""
        probe = DirBlock(self.to_block())
        return probe.insert(1, name, FileType.REGULAR)

    def _write_record(self, offset: int, ino: int, rec_len: int, encoded_name: bytes, ftype: FileType) -> None:
        struct.pack_into(_HEADER, self._data, offset, ino, rec_len, len(encoded_name), int(ftype))
        name_start = offset + _HEADER_SIZE
        self._data[name_start : name_start + len(encoded_name)] = encoded_name
        # Zero any stale bytes between the name end and the record end so
        # identical histories produce byte-identical blocks.
        pad_start = name_start + len(encoded_name)
        pad_end = offset + min(rec_len, entry_size(len(encoded_name)))
        if pad_end > pad_start:
            self._data[pad_start:pad_end] = b"\x00" * (pad_end - pad_start)
