"""Image-level inspection helpers.

These are *offline* tools: they read raw blocks without mounting, and are
used by examples, tests, and the crafted-image generator to look at what
is actually on disk.  (fsck lives in :mod:`repro.fsck`; this module does
not judge, it only reports.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockdev.device import BlockDevice, MemoryBlockDevice
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import OnDiskInode
from repro.ondisk.layout import INODE_SIZE, INODES_PER_BLOCK, DiskLayout
from repro.ondisk.mapping import BlockMapReader
from repro.ondisk.superblock import Superblock


@dataclass
class GroupInfo:
    group: int
    free_blocks: int
    free_inodes: int


@dataclass
class ImageInfo:
    """Summary of an image's metadata as stored (not as it *should* be)."""

    superblock: Superblock
    groups: list[GroupInfo] = field(default_factory=list)
    live_inodes: int = 0

    @property
    def free_blocks_by_bitmap(self) -> int:
        return sum(g.free_blocks for g in self.groups)

    @property
    def free_inodes_by_bitmap(self) -> int:
        return sum(g.free_inodes for g in self.groups)


def read_superblock(device: BlockDevice, verify: bool = True) -> Superblock:
    return Superblock.unpack(device.read_block(0), verify=verify)


def read_inode(device: BlockDevice, layout: DiskLayout, ino: int, verify: bool = True) -> OnDiskInode:
    """Read inode ``ino`` straight from the inode table."""
    block, offset = layout.inode_location(ino)
    raw = device.read_block(block)
    return OnDiskInode.unpack(raw[offset : offset + INODE_SIZE], verify=verify)


def write_inode(device: BlockDevice, layout: DiskLayout, ino: int, inode: OnDiskInode) -> None:
    """Write inode ``ino`` straight into the inode table (offline tooling;
    mounted filesystems go through their own machinery)."""
    block, offset = layout.inode_location(ino)
    raw = bytearray(device.read_block(block))
    raw[offset : offset + INODE_SIZE] = inode.pack()
    device.write_block(block, bytes(raw))


def read_block_bitmap(device: BlockDevice, layout: DiskLayout, group: int) -> Bitmap:
    return Bitmap.from_block(layout.blocks_per_group, device.read_block(layout.block_bitmap_block(group)))


def read_inode_bitmap(device: BlockDevice, layout: DiskLayout, group: int) -> Bitmap:
    return Bitmap.from_block(layout.inodes_per_group, device.read_block(layout.inode_bitmap_block(group)))


def describe(device: BlockDevice, verify: bool = True) -> ImageInfo:
    """Summarize an image: superblock + per-group bitmap accounting."""
    sb = read_superblock(device, verify=verify)
    layout = sb.layout()
    info = ImageInfo(superblock=sb)
    for group in range(layout.group_count):
        bb = read_block_bitmap(device, layout, group)
        ib = read_inode_bitmap(device, layout, group)
        info.groups.append(GroupInfo(group=group, free_blocks=bb.count_free(), free_inodes=ib.count_free()))
    for ino in range(1, layout.inode_count + 1):
        inode = read_inode(device, layout, ino, verify=False)
        if not inode.is_free:
            info.live_inodes += 1
    return info


def clone_to_memory(device: BlockDevice) -> MemoryBlockDevice:
    """Copy an image into a fresh in-memory device (snapshot for tests)."""
    clone = MemoryBlockDevice(block_size=device.block_size, block_count=device.block_count)
    for block in range(device.block_count):
        clone.write_block(block, device.read_block(block))
    return clone


def dump_tree(device: BlockDevice, max_entries: int = 10_000) -> dict[str, int]:
    """Walk the namespace offline; return ``path -> ino`` for every entry.

    Used by examples to show what recovery preserved.  Walks directories
    via raw reads (no filesystem object), refusing cycles via a visited
    set, and stops after ``max_entries`` as a safety valve against crafted
    images.
    """
    sb = read_superblock(device)
    layout = sb.layout()
    reader = BlockMapReader(device.read_block)
    result: dict[str, int] = {"/": sb.root_ino}
    stack: list[tuple[str, int]] = [("/", sb.root_ino)]
    visited: set[int] = set()
    while stack:
        path, ino = stack.pop()
        if ino in visited:
            continue
        visited.add(ino)
        inode = read_inode(device, layout, ino)
        if not inode.is_dir:
            continue
        for _logical, physical in reader.iter_data_blocks(inode):
            for entry in DirBlock(device.read_block(physical)).entries():
                if entry.name in (".", ".."):
                    continue
                child_path = (path.rstrip("/") + "/" + entry.name) or "/"
                result[child_path] = entry.ino
                if len(result) > max_entries:
                    raise ValueError("namespace exceeds max_entries; crafted image?")
                stack.append((child_path, entry.ino))
    return result
