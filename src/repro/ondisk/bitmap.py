"""Allocation bitmaps.

One :class:`Bitmap` covers one block group's blocks or inodes; it
serializes to exactly one device block (the layout guarantees a group's
bitmap fits).  Bit ``i`` set means "allocated".

The class is used by mkfs (to pre-mark metadata), by the base's allocators,
by the shadow (read-only consistency checks and autonomous-mode
allocation), and by fsck (to rebuild expected bitmaps).  It is therefore
strictly mechanical — no allocation *policy* lives here.
"""

from __future__ import annotations

from repro.ondisk.layout import BLOCK_SIZE


class Bitmap:
    """A fixed-size bit vector with find-free support.

    ``nbits`` is the logical size; bits beyond it exist in the serialized
    block but are treated as allocated so they can never be handed out.
    """

    def __init__(self, nbits: int, data: bytes | None = None):
        if not 0 < nbits <= BLOCK_SIZE * 8:
            raise ValueError(f"nbits {nbits} does not fit one block")
        self.nbits = nbits
        if data is None:
            self._bytes = bytearray(BLOCK_SIZE)
        else:
            if len(data) != BLOCK_SIZE:
                raise ValueError(f"bitmap block must be {BLOCK_SIZE} bytes, got {len(data)}")
            self._bytes = bytearray(data)

    @classmethod
    def from_block(cls, nbits: int, block: bytes) -> "Bitmap":
        return cls(nbits, data=block)

    def to_block(self) -> bytes:
        return bytes(self._bytes)

    def _check(self, bit: int) -> None:
        if not 0 <= bit < self.nbits:
            raise ValueError(f"bit {bit} out of range [0, {self.nbits})")

    def test(self, bit: int) -> bool:
        self._check(bit)
        return bool(self._bytes[bit >> 3] & (1 << (bit & 7)))

    def set(self, bit: int) -> None:
        self._check(bit)
        self._bytes[bit >> 3] |= 1 << (bit & 7)

    def clear(self, bit: int) -> None:
        self._check(bit)
        self._bytes[bit >> 3] &= ~(1 << (bit & 7)) & 0xFF

    def find_free(self, start: int = 0) -> int | None:
        """First clear bit at or after ``start`` (wrapping), or None if full.

        The wrap-around search is what the base's locality-seeking allocator
        relies on: it passes a goal bit and takes the nearest free one.
        """
        if self.nbits == 0:
            return None
        start = start % self.nbits
        for i in range(self.nbits):
            bit = (start + i) % self.nbits
            if not self.test(bit):
                return bit
        return None

    def find_free_run(self, length: int, start: int = 0) -> int | None:
        """First position (>= start, no wrap) of ``length`` clear bits."""
        if length <= 0:
            raise ValueError("length must be positive")
        run = 0
        for bit in range(start, self.nbits):
            if self.test(bit):
                run = 0
            else:
                run += 1
                if run == length:
                    return bit - length + 1
        return None

    def count_set(self) -> int:
        total = 0
        full_bytes, rem = divmod(self.nbits, 8)
        for i in range(full_bytes):
            total += self._bytes[i].bit_count()
        for bit in range(full_bytes * 8, full_bytes * 8 + rem):
            if self._bytes[bit >> 3] & (1 << (bit & 7)):
                total += 1
        return total

    def count_free(self) -> int:
        return self.nbits - self.count_set()

    def set_bits(self) -> list[int]:
        """All set bit positions (used by fsck and equivalence checks)."""
        return [bit for bit in range(self.nbits) if self.test(bit)]

    def copy(self) -> "Bitmap":
        return Bitmap(self.nbits, data=bytes(self._bytes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.nbits == other.nbits and self.set_bits() == other.set_bits()

    def __repr__(self) -> str:
        return f"Bitmap(nbits={self.nbits}, set={self.count_set()})"
