"""Error taxonomy for the RAE reproduction.

The paper distinguishes several classes of runtime trouble:

* POSIX-style errors that a filesystem legitimately returns to the
  application (``ENOENT``, ``ENOSPC``, ...).  These are *not* faults: the
  base returns them, the shadow replays them, and RAE never engages.
* Runtime errors inside the base filesystem: crashes (``BUG()``-style),
  warnings (``WARN_ON()``-style), and invariant-check failures detected by
  validate-on-sync style machinery.  These engage RAE.
* Device-level faults (transient read errors, silent corruption) that the
  shadow's extensive runtime checks are designed to survive.

Everything in this module is shared by the base, the shadow, and the RAE
core, so it deliberately has no dependencies on any other repro module.
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    """POSIX errno values used by the filesystem API.

    The values match Linux so that traces read naturally; only the codes the
    reproduction actually uses are defined.
    """

    EPERM = 1
    ENOENT = 2
    EIO = 5
    EBADF = 9
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    EFBIG = 27
    ENOSPC = 28
    EROFS = 30
    ENAMETOOLONG = 36
    ENOTEMPTY = 39
    ELOOP = 40


class FsError(Exception):
    """A legitimate POSIX error returned by a filesystem operation.

    ``FsError`` is part of the API contract: both the base and the shadow
    raise it for invalid requests, and the recorded operation log stores the
    errno as the operation's outcome.  RAE never treats an ``FsError`` as a
    reason to engage the shadow.
    """

    def __init__(self, errno: Errno, message: str = ""):
        self.errno = Errno(errno)
        super().__init__(f"[{self.errno.name}] {message}" if message else self.errno.name)


class KernelBug(Exception):
    """A ``BUG()``-style crash inside the base filesystem.

    In Linux this would oops the kernel; in the reproduction it unwinds to
    the RAE supervisor, which treats it as a detected runtime error and
    starts recovery.  The optional ``bug_id`` names the injected bug that
    fired, so recovery can report which fault was masked.
    """

    def __init__(self, message: str = "", bug_id: str | None = None):
        self.bug_id = bug_id
        super().__init__(message or "kernel BUG")


class KernelWarning(Exception):
    """A ``WARN_ON()``-style runtime warning raised to the detector.

    The paper notes WARN is the suggested substitute for BUG in modern
    kernel development.  The base's hook layer converts armed WARN bugs into
    this exception only when the detector's policy says warnings should
    engage recovery; otherwise they are logged and execution continues.
    """

    def __init__(self, message: str = "", bug_id: str | None = None):
        self.bug_id = bug_id
        super().__init__(message or "kernel WARNING")


class InvariantViolation(Exception):
    """A runtime invariant check failed.

    Raised by the shadow's extensive runtime checks (``repro.shadowfs.checks``)
    and by the base's validate-on-sync machinery.  In the base this engages
    RAE; in the shadow it aborts recovery (the shadow must never hand off
    state it cannot vouch for).
    """

    def __init__(self, message: str = "", check: str | None = None):
        self.check = check
        super().__init__(message or "invariant violation")


class DeviceError(Exception):
    """An IO error reported by the block device (transient or persistent)."""

    def __init__(self, message: str = "", block: int | None = None, transient: bool = False):
        self.block = block
        self.transient = transient
        super().__init__(message or "device error")


class ShadowWriteAttempt(Exception):
    """The shadow attempted a device write.

    The shadow's defining restriction (§3.2) is that it never writes to
    disk.  A write-fenced device raises this, and any occurrence is a bug in
    the reproduction itself, so it is never caught by recovery code.
    """


class RecoveryFailure(Exception):
    """RAE recovery could not complete.

    Raised when the shadow itself fails (an invariant violation during
    replay, a cross-check discrepancy under a strict policy, or the shadow
    process dying).  The supervisor surfaces this to the caller: at that
    point the paper's design has no further fallback beyond a full
    crash-and-restore, which the caller may perform via remount.
    """

    def __init__(self, message: str = "", phase: str | None = None):
        self.phase = phase
        # Filled in by run_recovery: how long each phase ran before the
        # failure, so failed attempts still contribute timings.
        self.phase_seconds: dict[str, float] = {}
        super().__init__(message or "recovery failure")


class CrossCheckMismatch(RecoveryFailure):
    """Constrained-mode replay disagreed with the base's recorded outcome.

    §3.2: "Discrepancies in output are reported; whether or not to continue
    can be configured."  Under the strict policy this exception aborts
    recovery; under the permissive policy it is recorded and replay
    continues with the shadow's own result.
    """

    def __init__(self, message: str = "", op_index: int | None = None):
        super().__init__(message, phase="crosscheck")
        self.op_index = op_index


#: Every exception class this catalog defines.  raelint's ERRNO-DISCIPLINE
#: rule requires deliberate raises to use one of these (or a subclass), so
#: the detector can always name what it caught.
CATALOG_ERRORS: tuple[type[Exception], ...] = (
    FsError,
    KernelBug,
    KernelWarning,
    InvariantViolation,
    DeviceError,
    ShadowWriteAttempt,
    RecoveryFailure,
)

#: What a *recovery-side* boundary (shadow child process, metadata
#: hand-off) may catch and convert to :class:`RecoveryFailure`: the
#: catalog minus :class:`ShadowWriteAttempt` — which is a bug in the
#: reproduction itself and must never be absorbed by recovery code —
#: plus the decode-failure surface (corrupted on-disk structures parse
#: into ``ValueError``/``KeyError``/``IndexError`` before any catalog
#: class gets a chance).  Anything outside this tuple escaping a
#: recovery boundary is a reproduction bug and should crash loudly.
RECOVERY_BOUNDARY_ERRORS: tuple[type[Exception], ...] = (
    FsError,
    KernelBug,
    KernelWarning,
    InvariantViolation,
    DeviceError,
    RecoveryFailure,
    ValueError,
    KeyError,
    IndexError,
)
