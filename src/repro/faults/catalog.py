"""The bug catalog.

Each :class:`BugSpec` describes one injectable bug with the two axes of
the paper's study:

* **determinism** — a deterministic bug fires whenever its trigger
  matches (same inputs → same failure: re-execution on the base would
  hit it again, which is why the shadow exists); a non-deterministic bug
  additionally rolls a seeded probability die (timing/races in the real
  world);
* **consequence** — ``CRASH`` raises :class:`KernelBug`, ``WARN`` raises
  :class:`KernelWarning` (or merely counts, when the WARN policy says
  ignore), ``NOCRASH`` silently corrupts state via its payload (the
  consequence class that validate-on-sync exists to catch), ``FREEZE``
  models a hang detected by a watchdog (surfaced as a ``KernelBug``
  tagged ``watchdog`` — a real hang cannot be represented in a
  single-threaded reproduction, but its *detection* can).

The concrete constructors below are patterned on studied ext4 bug
classes: each docstring names the analog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class Determinism(enum.Enum):
    DETERMINISTIC = "deterministic"
    NONDETERMINISTIC = "nondeterministic"


class Consequence(enum.Enum):
    CRASH = "crash"
    WARN = "warn"
    NOCRASH = "nocrash"
    FREEZE = "freeze"


Trigger = Callable[[dict[str, Any]], bool]
Payload = Callable[[Any, dict[str, Any]], None]  # (base_fs, ctx)


@dataclass
class BugSpec:
    bug_id: str
    title: str
    hook: str
    determinism: Determinism
    consequence: Consequence
    trigger: Trigger
    payload: Payload | None = None  # NOCRASH corruption
    probability: float = 1.0  # <1.0 only sensible for NONDETERMINISTIC
    max_fires: int | None = None  # None = unlimited
    tags: set[str] = field(default_factory=set)

    def __post_init__(self):
        if self.consequence is Consequence.NOCRASH and self.payload is None:
            raise ValueError(f"bug {self.bug_id}: NOCRASH requires a payload")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"bug {self.bug_id}: probability {self.probability}")
        if self.determinism is Determinism.DETERMINISTIC and self.probability < 1.0:
            raise ValueError(f"bug {self.bug_id}: a deterministic bug cannot be probabilistic")


# ---------------------------------------------------------------------------
# concrete bug constructors


def make_dir_insert_crash_bug(substring: str = " evil", bug_id: str = "dirent-null-deref") -> BugSpec:
    """Analog of crafted-image null-pointer dereferences (§2.1, [13, 38,
    52]): inserting a directory entry whose name contains a poisoned
    substring dereferences a null dentry.  Deterministic CRASH."""
    return BugSpec(
        bug_id=bug_id,
        title=f"null-pointer dereference inserting dirent containing {substring!r}",
        hook="dir.insert",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.CRASH,
        trigger=lambda ctx: substring in str(ctx.get("name", "")),
        tags={"input-sanity", "crafted-image"},
    )


def make_lookup_crash_bug(substring: str, bug_id: str = "lookup-oob") -> BugSpec:
    """Analog of f2fs's array-index-out-of-bounds in lookup [38]: looking
    up a poisoned name indexes past a table.  Deterministic CRASH."""
    return BugSpec(
        bug_id=bug_id,
        title=f"array index out of bounds looking up {substring!r}",
        hook="vfs.lookup",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.CRASH,
        trigger=lambda ctx: substring in str(ctx.get("name", "")),
        tags={"input-sanity", "crafted-image"},
    )


def make_close_use_after_free_bug(nth: int = 1, bug_id: str = "close-uaf") -> BugSpec:
    """Analog of the ext4_put_super use-after-free [52]: the Nth close
    touches freed memory.  Deterministic CRASH (trigger counts fires
    internally via the injector's per-bug counter)."""
    return BugSpec(
        bug_id=bug_id,
        title=f"use-after-free on close #{nth}",
        hook="vfs.close",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.CRASH,
        trigger=lambda ctx: ctx.get("_bug_eligible_count", 0) == nth - 1,
        tags={"lifetime"},
    )


def make_truncate_warn_bug(threshold: int = 1 << 20, bug_id: str = "truncate-warn") -> BugSpec:
    """Analog of i_size/i_disksize WARN_ON mismatches [13]: shrinking a
    file across a large range hits a WARN_ON.  Deterministic WARN."""
    return BugSpec(
        bug_id=bug_id,
        title=f"WARN_ON truncating across more than {threshold} bytes",
        hook="truncate",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.WARN,
        trigger=lambda ctx: ctx.get("old_size", 0) - ctx.get("new_size", 0) > threshold,
        tags={"size-accounting"},
    )


def make_lockdep_warn_bug(probability: float = 0.02, bug_id: str = "lockdep-race") -> BugSpec:
    """A lock-discipline violation caught by lockdep — the threading bug
    class Table 1 counts as non-deterministic.  Probabilistic WARN."""
    return BugSpec(
        bug_id=bug_id,
        title="lockdep warning on inode lock acquisition",
        hook="lock.acquire",
        determinism=Determinism.NONDETERMINISTIC,
        consequence=Consequence.WARN,
        trigger=lambda ctx: True,
        probability=probability,
        tags={"threading"},
    )


def make_size_corruption_bug(nth: int = 3, bug_id: str = "size-corruption") -> BugSpec:
    """A NoCrash bug: the Nth inode-dirty silently corrupts the size
    field (the data-corruption consequence class).  Caught — before
    persistence — by validate-on-sync, per the fault model: a corrupted
    size fails the transaction validator's inode checks."""

    def payload(fs, ctx):
        inode = ctx.get("inode")
        if inode is not None:
            # Way out of range: trips the itable validator's size bound.
            inode.size = inode.size + (1 << 60)

    return BugSpec(
        bug_id=bug_id,
        title=f"silent inode size corruption on dirty #{nth}",
        hook="inode.dirty",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.NOCRASH,
        trigger=lambda ctx: ctx.get("_bug_eligible_count", 0) == nth - 1,
        payload=payload,
        tags={"corruption"},
    )


def make_alloc_accounting_bug(nth: int = 5, bug_id: str = "alloc-accounting") -> BugSpec:
    """A NoCrash accounting bug: the Nth block allocation forgets to
    decrement the free count, so the superblock disagrees with the
    bitmaps at the next commit — exactly what validate-on-sync's
    free-count cross-check catches."""

    def payload(fs, ctx):
        fs.alloc.free_blocks += 1  # the "forgotten" decrement

    return BugSpec(
        bug_id=bug_id,
        title=f"free-count accounting skew on allocation #{nth}",
        hook="alloc.block",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.NOCRASH,
        trigger=lambda ctx: ctx.get("_bug_eligible_count", 0) == nth - 1,
        payload=payload,
        tags={"accounting"},
    )


def make_stale_dentry_bug(name: str, collateral: str, bug_id: str = "stale-dentry") -> BugSpec:
    """A NoCrash cache-coherence bug: removing ``name`` invalidates the
    *wrong* dentry — it plants a negative entry for ``collateral`` in the
    same directory, making an existing file invisible to later lookups.
    This class is *not* caught by validate-on-sync (the on-disk state is
    fine) — only differential testing or the application notices,
    motivating §4.3's discrepancy reporting."""

    def payload(fs, ctx):
        dir_ino = ctx.get("dir_ino")
        if dir_ino is not None:
            fs.dentry_cache.insert_negative(dir_ino, collateral)

    return BugSpec(
        bug_id=bug_id,
        title=f"dentry invalidation of the wrong entry ({collateral!r}) removing {name!r}",
        hook="dir.remove",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.NOCRASH,
        trigger=lambda ctx: ctx.get("name") == name,
        payload=payload,
        tags={"cache-coherence"},
    )


def make_blkmq_wedge_bug(probability: float = 0.01, bug_id: str = "blkmq-wedge") -> BugSpec:
    """A block-layer interaction bug (the blk-mq/io_uring class §2.1
    blames for recent regressions): a submission path crash under
    queueing conditions.  Probabilistic CRASH."""
    return BugSpec(
        bug_id=bug_id,
        title="block layer submission crash",
        hook="blkmq.submit",
        determinism=Determinism.NONDETERMINISTIC,
        consequence=Consequence.CRASH,
        trigger=lambda ctx: ctx.get("op") == "write",
        probability=probability,
        tags={"block-layer", "io"},
    )


def make_freeze_bug(substring: str, bug_id: str = "journal-hang") -> BugSpec:
    """A freeze/deadlock (NoCrash in Table 1's external-symptom terms,
    but detected here by the watchdog): commit stalls forever when the
    trigger matches.  Surfaced as a watchdog-tagged KernelBug."""
    return BugSpec(
        bug_id=bug_id,
        title=f"journal commit hang near {substring!r}",
        hook="journal.commit",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.FREEZE,
        trigger=lambda ctx: ctx.get("_bug_eligible_count", 0) == 0,
        tags={"deadlock"},
    )


def standard_catalog() -> list[BugSpec]:
    """One bug of each studied class, with default triggers — what the
    availability benchmark arms."""
    return [
        make_dir_insert_crash_bug(),
        make_lookup_crash_bug(substring=" "),
        make_truncate_warn_bug(),
        make_lockdep_warn_bug(),
        make_alloc_accounting_bug(nth=5000),
        make_blkmq_wedge_bug(),
    ]
