"""Fault and bug injection.

The paper's Table 1 taxonomy — determinism × consequence — turned into
an executable catalog:

* :mod:`repro.faults.catalog` — :class:`BugSpec` (what a bug is: its
  trigger, hook point, determinism, consequence, payload) plus a library
  of concrete bug constructors modelled on studied ext4 bug classes
  (input-sanity crashes, use-after-free on close, stale dentry
  invalidation, allocator accounting corruption, block-layer wedges,
  lock-discipline WARNs, watchdog-detected freezes);
* :mod:`repro.faults.injector` — arms specs into a base filesystem's
  :class:`~repro.basefs.hooks.HookPoints`, with seeded probabilistic
  firing for the non-deterministic classes and fire accounting for
  experiments;
* :mod:`repro.faults.crafted` — the §2.1 attack: structurally valid
  images ("such images can bypass FSCK") whose contents trip armed bugs
  when operated on.

Device-level (hardware) faults live in :mod:`repro.blockdev.faults`.
"""

from repro.faults.catalog import (
    BugSpec,
    Consequence,
    Determinism,
    make_alloc_accounting_bug,
    make_blkmq_wedge_bug,
    make_close_use_after_free_bug,
    make_dir_insert_crash_bug,
    make_freeze_bug,
    make_lockdep_warn_bug,
    make_lookup_crash_bug,
    make_size_corruption_bug,
    make_stale_dentry_bug,
    make_truncate_warn_bug,
    standard_catalog,
)
from repro.faults.injector import ArmedBug, Injector

__all__ = [
    "BugSpec",
    "Consequence",
    "Determinism",
    "Injector",
    "ArmedBug",
    "standard_catalog",
    "make_dir_insert_crash_bug",
    "make_lookup_crash_bug",
    "make_close_use_after_free_bug",
    "make_truncate_warn_bug",
    "make_lockdep_warn_bug",
    "make_size_corruption_bug",
    "make_alloc_accounting_bug",
    "make_stale_dentry_bug",
    "make_blkmq_wedge_bug",
    "make_freeze_bug",
]
