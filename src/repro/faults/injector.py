"""The injection engine.

Arms :class:`BugSpec` objects into a base filesystem's hook registry.
Each armed bug keeps its own state: an invocation counter (exposed to
triggers as ``ctx["_bug_eligible_count"]`` so "the Nth close" style
triggers work), a fire counter, and its slice of the seeded RNG for
probabilistic (non-deterministic) bugs.

Consequence dispatch:

* ``CRASH``  → raise :class:`KernelBug`;
* ``FREEZE`` → raise :class:`KernelBug` tagged ``watchdog:<id>`` (a
  detected hang);
* ``WARN``   → raise :class:`KernelWarning` when ``warn_raises`` (the
  RECOVER policy), else count silently (IGNORE policy, like a logged
  WARN_ON that execution runs past);
* ``NOCRASH`` → run the payload against the filesystem/context.

The injector holds a reference to the *current* base filesystem; the
supervisor's recovery swaps in the rebooted instance via
:meth:`retarget` so payload-style bugs keep pointing at live state (the
hooks object itself survives the reboot — armed bugs stay armed, which
is what makes deterministic bugs deterministic across recoveries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import KernelBug, KernelWarning
from repro.faults.catalog import BugSpec, Consequence, Determinism
from repro.util import make_rng


@dataclass
class ArmedBug:
    spec: BugSpec
    invocations: int = 0
    fires: int = 0
    warn_logs: int = 0
    enabled: bool = True


@dataclass
class InjectorStats:
    fires_by_bug: dict[str, int] = field(default_factory=dict)
    # Payload dispatches skipped because the targeted filesystem was
    # already fenced by a contained reboot (see Injector._fire).
    stale_skips: int = 0

    @property
    def total_fires(self) -> int:
        return sum(self.fires_by_bug.values())


class Injector:
    def __init__(self, hooks, seed: int = 0, warn_raises: bool = True):
        self.hooks = hooks
        self.rng = make_rng(seed)
        self.warn_raises = warn_raises
        self.armed: dict[str, ArmedBug] = {}
        self.stats = InjectorStats()
        self._fs = None

    def retarget(self, fs) -> None:
        """Point payload bugs at the (re)mounted base filesystem."""
        self._fs = fs

    def arm(self, spec: BugSpec) -> ArmedBug:
        if spec.bug_id in self.armed:
            raise ValueError(f"bug {spec.bug_id!r} already armed")
        armed = ArmedBug(spec=spec)
        self.armed[spec.bug_id] = armed

        def handler(point: str, ctx: dict[str, Any]) -> None:
            self._fire(armed, ctx)

        self.hooks.register(spec.hook, handler)
        return armed

    def arm_all(self, specs) -> list[ArmedBug]:
        return [self.arm(spec) for spec in specs]

    def disarm(self, bug_id: str) -> None:
        """Soft-disarm: the handler stays registered but never fires —
        the moral equivalent of the bug being patched."""
        self.armed[bug_id].enabled = False

    def _fire(self, armed: ArmedBug, ctx: dict[str, Any]) -> None:
        if not armed.enabled:
            return
        spec = armed.spec
        ctx["_bug_eligible_count"] = armed.invocations
        armed.invocations += 1
        if spec.max_fires is not None and armed.fires >= spec.max_fires:
            return
        if not spec.trigger(ctx):
            return
        if spec.determinism is Determinism.NONDETERMINISTIC and self.rng.random() >= spec.probability:
            return

        if spec.consequence is Consequence.NOCRASH:
            fs = self._fs
            if fs is not None and not getattr(fs, "_mounted", True):
                # The hooks object outlives a contained reboot, so hooks
                # fire during the replacement base's construction —
                # before the supervisor's on_reboot callbacks can
                # retarget() us.  The old base is fenced (`_mounted`
                # False) at that point; running the payload against it
                # would mutate discarded state.  Skip without counting a
                # fire (max_fires still applies to the live target).
                self.stats.stale_skips += 1
                return

        armed.fires += 1
        self.stats.fires_by_bug[spec.bug_id] = self.stats.fires_by_bug.get(spec.bug_id, 0) + 1

        if spec.consequence is Consequence.CRASH:
            raise KernelBug(spec.title, bug_id=spec.bug_id)
        if spec.consequence is Consequence.FREEZE:
            raise KernelBug(f"watchdog: {spec.title}", bug_id=f"watchdog:{spec.bug_id}")
        if spec.consequence is Consequence.WARN:
            if self.warn_raises:
                raise KernelWarning(spec.title, bug_id=spec.bug_id)
            armed.warn_logs += 1
            return
        # NOCRASH: silent corruption.
        assert spec.payload is not None
        spec.payload(self._fs, ctx)
