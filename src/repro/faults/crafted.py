"""Crafted disk images (§2.1).

"One notable type of deterministic bug occurs when a user mounts a
crafted disk image and issues operations to trigger a null-pointer
dereference or use-after-free in the kernel; such images can bypass
FSCK, leading to crashes from malicious attackers."

This module builds such images for the reproduction's base filesystem.
The crafted images are *structurally valid* — they parse, they checksum,
they pass :mod:`repro.fsck` — but their contents are adversarial:

* :func:`craft_poisoned_name_image` plants directory entries whose names
  contain an armed bug's trigger substring, so that merely looking up or
  listing the planted directory crashes an (injected-buggy) base;
* :func:`craft_symlink_maze` builds a dense web of symlink chains and a
  terminal loop — legal per the format, hostile to naive resolvers;
* :func:`craft_deep_tree` nests directories to a configured depth, the
  stack-abuse shape.

Each returns the list of planted trap paths so examples and tests can
walk straight into them.  Construction uses the *shadow* filesystem
machinery offline (mount image → mutate → write overlay back), which is
also a nice demonstration that the shadow code doubles as tooling.
"""

from __future__ import annotations

from repro.blockdev.device import BlockDevice
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem


def _apply_overlay(shadow: ShadowFilesystem, device: BlockDevice) -> None:
    """Write a shadow's overlay back to the device (offline tooling only:
    this is the one place shadow-produced blocks hit a disk directly,
    because here *we* are the attacker preparing an image, not the
    recovery path)."""
    for block in sorted(shadow.overlay.blocks):
        device.write_block(block, shadow.overlay.blocks[block])
    device.flush()


def craft_poisoned_name_image(
    device: BlockDevice,
    trigger_substring: str,
    directory: str = "/share",
    n_traps: int = 3,
    format_first: bool = True,
) -> list[str]:
    """Build an image whose ``directory`` contains entries with names
    embedding ``trigger_substring``.  Returns the trap paths."""
    if format_first:
        mkfs(device)
    shadow = ShadowFilesystem(device, check_level=CheckLevel.BASIC)
    seq = 1
    shadow.mkdir(directory, opseq=seq)
    traps = []
    for i in range(n_traps):
        seq += 1
        name = f"report{trigger_substring}{i}.txt"
        path = f"{directory}/{name}"
        fd = shadow.open(path, flags=_creat(), opseq=seq)
        seq += 1
        shadow.write(fd, b"innocuous content\n", opseq=seq)
        seq += 1
        shadow.close(fd, opseq=seq)
        traps.append(path)
    seq += 1
    shadow.mkdir(f"{directory}/docs", opseq=seq)  # benign decoys
    _apply_overlay(shadow, device)
    return traps


def craft_symlink_maze(
    device: BlockDevice,
    chain_length: int = 6,
    format_first: bool = True,
) -> dict[str, str]:
    """Build a symlink chain ``/maze/hop0 -> hop1 -> ... -> loopA <-> loopB``.

    Returns {entry: what it should resolve to} — the chain head resolves
    fine (length < the 8-hop limit when ``chain_length`` allows), the
    loop pair must yield ELOOP.  A resolver without a depth limit spins
    forever; the shadow's bounded resolution is the defense.
    """
    if format_first:
        mkfs(device)
    shadow = ShadowFilesystem(device, check_level=CheckLevel.BASIC)
    seq = 1
    shadow.mkdir("/maze", opseq=seq)
    seq += 1
    fd = shadow.open("/maze/treasure", flags=_creat(), opseq=seq)
    seq += 1
    shadow.write(fd, b"found it\n", opseq=seq)
    seq += 1
    shadow.close(fd, opseq=seq)
    for i in range(chain_length):
        seq += 1
        target = "/maze/treasure" if i == chain_length - 1 else f"/maze/hop{i + 1}"
        shadow.symlink(target, f"/maze/hop{i}", opseq=seq)
    seq += 1
    shadow.symlink("/maze/loopB", "/maze/loopA", opseq=seq)
    seq += 1
    shadow.symlink("/maze/loopA", "/maze/loopB", opseq=seq)
    _apply_overlay(shadow, device)
    return {"/maze/hop0": "/maze/treasure", "/maze/loopA": "ELOOP", "/maze/loopB": "ELOOP"}


def craft_deep_tree(device: BlockDevice, depth: int = 32, format_first: bool = True) -> str:
    """Nest directories ``/d/d/d/...`` to ``depth``; returns the deepest
    path.  Bounded recursion in resolvers is the property under test."""
    if format_first:
        mkfs(device)
    shadow = ShadowFilesystem(device, check_level=CheckLevel.BASIC)
    path = ""
    for i in range(depth):
        path += "/d"
        shadow.mkdir(path, opseq=i + 1)
    _apply_overlay(shadow, device)
    return path


def _creat() -> int:
    from repro.api import OpenFlags

    return int(OpenFlags.CREAT)
