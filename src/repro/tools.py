"""Command-line toolbox: ``python -m repro.tools <command>``.

Operates on image files (the :class:`FileBlockDevice` format):

* ``mkfs <image> [--blocks N]`` — create and format an image;
* ``fsck <image> [--repair]`` — check (and optionally repair) an image;
* ``inspect <image>`` — superblock, accounting, and namespace dump;
* ``ls <image> <path>`` / ``cat <image> <path>`` — read-only access
  through the *shadow* implementation (never writes, checks everything:
  the safe way to look at an untrusted image);
* ``bugstudy`` — print Table 1 and Figure 1 from the study dataset;
* ``verify [--depth N]`` — run the bounded-exhaustive shadow-vs-spec
  refinement check;
* ``trustbase`` — the §4.3 trusted-code-size report;
* ``report`` (also installed as ``rae-report``) — run a seeded workload
  with fault injection under the supervisor and print the observability
  report: metrics snapshot plus the recovery span timeline
  (docs/OBSERVABILITY.md);
* ``bundle <file>`` — pretty-print a forensic bundle written with
  ``report --bundle`` (or ``--json`` to re-emit it normalized);
* ``timeline <file>`` — merge the spans and events of a snapshot
  written with ``report --json`` into one causally-ordered timeline;
* ``hotpath <file>`` — render a ``BENCH_hotpath.json`` artifact
  (written by ``rae-bench``) as per-mix / per-layer self-time tables.

``rae-report`` dispatches to ``report``/``bundle``/``timeline``/
``hotpath`` when the first argument names one of them, and defaults to
``report`` otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.blockdev.device import FileBlockDevice
from repro.errors import FsError
from repro.ondisk.layout import BLOCK_SIZE
from repro.ondisk.mkfs import mkfs
from repro.ondisk.superblock import Superblock


def _open_image(path: str, readonly: bool = True) -> FileBlockDevice:
    if not os.path.exists(path):
        sys.exit(f"error: image {path!r} does not exist")
    with open(path, "rb") as f:
        sb = Superblock.unpack(f.read(BLOCK_SIZE), verify=False)
    block_count = sb.block_count if sb.block_count else os.path.getsize(path) // BLOCK_SIZE
    return FileBlockDevice(path, block_count=max(block_count, 1), readonly=readonly)


def cmd_mkfs(args) -> int:
    device = FileBlockDevice(args.image, block_count=args.blocks)
    sb = mkfs(device)
    device.close()
    print(f"formatted {args.image}: {sb.block_count} blocks, {sb.free_blocks} free, {sb.free_inodes} inodes free")
    return 0


def cmd_fsck(args) -> int:
    from repro.fsck import Fsck, repair_image

    if args.repair:
        device = _open_image(args.image, readonly=False)
        for action in repair_image(device):
            print(f"repair: {action}")
    device = _open_image(args.image, readonly=not args.repair)
    report = Fsck(device).run()
    for finding in report.findings:
        print(finding)
    status = "clean" if report.clean else f"{len(report.errors)} errors"
    print(f"{args.image}: {status} ({report.inodes_scanned} inodes, {report.blocks_referenced} blocks referenced)")
    device.close()
    return 0 if report.clean else 1


def cmd_inspect(args) -> int:
    from repro.ondisk.image import describe, dump_tree

    device = _open_image(args.image)
    info = describe(device)
    sb = info.superblock
    print(f"image          : {args.image}")
    print(f"geometry       : {sb.block_count} blocks x {sb.block_size} B, {sb.group_count} groups")
    print(f"journal        : {sb.journal_blocks} blocks")
    print(f"mount state    : {'clean' if sb.mount_state == 1 else 'DIRTY'} (mounted {sb.mount_count} times)")
    print(f"free           : {sb.free_blocks} blocks / {sb.free_inodes} inodes (superblock)")
    print(f"free (bitmaps) : {info.free_blocks_by_bitmap} blocks / {info.free_inodes_by_bitmap} inodes")
    print(f"live inodes    : {info.live_inodes}")
    print("namespace:")
    for path, ino in sorted(dump_tree(device).items()):
        print(f"  {path}  (ino {ino})")
    device.close()
    return 0


def _shadow_for(args):
    from repro.shadowfs.filesystem import ShadowFilesystem

    return ShadowFilesystem(_open_image(args.image))


def cmd_ls(args) -> int:
    shadow = _shadow_for(args)
    for name in shadow.readdir(args.path):
        full = args.path.rstrip("/") + "/" + name
        st = shadow.lstat(full)
        print(f"{st.ftype.name.lower():9s} {st.nlink:3d} {st.size:10d}  {name}")
    return 0


def cmd_cat(args) -> int:
    shadow = _shadow_for(args)
    fd = shadow.open(args.path)
    try:
        size = shadow.lstat(args.path).size if not args.path else shadow.stat(args.path).size
        sys.stdout.buffer.write(shadow.read(fd, size))
    finally:
        shadow.close(fd)
    return 0


def cmd_replay(args) -> int:
    """Replay a JSON-lines trace against an image through the shadow
    (read-only: effects land in the overlay, the image is untouched) and
    diff actual vs recorded outcomes — the §4.3 post-error workflow."""
    from repro.workloads.trace import replay_trace

    shadow = _shadow_for(args)
    with open(args.trace, "r") as stream:
        results = replay_trace(shadow, stream)
    mismatches = [
        (index, actual, recorded)
        for index, actual, recorded in results
        if recorded is not None and not actual.same_outcome_as(recorded)
    ]
    print(f"replayed {len(results)} operations from {args.trace}")
    for index, actual, recorded in mismatches[:20]:
        print(f"  DISCREPANCY at op {index}: recorded {recorded}, shadow produced {actual}")
    print(f"{len(mismatches)} discrepancies" if mismatches else "no discrepancies")
    return 1 if mismatches else 0


def cmd_bugstudy(args) -> int:
    from repro.bugstudy import build_dataset, build_figure1, build_table1

    records = build_dataset()
    print(build_table1(records).render())
    print()
    print(build_figure1(records).render())
    return 0


def cmd_verify(args) -> int:
    from repro.spec.verifier import BoundedVerifier

    result = BoundedVerifier(max_depth=args.depth).run()
    print(f"checked {result.sequences_checked} sequences ({result.ops_executed} ops) at depth {args.depth}")
    for divergence in result.divergences[:20]:
        print(f"  DIVERGENCE: {divergence}")
    print("refinement holds" if result.ok else f"{len(result.divergences)} divergences")
    return 0 if result.ok else 1


def cmd_trustbase(args) -> int:
    from repro.core.trustbase import trusted_code_report

    print(trusted_code_report().render())
    return 0


def cmd_scrub(args) -> int:
    from repro.core.scrubber import Scrubber
    from repro.ondisk.superblock import Superblock
    from repro.shadowfs.checks import CheckLevel

    device = _open_image(args.image)
    layout = Superblock.unpack(device.read_block(0), verify=False).layout()
    level = CheckLevel.FULL if args.full else CheckLevel.BASIC
    scrubber = Scrubber(device, layout, check_level=level)
    findings = scrubber.full_pass()
    print(
        f"scrubbed {scrubber.stats.inodes_scanned} inodes, "
        f"{scrubber.stats.dir_blocks_scanned} directory blocks ({level.name} checks)"
    )
    for finding in findings:
        print(f"  FINDING: {finding}")
    print(f"{len(findings)} findings" if findings else "image is sound")
    device.close()
    return 1 if findings else 0


def cmd_report(args) -> int:
    """rae-report: run a seeded workload under the supervisor (with a
    deterministic injected BUG every ``--fault-every`` directory inserts)
    and print the full observability report — supervisor summary, metric
    snapshot, recovery span timeline — optionally exporting JSON."""
    from repro.basefs.hooks import HookPoints
    from repro.bench.harness import make_device
    from repro.core.supervisor import RAEConfig, RAEFilesystem
    from repro.errors import KernelBug, RecoveryFailure
    from repro.obs import write_snapshot
    from repro.workloads import WorkloadGenerator, varmail_profile

    hooks = HookPoints()
    if args.fault_every > 0:
        fired = {"count": 0}

        def inject(point, ctx):
            fired["count"] += 1
            if fired["count"] % args.fault_every == 0:
                raise KernelBug(f"injected dir.insert bug #{fired['count']}", bug_id="report-demo")

        hooks.register("dir.insert", inject)

    fs = RAEFilesystem(make_device(16384), RAEConfig(), hooks=hooks)
    operations = WorkloadGenerator(varmail_profile(), seed=args.seed).ops(args.ops)
    failed = 0
    for index, operation in enumerate(operations):
        try:
            operation.apply(fs, opseq=index + 1)
        except RecoveryFailure as exc:
            print(f"recovery failed at op {index}: {exc}", file=sys.stderr)
            failed += 1
            break
    fs.unmount()

    print(fs.report())
    snapshot = fs.obs.snapshot()
    print()
    print("metrics snapshot")
    for section in ("counters", "gauges", "collected"):
        for name, value in snapshot[section].items():
            if isinstance(value, float):
                value = f"{value:.6g}"
            print(f"  {name} = {value}")
    for name, hist in snapshot["histograms"].items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        print(
            f"  {name}: count={hist['count']} mean={mean * 1e6:.1f}us "
            f"p50={(hist['p50'] or 0) * 1e6:.1f}us p95={(hist['p95'] or 0) * 1e6:.1f}us "
            f"p99={(hist['p99'] or 0) * 1e6:.1f}us "
            f"min={(hist['min'] or 0) * 1e6:.1f}us max={(hist['max'] or 0) * 1e6:.1f}us"
        )
    timeline = fs.obs.tracer.timeline()
    if timeline:
        print()
        print("recovery timeline")
        print(timeline)
    if args.json:
        path = write_snapshot(args.json, fs.obs, meta={"ops": args.ops, "seed": args.seed})
        print(f"\nwrote {path}")
    if args.bundle:
        from repro.obs import write_bundle

        if fs.last_bundle is None:
            print("no recoveries ran; no forensic bundle to write", file=sys.stderr)
            return 1
        path = write_bundle(args.bundle, fs.last_bundle)
        print(f"wrote forensic bundle {path}")
    return 1 if failed else 0


def cmd_bundle(args) -> int:
    """rae-report bundle: pretty-print (or re-emit as JSON) a forensic
    bundle file written by ``report --bundle``."""
    import json

    from repro.obs import load_bundle, render_bundle

    try:
        bundle = load_bundle(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(bundle, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_bundle(bundle))
    return 0


def cmd_timeline(args) -> int:
    """rae-report timeline: merge a snapshot's spans and events into one
    causally-ordered timeline.  Accepts either a ``report --json`` file
    ({"meta", "snapshot"}) or a raw registry snapshot."""
    import json

    from repro.obs import merge_timeline, render_timeline

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.file}: not valid JSON: {exc}", file=sys.stderr)
        return 2
    snapshot = payload.get("snapshot", payload) if isinstance(payload, dict) else None
    if not isinstance(snapshot, dict) or "spans" not in snapshot or "events" not in snapshot:
        print(
            f"error: {args.file}: not a registry snapshot (expected 'spans' and 'events')",
            file=sys.stderr,
        )
        return 2
    merged = merge_timeline(snapshot["spans"], snapshot["events"])
    if args.json:
        json.dump(merged, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_timeline(merged))
    return 0


def cmd_hotpath(args) -> int:
    """rae-report hotpath: render a ``BENCH_hotpath.json`` artifact as
    per-mix / per-layer tables with percentile columns."""
    import json

    from repro.bench.reporting import render_hotpath
    from repro.obs.check import check_hotpath_payload

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.file}: not valid JSON: {exc}", file=sys.stderr)
        return 2
    problems = check_hotpath_payload(payload)
    if problems and not isinstance(payload.get("mixes"), dict):
        print(
            f"error: {args.file}: not a BENCH_hotpath artifact: {problems[0]}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_hotpath(payload))
        for problem in problems:
            print(f"note: {problem}", file=sys.stderr)
    return 0


def cmd_experiments(args) -> int:
    """Regenerate every paper table/figure and ablation in one command
    (wraps the pytest benchmark suite with output unbuffered)."""
    import subprocess

    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    benchmarks = os.path.join(here, "benchmarks")
    if not os.path.isdir(benchmarks):
        sys.exit("error: benchmarks/ not found; run from a source checkout")
    return subprocess.call(
        [sys.executable, "-m", "pytest", benchmarks, "--benchmark-only", "-q", "-s"]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.tools", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mkfs", help="create and format an image file")
    p.add_argument("image")
    p.add_argument("--blocks", type=int, default=8192)
    p.set_defaults(func=cmd_mkfs)

    p = sub.add_parser("fsck", help="check (optionally repair) an image")
    p.add_argument("image")
    p.add_argument("--repair", action="store_true")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("inspect", help="superblock + namespace dump")
    p.add_argument("image")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("ls", help="list a directory via the shadow")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("cat", help="print a file via the shadow")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_cat)

    p = sub.add_parser("replay", help="replay a trace via the shadow, diff outcomes")
    p.add_argument("image")
    p.add_argument("trace")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("bugstudy", help="print Table 1 and Figure 1")
    p.set_defaults(func=cmd_bugstudy)

    p = sub.add_parser("verify", help="bounded shadow-vs-spec refinement")
    p.add_argument("--depth", type=int, default=2)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("trustbase", help="trusted-code-size report (§4.3)")
    p.set_defaults(func=cmd_trustbase)

    p = sub.add_parser("scrub", help="integrity-patrol an image (read-only)")
    p.add_argument("image")
    p.add_argument("--full", action="store_true", help="cross-structure checks too")
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("report", help="run a workload under RAE, print the observability report")
    p.add_argument("--ops", type=int, default=300, help="workload length (default 300)")
    p.add_argument("--seed", type=int, default=7, help="workload seed (default 7)")
    p.add_argument(
        "--fault-every",
        type=int,
        default=40,
        help="inject a KernelBug every Nth directory insert (0 disables; default 40)",
    )
    p.add_argument("--json", metavar="PATH", help="also export the snapshot as JSON")
    p.add_argument(
        "--bundle", metavar="PATH",
        help="also export the last recovery's forensic bundle as JSON",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("bundle", help="pretty-print a forensic bundle file")
    p.add_argument("file")
    p.add_argument("--json", action="store_true", help="re-emit the bundle as JSON")
    p.set_defaults(func=cmd_bundle)

    p = sub.add_parser("timeline", help="merge a snapshot's spans + events into one timeline")
    p.add_argument("file")
    p.add_argument("--json", action="store_true", help="emit the merged timeline as JSON")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("hotpath", help="render a BENCH_hotpath.json per-layer breakdown")
    p.add_argument("file")
    p.add_argument("--json", action="store_true", help="re-emit the artifact as JSON")
    p.set_defaults(func=cmd_hotpath)

    p = sub.add_parser("experiments", help="regenerate all tables/figures/ablations")
    p.set_defaults(func=cmd_experiments)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FsError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


def rae_report_main() -> int:
    """Console-script entry: ``rae-report`` dispatches to its own
    subcommands (``report``/``bundle``/``timeline``/``hotpath``) when
    named, and defaults to ``report`` so ``rae-report --ops 500`` keeps
    working."""
    argv = sys.argv[1:]
    if argv and argv[0] in ("report", "bundle", "timeline", "hotpath"):
        return main(argv)
    return main(["report", *argv])


if __name__ == "__main__":
    sys.exit(main())
