"""fstests-style suite plumbing for the sweep.

The sweep's unit of execution is the (workload, op, point, crash-kind)
tuple; this module gives those tuples the shape of an fstests run:
stable case names (``sweep/<op>/NNN``), group membership for selection
(``-g commit``, ``-g power-loss``, ``-g quick``), scratch-image
setup/teardown with per-geometry template caching, and the familiar
one-line-per-case result listing with a totals footer.
"""

from __future__ import annotations

from repro.blockdev.device import MemoryBlockDevice
from repro.ondisk.mkfs import mkfs


class ScratchImage:
    """Scratch-device setup/teardown, fstests SCRATCH_DEV style.

    ``mkfs`` on every case would dominate sweep time; instead the first
    ``setup()`` for a geometry formats once and snapshots the result,
    and every later call restores the template onto a fresh in-memory
    device.  ``teardown()`` exists for symmetry and for subclasses
    backed by real files; in-memory scratch devices are just dropped.
    """

    _templates: dict[tuple[int, int], bytes] = {}

    def __init__(self, block_count: int = 1024, journal_blocks: int = 8):
        self.block_count = block_count
        self.journal_blocks = journal_blocks
        self.live: list[MemoryBlockDevice] = []

    def setup(self) -> MemoryBlockDevice:
        key = (self.block_count, self.journal_blocks)
        mem = MemoryBlockDevice(block_count=self.block_count, track_durability=True)
        template = self._templates.get(key)
        if template is None:
            mkfs(mem, journal_blocks=self.journal_blocks)
            mem.flush()
            self._templates[key] = mem.snapshot()
        else:
            mem.restore(template)
        self.live.append(mem)
        return mem

    def teardown(self, mem: MemoryBlockDevice | None = None) -> None:
        if mem is None:
            self.live.clear()
            return
        if mem in self.live:
            self.live.remove(mem)

    def __enter__(self) -> MemoryBlockDevice:
        return self.setup()

    def __exit__(self, *exc) -> None:
        self.teardown()


# ----------------------------------------------------------------------
# case naming and groups


def case_name(case, index: int) -> str:
    """``sweep/<op>/NNN`` — stable across runs for a fixed work-list."""
    return f"sweep/{case.op}/{index:03d}"


def case_groups(case) -> tuple[str, ...]:
    """Groups a case belongs to, fstests ``-g`` style."""
    return ("auto", case.op, case.crash_kind, case.point.kind, case.profile)


def name_cases(cases) -> list[tuple[str, object]]:
    """Assign ``sweep/<op>/NNN`` names, numbering within each op."""
    counters: dict[str, int] = {}
    named: list[tuple[str, object]] = []
    for case in cases:
        counters[case.op] = counters.get(case.op, 0) + 1
        named.append((case_name(case, counters[case.op]), case))
    return named


def select_cases(named, groups: tuple[str, ...] | None) -> list[tuple[str, object]]:
    """Keep cases belonging to any requested group (None = all)."""
    if not groups:
        return list(named)
    wanted = set(groups)
    return [(name, case) for name, case in named if wanted & set(case_groups(case))]


# ----------------------------------------------------------------------
# result formatting

#: outcome -> fstests-style status word.
_STATUS = {
    "recovered-clean": "pass",
    "repaired": "pass",
    "diverged": "FAIL",
    "recovery-failed": "FAIL",
    "unreached": "notrun",
}


def format_result_line(name: str, result) -> str:
    status = _STATUS.get(result.outcome, "FAIL")
    line = f"{name:<28} {status:<7} ({result.outcome})"
    if result.detail:
        line += f" — {result.detail}"
    return line


def format_report(named_results, report) -> str:
    """The run listing plus the fstests-style footer."""
    lines = [format_result_line(name, result) for name, result in named_results]
    counts = report.outcome_counts()
    total = len(report.pair_outcomes)
    clean = counts.get("recovered-clean", 0)
    lines.append("")
    lines.append(
        f"Ran {len(named_results)} cases over {total} (op, point, kind) tuples: "
        + ", ".join(f"{count} {outcome}" for outcome, count in sorted(counts.items()))
    )
    if report.stale_sanctions:
        lines.append(f"STALE SANCTIONS ({len(report.stale_sanctions)}):")
        for key in report.stale_sanctions:
            lines.append(f"  {key} — covered tuples all clean; remove the entry")
    if report.unsanctioned:
        lines.append(f"UNSANCTIONED NON-CLEAN OUTCOMES ({len(report.unsanctioned)}):")
        for key, outcome, detail in report.unsanctioned:
            suffix = f" — {detail}" if detail else ""
            lines.append(f"  {key}: {outcome}{suffix}")
    elif clean == total:
        lines.append("All tuples recovered clean.")
    else:
        lines.append("All non-clean tuples are sanctioned (see repro/sweep/sanctions.py).")
    return "\n".join(lines)
