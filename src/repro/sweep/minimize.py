"""Delta-minimization of failing op sequences.

Zeller/Hildebrandt ddmin over the workload's operation list: given a
sequence that makes a sweep case fail and a predicate that re-runs the
case on a candidate subsequence, shrink to a 1-minimal subsequence —
removing any single remaining chunk makes the failure disappear.  The
result ships inside the reproducer bundle, so a 200-op fuzzing streak
becomes a handful of ops a human can read.

The predicate re-executes the whole scenario (format, run, crash,
recover, classify), so determinism of the sweep seed is what makes the
minimizer sound: a flaky failure would minimize to garbage.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def _chunks(items: list[T], n: int) -> list[list[T]]:
    """Split into ``n`` contiguous chunks, as evenly as possible."""
    size, extra = divmod(len(items), n)
    out: list[list[T]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            out.append(items[start:end])
        start = end
    return out


def ddmin(
    items: Sequence[T],
    still_fails: Callable[[list[T]], bool],
    max_tests: int = 256,
) -> tuple[list[T], int]:
    """Minimize ``items`` while ``still_fails`` holds.

    Returns ``(minimized, tests_run)``.  ``still_fails`` must be true
    for the full sequence (the caller established the failure); it is
    never called with the empty list.  ``max_tests`` bounds the number
    of re-executions — on exhaustion the best-so-far subsequence is
    returned, which is still a valid (if non-1-minimal) reproducer.
    """
    current = list(items)
    tests = 0
    granularity = 2
    while len(current) >= 2 and tests < max_tests:
        parts = _chunks(current, granularity)
        reduced = False
        for i in range(len(parts)):
            candidate = [item for j, part in enumerate(parts) for item in part if j != i]
            if not candidate:
                continue
            tests += 1
            if still_fails(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if tests >= max_tests:
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, tests
