from repro.sweep.cli import main

raise SystemExit(main())
