"""Crash-point sweep engine over the static crash surface.

Executes every (op, persistence-point, crash-kind) tuple of the
committed ``crashpoints.json``, recovers, classifies, and ships
minimized reproducers for anything that doesn't come back clean.
See ``docs/FAULT_SWEEP.md``.
"""

from repro.sweep.device import CRASH_KINDS, FAIL_STOP, POWER_LOSS, SweepDevice
from repro.sweep.engine import (
    OUTCOME_CLEAN,
    OUTCOME_DIVERGED,
    OUTCOME_FAILED,
    OUTCOME_REPAIRED,
    OUTCOME_UNREACHED,
    SweepCase,
    SweepConfig,
    SweepEngine,
    SweepReport,
    SweepRunResult,
)
from repro.sweep.minimize import ddmin
from repro.sweep.sanctions import SWEEP_SANCTIONS, sanction_for, validate_sanctions
from repro.sweep.suites import ScratchImage
from repro.sweep.surface import SurfaceError, SweepPoint, iter_pairs, load_surface

__all__ = [
    "CRASH_KINDS",
    "FAIL_STOP",
    "POWER_LOSS",
    "OUTCOME_CLEAN",
    "OUTCOME_DIVERGED",
    "OUTCOME_FAILED",
    "OUTCOME_REPAIRED",
    "OUTCOME_UNREACHED",
    "SWEEP_SANCTIONS",
    "ScratchImage",
    "SurfaceError",
    "SweepCase",
    "SweepConfig",
    "SweepDevice",
    "SweepEngine",
    "SweepPoint",
    "SweepReport",
    "SweepRunResult",
    "ddmin",
    "iter_pairs",
    "load_surface",
    "sanction_for",
    "validate_sanctions",
]
