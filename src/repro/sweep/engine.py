"""The crash-point sweep engine.

ROADMAP item 3, executed: for every (op, point) pair of the committed
``crashpoints.json`` (PR 7's static crash surface), run a generated
workload, crash at exactly that persistence point — under both crash
kinds — recover, and classify the outcome:

* ``recovered-clean``  — recovery + fsck + spec equivalence all pass;
* ``repaired``         — fsck found damage that ``repair_image`` fixed;
* ``diverged``         — recovered state differs from the no-crash
  reference run (or an offline invariant broke);
* ``recovery-failed``  — recovery/fsck/repair could not produce a
  mountable, consistent image;
* ``unreached``        — the armed point never fired in any run of the
  tuple (needs a sanction: a work-list entry the sweep cannot execute
  is coverage the catalog over-promises).

Every tuple is deterministic under the single sweep seed: workload and
injector sub-seeds are derived by hashing the case identity, so a
failing tuple replays byte-identically from its bundle's recorded
parameters.  Failing workload-driven cases are delta-minimized
(:mod:`repro.sweep.minimize`) and shipped as PR 5 forensic bundles.

Scenario shapes per crash-entry op:

* ``commit``/``unmount`` — supervised (RAE) workload for fail-stop,
  judged by spec equivalence against the no-crash reference run plus
  fsck; bare :class:`BaseFilesystem` for power-loss, judged by
  remount + fsck (a real power cut loses the supervisor's op log, so
  the journal's crash consistency is the whole contract).
* ``mount``/``journal-recover`` — crash while recovering a dirty
  image; verdict: a second mount converges to the reference state
  (replay is idempotent, so this holds for both crash kinds).
* ``mkfs`` — torn format; verdict: re-format yields a clean fs.
* ``inode-repair``/``image-clone``/``fault-injection``/``cache-sync``
  — offline tooling crashes; verdict: retry is idempotent, the source
  image is unharmed, and fsck stays clean.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.api import FsOp, OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.basefs.journal_mgr import JournalManager
from repro.blockdev.cache import BufferCache
from repro.blockdev.device import MemoryBlockDevice
from repro.blockdev.faults import DeviceFaultPlan, FaultyBlockDevice
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug, RecoveryFailure
from repro.faults.catalog import BugSpec, Consequence, Determinism
from repro.faults.injector import Injector
from repro.fsck.checker import Fsck
from repro.fsck.repairs import repair_image
from repro.obs import CrossCheckCapture, build_bundle
from repro.ondisk.image import clone_to_memory, read_inode, write_inode
from repro.ondisk.mkfs import mkfs
from repro.ondisk.superblock import Superblock
from repro.spec.equivalence import FsState, capture_state, states_equivalent
from repro.sweep.device import CRASH_KINDS, FAIL_STOP, POWER_LOSS, SweepDevice
from repro.sweep.minimize import ddmin
from repro.sweep.sanctions import sanction_for, validate_sanctions
from repro.sweep.suites import ScratchImage
from repro.sweep.surface import SweepPoint, iter_pairs, load_surface
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import (
    Profile,
    fileserver_profile,
    metadata_profile,
    varmail_profile,
    webserver_profile,
)

OUTCOME_CLEAN = "recovered-clean"
OUTCOME_REPAIRED = "repaired"
OUTCOME_DIVERGED = "diverged"
OUTCOME_FAILED = "recovery-failed"
OUTCOME_UNREACHED = "unreached"

#: Most severe first; per-tuple aggregation keeps the worst run.
_SEVERITY = (OUTCOME_FAILED, OUTCOME_DIVERGED, OUTCOME_REPAIRED, OUTCOME_CLEAN)

PROFILES: dict[str, object] = {
    "fileserver": fileserver_profile,
    "varmail": varmail_profile,
    "webserver": webserver_profile,
    "metadata": metadata_profile,
}

#: Commit-cadence file: fsyncing it is the supervised run's stand-in
#: for the reference run's direct fs.commit() calls.
_SYNC_FILE = "/.sweep-sync"

#: Ops whose scenario is driven by a generated workload stream (the
#: remaining ops run offline against a prebuilt image; sweeping them
#: once per crash kind is enough).
_WORKLOAD_OPS = frozenset({"commit", "unmount", "mount", "journal-recover"})

#: Ops whose failing cases the minimizer can shrink (the op stream is
#: the scenario input; mount/journal-recover only consume its image).
_MINIMIZABLE_OPS = frozenset({"commit", "unmount"})


@dataclass
class SweepConfig:
    surface_path: str = "crashpoints.json"
    src_root: str | None = "src/repro"
    check_drift: bool = True
    seed: int = 0
    profiles: tuple[str, ...] = ("fileserver", "varmail")
    nops: int = 20
    block_count: int = 1024
    #: Small enough that a multi-commit workload wraps the journal (the
    #: reset/reinit points fire), large enough for one cadence window.
    journal_blocks: int = 16
    #: Commit every N workload ops — bounds transaction size below the
    #: small journal and puts a durability point mid-stream.
    commit_every: int = 6
    crash_kinds: tuple[str, ...] = CRASH_KINDS
    ops: tuple[str, ...] | None = None    # filter: only these entry ops
    refs: tuple[str, ...] | None = None   # filter: only these point refs
    max_cases: int | None = None          # smoke cap, applied after filters
    minimize: bool = True
    minimize_max_tests: int = 64
    bundle_dir: str | None = None


@dataclass(frozen=True)
class SweepCase:
    """One (workload, op, point, crash-kind) run, fully parameterized."""

    point: SweepPoint
    crash_kind: str
    profile: str
    nops: int
    workload_seed: int
    injector_seed: int
    block_count: int
    journal_blocks: int

    @property
    def op(self) -> str:
        return self.point.op

    @property
    def ref(self) -> str:
        return self.point.ref

    def ident(self) -> str:
        return (
            f"{self.op} @ {self.ref} [{self.crash_kind}]"
            + (f" profile={self.profile}" if self.op in _WORKLOAD_OPS else "")
        )

    def params(self) -> dict:
        """Everything needed to replay this exact run (bundle payload)."""
        return {
            "op": self.op,
            "ref": self.ref,
            "persist_kind": self.point.kind,
            "entry": self.point.entry,
            "entry_path": self.point.entry_path,
            "crash_kind": self.crash_kind,
            "profile": self.profile,
            "nops": self.nops,
            "workload_seed": self.workload_seed,
            "injector_seed": self.injector_seed,
            "block_count": self.block_count,
            "journal_blocks": self.journal_blocks,
        }


@dataclass
class SweepRunResult:
    case: SweepCase
    outcome: str
    fired: bool
    detail: str = ""
    bundle: dict | None = None
    minimized_ops: list[str] | None = None
    image: bytes | None = None  # final durable image (reproducibility checks)


@dataclass
class SweepReport:
    results: list[SweepRunResult] = field(default_factory=list)
    #: (op, ref, crash_kind) -> aggregated outcome (worst run; unreached
    #: only when no run of the tuple fired).
    pair_outcomes: dict[tuple[str, str, str], str] = field(default_factory=dict)
    unsanctioned: list[tuple[tuple[str, str, str], str, str]] = field(default_factory=list)
    stale_sanctions: list[tuple[str, str, str]] = field(default_factory=list)
    reproducers: list[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.unsanctioned and not self.stale_sanctions

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.pair_outcomes.values():
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts


def _sub_seed(sweep_seed: int, *parts) -> int:
    """A deterministic 31-bit sub-seed.  crc32 of the case identity —
    never Python's ``hash()``, which is salted per process."""
    key = ":".join(str(part) for part in parts)
    return zlib.crc32(f"{sweep_seed}:{key}".encode()) & 0x7FFFFFFF


def _tail_mutation(fs) -> None:
    """Dirty the sync file just before unmount.  Without this, the last
    cadence sync may leave nothing to commit and unmount's final commit
    takes the empty-transaction early return — the journal persistence
    points would be unreachable under the ``unmount`` entry."""
    fd = fs.open(_SYNC_FILE, OpenFlags.CREAT)
    fs.write(fd, b"sweep tail mutation")
    fs.close(fd)


def _sync_point(fs, commit) -> None:
    """One commit-cadence step: touch the sync file, make it durable,
    release the fd (transient, so it never collides with the workload's
    generated fd numbering).  ``commit`` is the base filesystem's direct
    commit for reference runs; None means fsync through the target's own
    API — the supervised path.
    """
    fd = fs.open(_SYNC_FILE, OpenFlags.CREAT)
    if commit is not None:
        commit()
    else:
        fs.fsync(fd)
    fs.close(fd)


def _crash_spec(ref: str) -> BugSpec:
    """The armed crash: fires once, at exactly this persistence point.

    ``max_fires=1`` matters — recovery's contained reboot re-executes
    the same persistence points on the same hooks object, and a re-fire
    mid-recovery would escalate every case into the nested-recovery
    give-up path instead of testing the point under sweep.
    """
    return BugSpec(
        bug_id=f"sweep:{ref}",
        title=f"sweep crash at {ref}",
        hook="blkmq.submit",
        determinism=Determinism.DETERMINISTIC,
        consequence=Consequence.CRASH,
        trigger=lambda ctx: ctx.get("persist_ref") == ref,
        max_fires=1,
        tags={"sweep"},
    )


class SweepEngine:
    def __init__(self, config: SweepConfig | None = None):
        self.config = config or SweepConfig()
        self._scratch = ScratchImage(self.config.block_count, self.config.journal_blocks)
        self._image_cache: dict[tuple, bytes] = {}
        self._state_cache: dict[tuple, FsState] = {}

    # ------------------------------------------------------------------
    # enumeration

    def load_pairs(self) -> list[SweepPoint]:
        payload = load_surface(
            self.config.surface_path,
            src_root=self.config.src_root,
            check_drift=self.config.check_drift,
        )
        pairs = iter_pairs(payload)
        if self.config.ops is not None:
            pairs = [p for p in pairs if p.op in self.config.ops]
        if self.config.refs is not None:
            pairs = [p for p in pairs if p.ref in self.config.refs]
        return pairs

    def build_cases(self, pairs: list[SweepPoint]) -> list[SweepCase]:
        config = self.config
        cases: list[SweepCase] = []
        for pair in pairs:
            profiles = config.profiles if pair.op in _WORKLOAD_OPS else config.profiles[:1]
            for crash_kind in config.crash_kinds:
                for profile in profiles:
                    cases.append(SweepCase(
                        point=pair,
                        crash_kind=crash_kind,
                        profile=profile,
                        nops=config.nops,
                        workload_seed=_sub_seed(
                            config.seed, pair.op, pair.ref, crash_kind, profile, "workload"
                        ),
                        injector_seed=_sub_seed(
                            config.seed, pair.op, pair.ref, crash_kind, profile, "injector"
                        ),
                        block_count=config.block_count,
                        journal_blocks=config.journal_blocks,
                    ))
        if config.max_cases is not None:
            cases = cases[: config.max_cases]
        return cases

    @staticmethod
    def case_from_params(params: dict) -> SweepCase:
        """Rebuild a case from a reproducer bundle's recorded parameters
        — the replay side of sweep reproducibility."""
        point = SweepPoint(
            op=params["op"],
            ref=params["ref"],
            kind=params["persist_kind"],
            path=params["ref"].rpartition(":")[0],
            line=int(params["ref"].rpartition(":")[2]),
            entry=params["entry"],
            entry_path=params["entry_path"],
        )
        return SweepCase(
            point=point,
            crash_kind=params["crash_kind"],
            profile=params["profile"],
            nops=int(params["nops"]),
            workload_seed=int(params["workload_seed"]),
            injector_seed=int(params["injector_seed"]),
            block_count=int(params["block_count"]),
            journal_blocks=int(params["journal_blocks"]),
        )

    # ------------------------------------------------------------------
    # shared scenario plumbing

    def _profile(self, name: str) -> Profile:
        try:
            factory = PROFILES[name]
        except KeyError:
            raise ValueError(f"unknown workload profile {name!r}") from None
        return factory()

    def _workload_ops(self, case: SweepCase) -> list[FsOp]:
        return WorkloadGenerator(self._profile(case.profile), seed=case.workload_seed).ops(case.nops)

    def _scratch_device(self) -> MemoryBlockDevice:
        return self._scratch.setup()

    def _device_from(self, image: bytes) -> MemoryBlockDevice:
        mem = MemoryBlockDevice(block_count=self.config.block_count, track_durability=True)
        mem.restore(image)
        return mem

    def _apply_all(self, fs, ops: list[FsOp], sync=None) -> None:
        """Run the stream; errno outcomes are normal workload behaviour
        (the generator's model can drift from the real tree).  ``sync``
        is called every ``commit_every`` ops — commit cadence keeps each
        transaction inside the deliberately small sweep journal."""
        cadence = self.config.commit_every
        for index, op in enumerate(ops):
            op.apply(fs)
            if sync is not None and cadence and (index + 1) % cadence == 0:
                sync()

    def _clean_image(self, case: SweepCase) -> bytes:
        """A cleanly unmounted image populated by the case's workload —
        the starting point for the offline-tool scenarios."""
        key = ("clean", case.profile, case.workload_seed, case.nops)
        if key not in self._image_cache:
            mem = self._scratch_device()
            fs = BaseFilesystem(mem)
            self._apply_all(fs, self._workload_ops(case), sync=fs.commit)
            fs.unmount()
            self._image_cache[key] = mem.snapshot()
        return self._image_cache[key]

    def _dirty_image(self, case: SweepCase) -> bytes:
        """An image abandoned mid-run — superblock DIRTY, journal holding
        a sealed transaction — for the mount/journal-recover scenarios."""
        key = ("dirty", case.profile, case.workload_seed, case.nops)
        if key not in self._image_cache:
            mem = self._scratch_device()
            fs = BaseFilesystem(mem)
            ops = self._workload_ops(case)
            split = max(1, len(ops) * 2 // 3)
            self._apply_all(fs, ops[:split], sync=fs.commit)
            fs.commit()
            self._apply_all(fs, ops[split:])
            # No unmount: the volatile image *is* the crashed disk state.
            self._image_cache[key] = mem.snapshot()
        return self._image_cache[key]

    def _image_state(self, image_key: tuple, image: bytes) -> FsState:
        """The logical state a clean mount of ``image`` converges to."""
        if image_key not in self._state_cache:
            mem = self._device_from(image)
            fs = BaseFilesystem(mem)
            self._state_cache[image_key] = capture_state(fs)
        return self._state_cache[image_key]

    def _reference_state(self, case: SweepCase, ops: list[FsOp]) -> FsState:
        """The no-crash run: the exact supervised execution with nothing
        armed — same geometry, same ops, same sync cadence, same opseq
        assignment — so spec equivalence compares identical histories
        (a bare BaseFilesystem run would diverge on supervisor-assigned
        timestamps alone)."""
        mem = self._scratch_device()
        rae = RAEFilesystem(mem, config=RAEConfig(metrics=False, flight=False))
        self._apply_all(rae, ops, sync=lambda: _sync_point(rae, None))
        _tail_mutation(rae)
        rae.unmount()
        fs = BaseFilesystem(mem)
        return capture_state(fs)

    def _remount_verdict(
        self, mem: MemoryBlockDevice, reference: FsState | None
    ) -> tuple[str, str]:
        """Remount, fsck, optionally compare against the reference state.

        A first fsck/mount failure goes through ``repair_image`` once
        (outcome ``repaired`` at best); a second failure is final.
        """
        repaired = False
        for attempt in range(2):
            try:
                fs = BaseFilesystem(mem)
                state = capture_state(fs)
                fs.unmount()
            except Exception as exc:  # raelint: disable=ERRNO-DISCIPLINE — verdict boundary: any remount fault is a sweep finding, not a contract errno
                if attempt == 1:
                    return OUTCOME_FAILED, f"remount failed after repair: {exc!r}"
                try:
                    repair_image(mem)
                except Exception as repair_exc:  # raelint: disable=ERRNO-DISCIPLINE — verdict boundary: repair tool crash is the finding itself
                    return OUTCOME_FAILED, f"repair_image failed: {repair_exc!r}"
                repaired = True
                continue
            break
        report = Fsck(mem).run()
        if not report.clean:
            if repaired:
                return OUTCOME_FAILED, f"fsck dirty after repair: {report.findings[:3]}"
            actions = repair_image(mem)
            report = Fsck(mem).run()
            if not report.clean:
                return OUTCOME_FAILED, f"fsck dirty after repair: {report.findings[:3]}"
            repaired = True
            detailed = f"repaired: {actions[:3]}"
        else:
            detailed = ""
        if reference is not None:
            eq = states_equivalent(state, reference)
            if not eq.equivalent:
                return OUTCOME_DIVERGED, str(eq)
        return (OUTCOME_REPAIRED if repaired else OUTCOME_CLEAN), detailed

    def _result(
        self,
        case: SweepCase,
        outcome: str,
        fired: bool,
        detail: str = "",
        bundle: dict | None = None,
        image: bytes | None = None,
    ) -> SweepRunResult:
        return SweepRunResult(
            case=case, outcome=outcome, fired=fired, detail=detail,
            bundle=bundle, image=image,
        )

    # ------------------------------------------------------------------
    # scenarios

    def run_case(self, case: SweepCase, ops: list[FsOp] | None = None) -> SweepRunResult:
        runner = _SCENARIOS[case.op]
        return runner(self, case, ops)

    def _run_supervised(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        ops = ops if ops is not None else self._workload_ops(case)
        if case.crash_kind == POWER_LOSS:
            return self._run_power_loss(case, ops)
        reference = self._reference_state(case, ops)
        mem = self._scratch_device()
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        rae = RAEFilesystem(dev, config=RAEConfig(metrics=False, flight=False), hooks=hooks)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.retarget(rae.base)
        rae.on_reboot.append(injector.retarget)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, FAIL_STOP)
        try:
            # The sync file's fsync drives commits through the
            # supervisor's detection path (the only commit entry the
            # public RAE API exposes) at the same cadence the reference
            # run uses plain fs.commit().
            self._apply_all(rae, ops, sync=lambda: _sync_point(rae, None))
            _tail_mutation(rae)
            rae.unmount()
        except RecoveryFailure as failure:
            return self._result(
                case, OUTCOME_FAILED,
                fired=injector.stats.total_fires > 0,
                detail=f"{failure.phase or 'unknown'}: {failure}",
                bundle=rae.last_bundle,
                image=mem.snapshot(),
            )
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        outcome, detail = self._remount_verdict(mem, reference)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    def _run_power_loss(self, case: SweepCase, ops: list[FsOp]) -> SweepRunResult:
        """Power-loss commit/unmount: bare base, explicit commit cadence.
        The supervisor's memory does not survive a power cut, so the
        verdict is the journal's: remount + fsck must come back clean."""
        mem = self._scratch_device()
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        fs = BaseFilesystem(dev, hooks=hooks)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.retarget(fs)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, POWER_LOSS)
        try:
            self._apply_all(fs, ops, sync=fs.commit)
            _tail_mutation(fs)
            fs.unmount()
        except KernelBug:
            pass  # the sweep's own crash; the device dropped to durable
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        outcome, detail = self._remount_verdict(mem, None)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    def _run_mount(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        dirty = self._dirty_image(case)
        reference = self._image_state(
            ("dirty", case.profile, case.workload_seed, case.nops), dirty
        )
        mem = self._device_from(dirty)
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, case.crash_kind)
        try:
            fs = BaseFilesystem(dev, hooks=hooks)
            injector.retarget(fs)
            fs.unmount()
        except KernelBug:
            pass
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        # Mount creates no new state — replay of the (durable) dirty
        # image is idempotent — so the reference holds for both kinds.
        outcome, detail = self._remount_verdict(mem, reference)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    def _run_journal_recover(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        dirty = self._dirty_image(case)
        reference = self._image_state(
            ("dirty", case.profile, case.workload_seed, case.nops), dirty
        )
        mem = self._device_from(dirty)
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, case.crash_kind)
        layout = Superblock.unpack(mem.read_block(0), verify=False).layout()
        try:
            JournalManager.recover(dev, layout)
        except KernelBug:
            pass
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        outcome, detail = self._remount_verdict(mem, reference)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    def _run_mkfs(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        mem = MemoryBlockDevice(block_count=case.block_count, track_durability=True)
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, case.crash_kind)
        try:
            mkfs(dev, journal_blocks=case.journal_blocks)
        except KernelBug:
            pass
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        # A torn format has nothing to recover *from*; the contract is
        # that re-running mkfs fully supersedes the partial image.
        mkfs(mem, journal_blocks=case.journal_blocks)
        outcome, detail = self._remount_verdict(mem, None)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    def _run_inode_repair(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        image = self._clean_image(case)
        reference = self._image_state(
            ("clean", case.profile, case.workload_seed, case.nops), image
        )
        mem = self._device_from(image)
        sb = Superblock.unpack(mem.read_block(0), verify=False)
        layout = sb.layout()
        inode = read_inode(mem, layout, sb.root_ino)
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, case.crash_kind)
        try:
            write_inode(dev, layout, sb.root_ino, inode)
        except KernelBug:
            pass
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        # The repair tool's contract is idempotency: re-running the
        # interrupted write must land the full inode.
        write_inode(mem, layout, sb.root_ino, inode)
        outcome, detail = self._remount_verdict(mem, reference)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    def _run_image_clone(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        image = self._clean_image(case)
        reference = self._image_state(
            ("clean", case.profile, case.workload_seed, case.nops), image
        )
        src = self._device_from(image)
        hooks = HookPoints()
        dev = SweepDevice(src, hooks)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, case.crash_kind)
        try:
            clone_to_memory(dev)
        except KernelBug:
            pass
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        if src.snapshot() != image:
            return self._result(
                case, OUTCOME_DIVERGED, fired=True,
                detail="interrupted clone mutated its source image",
            )
        clone = clone_to_memory(src)
        outcome, detail = self._remount_verdict(clone, reference)
        return self._result(case, outcome, fired=True, detail=detail, image=src.snapshot())

    def _run_fault_injection(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        image = self._clean_image(case)
        reference = self._image_state(
            ("clean", case.profile, case.workload_seed, case.nops), image
        )
        mem = self._device_from(image)
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        # The swept point is the sticky-flip write-through: damage being
        # persisted to an *unallocated* scratch block, so the crash —
        # not the planned corruption — is what the verdict judges.
        scratch = mem.block_count - 1
        plan = DeviceFaultPlan()
        plan.add_flip(block=scratch, offset=0, xor_byte=0xFF, times=1, sticky=True)
        faulty = FaultyBlockDevice(dev, plan)
        injector = Injector(hooks, seed=case.injector_seed)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, case.crash_kind)
        try:
            faulty.read_block(scratch)
        except KernelBug:
            pass
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        outcome, detail = self._remount_verdict(mem, reference)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    def _run_cache_sync(self, case: SweepCase, ops: list[FsOp] | None) -> SweepRunResult:
        image = self._clean_image(case)
        reference = self._image_state(
            ("clean", case.profile, case.workload_seed, case.nops), image
        )
        mem = self._device_from(image)
        hooks = HookPoints()
        dev = SweepDevice(mem, hooks)
        cache = BufferCache(dev, capacity=16)
        # Dirty a few unallocated tail blocks: sync's durability contract
        # without perturbing the filesystem's logical state.
        scratch = [mem.block_count - 2 - index for index in range(4)]
        payloads = {
            block: bytes([index + 1]) * mem.block_size
            for index, block in enumerate(scratch)
        }
        for block in scratch:
            cache.write(block, payloads[block])
        injector = Injector(hooks, seed=case.injector_seed)
        injector.arm(_crash_spec(case.ref))
        dev.arm_point(case.point, case.crash_kind)
        crashed = False
        try:
            cache.sync()
        except KernelBug:
            crashed = True
        finally:
            dev.disarm_point()
        if injector.stats.total_fires == 0:
            return self._result(case, OUTCOME_UNREACHED, fired=False)
        if crashed and case.crash_kind == FAIL_STOP:
            # Fail-stop keeps the machine (and the cache) alive: a retry
            # must land every block that was dirty at crash time.
            cache.sync()
            for block in scratch:
                if mem.read_block(block) != payloads[block]:
                    return self._result(
                        case, OUTCOME_DIVERGED, fired=True,
                        detail=f"block {block} not durable after re-sync",
                    )
        outcome, detail = self._remount_verdict(mem, reference)
        return self._result(case, outcome, fired=True, detail=detail, image=mem.snapshot())

    # ------------------------------------------------------------------
    # minimization + reproducers

    def _minimize(self, case: SweepCase, failing: SweepRunResult) -> SweepRunResult:
        """Shrink the failing workload; returns the result annotated with
        the minimized sequence and a reproducer bundle."""
        ops = self._workload_ops(case)
        target = failing.outcome

        def still_fails(candidate: list[FsOp]) -> bool:
            return self.run_case(case, ops=candidate).outcome == target

        minimized, tests = ddmin(ops, still_fails, max_tests=self.config.minimize_max_tests)
        failing.minimized_ops = [op.describe() for op in minimized]
        failing.bundle = self._reproducer_bundle(case, failing, minimized, tests)
        return failing

    def _reproducer_bundle(
        self,
        case: SweepCase,
        result: SweepRunResult,
        minimized: list[FsOp] | None,
        minimize_tests: int = 0,
    ) -> dict:
        """A PR 5 forensic bundle for a failing sweep tuple.  When the
        supervised run produced its own recovery bundle, extend it; the
        ``sweep`` section always records the exact replay parameters."""
        base = result.bundle
        if base is None:
            base = build_bundle(
                outcome="failure",
                trigger={
                    "kind": "sweep-crash",
                    "op": case.op,
                    "ref": case.ref,
                    "crash_kind": case.crash_kind,
                },
                window={
                    "entries": len(minimized) if minimized is not None else case.nops,
                    "inflight": None,
                },
                flight=None,
                phases={"total": 0.0},
                replay=None,
                crosschecks=CrossCheckCapture().as_dict(),
                events=[],
                failure={"phase": "sweep", "message": result.detail},
            )
        bundle = dict(base)
        bundle["sweep"] = {
            "params": case.params(),
            "outcome": result.outcome,
            "detail": result.detail,
            "minimized_ops": [op.describe() for op in minimized] if minimized is not None else None,
            "minimize_tests": minimize_tests,
        }
        return bundle

    # ------------------------------------------------------------------
    # the full sweep

    def run(self, cases: list[SweepCase] | None = None) -> SweepReport:
        if cases is None:
            cases = self.build_cases(self.load_pairs())
        report = SweepReport()
        by_pair: dict[tuple[str, str, str], list[SweepRunResult]] = {}
        for case in cases:
            result = self.run_case(case)
            if (
                self.config.minimize
                and result.fired
                and result.outcome in (OUTCOME_DIVERGED, OUTCOME_FAILED)
                and case.op in _MINIMIZABLE_OPS
                and case.crash_kind == FAIL_STOP
            ):
                result = self._minimize(case, result)
            elif result.outcome in (OUTCOME_DIVERGED, OUTCOME_FAILED):
                result.bundle = self._reproducer_bundle(case, result, None)
            if result.bundle is not None and result.outcome in (OUTCOME_DIVERGED, OUTCOME_FAILED):
                report.reproducers.append(result.bundle)
            result.image = None  # aggregate reports don't carry images
            report.results.append(result)
            by_pair.setdefault((case.op, case.ref, case.crash_kind), []).append(result)

        for key, runs in by_pair.items():
            fired = [run for run in runs if run.fired]
            if not fired:
                report.pair_outcomes[key] = OUTCOME_UNREACHED
                continue
            worst = min(fired, key=lambda run: _SEVERITY.index(run.outcome))
            report.pair_outcomes[key] = worst.outcome

        for key, outcome in sorted(report.pair_outcomes.items()):
            if outcome == OUTCOME_CLEAN:
                continue
            op, ref, crash_kind = key
            if sanction_for(op, ref, crash_kind) is None:
                detail = next(
                    (run.detail for run in by_pair.get(key, []) if run.outcome == outcome and run.detail),
                    "",
                )
                report.unsanctioned.append((key, outcome, detail))
        report.stale_sanctions = validate_sanctions(report.pair_outcomes, OUTCOME_CLEAN)
        return report


_SCENARIOS = {
    "commit": SweepEngine._run_supervised,
    "unmount": SweepEngine._run_supervised,
    "mount": SweepEngine._run_mount,
    "journal-recover": SweepEngine._run_journal_recover,
    "mkfs": SweepEngine._run_mkfs,
    "inode-repair": SweepEngine._run_inode_repair,
    "image-clone": SweepEngine._run_image_clone,
    "fault-injection": SweepEngine._run_fault_injection,
    "cache-sync": SweepEngine._run_cache_sync,
}
