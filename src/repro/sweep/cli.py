"""``rae-sweep`` — run the crash-point sweep from the command line.

Exit codes follow the repo's lint/gate convention:

* ``0`` — every swept tuple recovered clean or is sanctioned;
* ``1`` — unsanctioned non-clean outcomes (bugs to triage);
* ``2`` — the work-list itself is broken: the committed crash surface
  drifted from the tree, or the sanctions table has stale entries.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sweep.device import CRASH_KINDS
from repro.sweep.engine import PROFILES, SweepConfig, SweepEngine
from repro.sweep.suites import (
    case_groups,
    format_report,
    format_result_line,
    name_cases,
    select_cases,
)
from repro.sweep.surface import SurfaceError


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rae-sweep",
        description="Execute every (op, persistence-point, crash-kind) tuple "
        "of the committed crash surface and classify recovery outcomes.",
    )
    parser.add_argument("--surface", default="crashpoints.json",
                        help="committed crash-surface catalog (default: %(default)s)")
    parser.add_argument("--src-root", default="src/repro",
                        help="tree to re-emit the surface from for the drift check")
    parser.add_argument("--no-drift-check", action="store_true",
                        help="skip re-emitting the surface (trust the committed copy)")
    parser.add_argument("--seed", type=int, default=0,
                        help="single sweep seed; all per-case seeds derive from it")
    parser.add_argument("--ops", nargs="*", default=None, metavar="OP",
                        help="only sweep these crash-entry ops")
    parser.add_argument("--refs", nargs="*", default=None, metavar="PATH:LINE",
                        help="only sweep these persistence points")
    parser.add_argument("--kinds", nargs="*", default=None, choices=CRASH_KINDS,
                        metavar="KIND", help="crash kinds (default: both)")
    parser.add_argument("--profiles", nargs="*", default=None,
                        choices=sorted(PROFILES), metavar="PROFILE",
                        help="workload profiles for workload-driven ops")
    parser.add_argument("--groups", "-g", nargs="*", default=None, metavar="GROUP",
                        help="fstests-style group selection (op, kind, profile, auto)")
    parser.add_argument("--nops", type=int, default=20,
                        help="workload length per case (default: %(default)s)")
    parser.add_argument("--block-count", type=int, default=1024)
    parser.add_argument("--journal-blocks", type=int, default=16)
    parser.add_argument("--max-cases", type=int, default=None,
                        help="cap the number of cases (smoke runs)")
    parser.add_argument("--smoke", action="store_true",
                        help="bounded sweep for CI: short workloads, one "
                        "profile, capped case count")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip delta-minimization of failing cases")
    parser.add_argument("--bundle-dir", default=None,
                        help="write reproducer bundles for failing tuples here")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of the listing")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list the case work-list without running it")
    return parser


def _config(args: argparse.Namespace) -> SweepConfig:
    profiles = tuple(args.profiles) if args.profiles else ("fileserver", "varmail")
    nops = args.nops
    max_cases = args.max_cases
    if args.smoke:
        profiles = profiles[:1]
        nops = min(nops, 10)
        if max_cases is None:
            max_cases = 24
    return SweepConfig(
        surface_path=args.surface,
        src_root=args.src_root,
        check_drift=not args.no_drift_check,
        seed=args.seed,
        profiles=profiles,
        nops=nops,
        block_count=args.block_count,
        journal_blocks=args.journal_blocks,
        crash_kinds=tuple(args.kinds) if args.kinds else CRASH_KINDS,
        ops=tuple(args.ops) if args.ops else None,
        refs=tuple(args.refs) if args.refs else None,
        max_cases=max_cases,
        minimize=not args.no_minimize,
        bundle_dir=args.bundle_dir,
    )


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    engine = SweepEngine(_config(args))
    try:
        pairs = engine.load_pairs()
    except SurfaceError as exc:
        print(f"rae-sweep: {exc}", file=sys.stderr)
        return 2
    cases = engine.build_cases(pairs)
    named = select_cases(name_cases(cases), tuple(args.groups) if args.groups else None)

    if args.list_only:
        for name, case in named:
            print(f"{name:<28} {case.ident()}  groups={','.join(case_groups(case))}")
        print(f"{len(named)} cases over {len(pairs)} (op, point) pairs")
        return 0

    report = engine.run(cases=[case for _, case in named])

    if args.bundle_dir and report.reproducers:
        from repro.obs import write_bundle

        for bundle in report.reproducers:
            path = write_bundle(bundle, args.bundle_dir)
            print(f"rae-sweep: wrote reproducer bundle {path}", file=sys.stderr)

    if args.json:
        print(json.dumps({
            "pair_outcomes": {
                "|".join(key): outcome
                for key, outcome in sorted(report.pair_outcomes.items())
            },
            "counts": report.outcome_counts(),
            "unsanctioned": [
                {"op": key[0], "ref": key[1], "crash_kind": key[2],
                 "outcome": outcome, "detail": detail}
                for key, outcome, detail in report.unsanctioned
            ],
            "stale_sanctions": [list(key) for key in report.stale_sanctions],
            "reproducers": len(report.reproducers),
        }, indent=2, sort_keys=True))
    else:
        named_results = list(zip((name for name, _ in named), report.results))
        print(format_report(named_results, report))

    if report.stale_sanctions:
        return 2
    if report.unsanctioned:
        return 1
    return 0
