"""Argued sanctions for sweep outcomes that are benign by design.

The sweep's contract is *zero unsanctioned non-clean outcomes*: every
(op, point, crash-kind) tuple that does not come back recovered-clean
is either a bug (fix it, add a regression test) or gets an entry here
with an argument a reviewer can check.  The table mirrors
``PERSIST_SANCTIONS`` in :mod:`repro.spec.persistence`: a pure literal
dict, and entries that no longer match any non-clean result are *stale*
and fail the sweep with exit 2 — the table may only shrink as the code
improves, never silently rot.

Keys are ``(op, ref, crash_kind)``; ``crash_kind`` may be the wildcard
``"*"`` when the argument is independent of how the crash is delivered.
"""

from __future__ import annotations

_WILDCARD = "*"

#: (op, "path:line", crash-kind) -> why the non-clean outcome is correct.
SWEEP_SANCTIONS: dict[tuple[str, str, str], str] = {
    ("commit", "blockdev/blkmq.py:222", _WILDCARD): (
        "unreached: commit's barrier is device.flush() called directly after "
        "drain+reap; no crash-entry op submits flush *requests* through blk-mq, "
        "so the dispatch flush branch is dynamically dead on every commit path. "
        "The static surface keeps the point because submit_flush is public API."
    ),
    ("unmount", "blockdev/blkmq.py:222", _WILDCARD): (
        "unreached: unmount reaches this point only through commit, and commit "
        "never submits flush requests through blk-mq (see the commit sanction)."
    ),
    ("commit", "basefs/filesystem.py:687", _WILDCARD): (
        "unreached: this is the ordered-data *submission* site — "
        "blkmq.submit_write only enqueues; no device call happens while the "
        "line is live, so there is no distinct durable state to crash into. "
        "The deferred device effect is swept as blockdev/blkmq.py:219 (the "
        "dispatch write), which covers the same data-write persistence."
    ),
    ("unmount", "basefs/filesystem.py:687", _WILDCARD): (
        "unreached: same submission-only site as the commit sanction — "
        "unmount reaches it through commit's ordered-data phase."
    ),
}


def sanction_for(op: str, ref: str, crash_kind: str) -> str | None:
    """The sanction text covering this tuple, or None."""
    exact = SWEEP_SANCTIONS.get((op, ref, crash_kind))
    if exact is not None:
        return exact
    return SWEEP_SANCTIONS.get((op, ref, _WILDCARD))


def validate_sanctions(
    pair_outcomes: dict[tuple[str, str, str], str],
    clean_outcome: str,
) -> list[tuple[str, str, str]]:
    """Stale sanction keys: entries matching no non-clean result.

    ``pair_outcomes`` maps (op, ref, crash_kind) to the aggregated
    outcome.  A sanction is live iff at least one swept tuple it covers
    came back non-clean.  Partial sweeps (filters, smoke caps) must not
    report staleness for tuples they never ran, so keys whose (op, ref)
    never appears in ``pair_outcomes`` are ignored, not stale.
    """
    stale: list[tuple[str, str, str]] = []
    for key in SWEEP_SANCTIONS:
        op, ref, kind = key
        covered = [
            outcome
            for (r_op, r_ref, r_kind), outcome in pair_outcomes.items()
            if r_op == op and r_ref == ref and (kind == _WILDCARD or kind == r_kind)
        ]
        if not covered:
            continue  # not swept this run; can't judge
        if all(outcome == clean_outcome for outcome in covered):
            stale.append(key)
    return stale
