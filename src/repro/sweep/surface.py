"""Loading the committed crash surface as the sweep work-list.

The sweep never invents its own enumeration: it consumes the
``crashpoints.json`` catalog PR 7's static analysis emitted (ROADMAP
item 3), so the executable sweep and the static surface can never
disagree silently.  :func:`load_surface` therefore *re-emits* the
catalog from the source tree and fails with :class:`SurfaceError` —
which ``rae-sweep`` maps to exit 2 — when the committed copy has
drifted, mirroring the CI drift gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.persistence.surface import validate_crash_surface


class SurfaceError(Exception):
    """Catalog missing, malformed, or drifted — ``rae-sweep`` exit 2."""


@dataclass(frozen=True)
class SweepPoint:
    """One (crash-entry op, persistence point) pair of the work-list."""

    op: str          # crash-entry op name ("commit", "mount", ...)
    ref: str         # "path:line" witness of the device call
    kind: str        # persistence kind ("commit-record", "barrier", ...)
    path: str        # repo-relative path inside the analyzed tree
    line: int
    entry: str       # entry function qualname ("BaseFilesystem.commit")
    entry_path: str  # path of the module defining the entry


def emit_fresh_surface(src_root: str | Path) -> str:
    """Re-run the static analysis and render a fresh catalog."""
    from repro.analysis.engine import Analyzer
    from repro.analysis.persistence import model_for
    from repro.analysis.persistence.surface import (
        build_crash_surface,
        render_crash_surface,
    )

    analyzer = Analyzer(Path(src_root))
    modules, parse_errors = analyzer.parse_all()
    if parse_errors:
        raise SurfaceError(
            "cannot re-emit crash surface: "
            + "; ".join(f.render() for f in parse_errors)
        )
    model = model_for(modules)
    if model is None:
        raise SurfaceError(f"no spec/persistence.py under {src_root}")
    payload = build_crash_surface(model)
    validate_crash_surface(payload)
    return render_crash_surface(payload)


def load_surface(
    path: str | Path,
    src_root: str | Path | None = None,
    check_drift: bool = True,
) -> dict:
    """Load and validate the committed catalog.

    With ``check_drift`` (and a ``src_root``), the catalog is re-emitted
    from the tree and compared byte-for-byte; any difference raises
    :class:`SurfaceError` — a sweep over a stale work-list would report
    coverage for points that no longer exist.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SurfaceError(f"cannot read crash surface {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise SurfaceError(f"crash surface {path} is not valid JSON: {exc}") from exc
    try:
        validate_crash_surface(payload)
    except ValueError as exc:
        raise SurfaceError(f"crash surface {path} is malformed: {exc}") from exc
    if check_drift and src_root is not None:
        fresh = emit_fresh_surface(src_root)
        if fresh != text:
            raise SurfaceError(
                f"crash surface {path} has drifted from the source tree; "
                "regenerate it with `make crash-surface` before sweeping"
            )
    return payload


def iter_pairs(payload: dict) -> list[SweepPoint]:
    """Every (op, point) pair of the catalog, in deterministic order."""
    pairs: list[SweepPoint] = []
    for op in sorted(payload["ops"]):
        body = payload["ops"][op]
        for point in body["points"]:
            path, _, line = point["ref"].rpartition(":")
            pairs.append(SweepPoint(
                op=op,
                ref=point["ref"],
                kind=point["kind"],
                path=path,
                line=int(line),
                entry=body["entry"],
                entry_path=body["entry_path"],
            ))
    return pairs
