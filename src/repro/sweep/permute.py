"""Permutation cross-check harness: dynamic validation of the replay
matrix.

The committed ``replaymatrix.json`` (``raelint --emit-replay-matrix``)
is a *static* claim: ops whose footprints do not collide may replay in
either order.  This harness is the dynamic side of that argument — the
same record/replay machinery the supervisor uses, pointed at permuted
orders:

1. :func:`record_workload` runs an operation sequence on a fresh base
   filesystem over a formatted in-memory device (kept un-committed, so
   the image stays at S0) and records every mutation into an oplog;
2. :func:`replay_order` replays the records — in log order or any
   permutation — on a fresh :class:`ShadowFilesystem` over the S0 image
   in strict constrained mode, and snapshots the resulting logical
   state through the public API;
3. :func:`permutation_diverges` compares a permuted replay against the
   log-order replay: a cross-check mismatch, a recovery failure, a
   state divergence (``compare_ino_numbers=True`` — constrained
   replay's ino pinning makes inode numbers order-independent), or a
   descriptor-table difference is a divergence.

The test suite uses this to hold the matrix to its word in both
directions: pairs the matrix marks ``conflict`` must actually diverge
under permutation (seeded-conflict cases prove the harness *can* see a
wrong commute verdict), and pairs it sanctions — ``commute``, or
``conditional-on-disjoint-subtree`` exercised with disjoint subtrees —
must permute green.

Two shadows over the same S0 image are independent: the shadow never
writes the device (write-fenced; SHADOW-PURITY/SHADOW-REACH), so each
replay sees pristine base state through its own overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.basefs.filesystem import BaseFilesystem
from repro.blockdev.device import MemoryBlockDevice
from repro.core.oplog import OpLog, OpRecord
from repro.errors import CrossCheckMismatch, RecoveryFailure
from repro.ondisk.image import clone_to_memory
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.replay import ReplayEngine
from repro.spec.equivalence import FsState, capture_state, states_equivalent


def record_workload(
    operations, block_count: int = 4096
) -> tuple[list[OpRecord], MemoryBlockDevice]:
    """Run ``operations`` on a fresh base over a formatted device and
    return ``(records, image_s0)``.

    The base is never committed, so ``image_s0`` is the pristine post-
    mkfs image every replay starts from — exactly the supervisor's
    record/recover geometry.  Non-mutations execute (they can move fd
    cursors the *base* sees) but are not recorded, mirroring the oplog's
    own discipline.
    """
    device = MemoryBlockDevice(block_count=block_count)
    mkfs(device)
    image_s0 = clone_to_memory(device)
    base = BaseFilesystem(device)
    log = OpLog()
    for index, operation in enumerate(operations):
        outcome = operation.apply(base, opseq=index + 1)
        if operation.is_mutation:
            log.record(index + 1, operation, outcome)
    return list(log.entries), image_s0


@dataclass
class ReplayResult:
    """One replay attempt: either an error string or a state snapshot."""

    error: str | None
    state: FsState | None
    fd_table: dict[int, tuple[int, int]] | None  # fd -> (ino, offset)


def replay_order(
    records: list[OpRecord],
    image_s0: MemoryBlockDevice,
    order: list[int] | None = None,
) -> ReplayResult:
    """Replay ``records`` (permuted by ``order``, a list of indices) on
    a fresh shadow over ``image_s0`` in strict constrained mode."""
    ordered = records if order is None else [records[i] for i in order]
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow, strict=True)
    try:
        update = engine.run(ordered, {}, None)
    except (CrossCheckMismatch, RecoveryFailure) as error:
        return ReplayResult(
            error=f"{type(error).__name__}: {error}", state=None, fd_table=None
        )
    fd_table = {
        fd: (state.ino, state.offset) for fd, state in update.fd_table.items()
    }
    return ReplayResult(error=None, state=capture_state(shadow), fd_table=fd_table)


def swapped_tail_order(count: int) -> list[int]:
    """Log order with the last two records swapped — the canonical probe
    for a pair appended to a setup prefix."""
    if count < 2:
        raise ValueError("need at least two records to swap")
    return [*range(count - 2), count - 1, count - 2]


def permutation_diverges(
    records: list[OpRecord],
    image_s0: MemoryBlockDevice,
    order: list[int],
) -> list[str]:
    """Divergences between replaying ``records`` in ``order`` and in log
    order; an empty list means the permutation is observationally safe.

    The log-order replay is the ground truth the supervisor relies on,
    so it must be clean; a dirty baseline is a bad workload, not a
    commutativity fact, and raises.
    """
    if sorted(order) != list(range(len(records))):
        raise ValueError(f"order {order!r} is not a permutation of the records")
    baseline = replay_order(records, image_s0)
    if baseline.error is not None:
        raise ValueError(f"log-order replay must be clean: {baseline.error}")
    permuted = replay_order(records, image_s0, order)
    if permuted.error is not None:
        return [permuted.error]
    problems = list(
        states_equivalent(
            baseline.state, permuted.state, compare_ino_numbers=True
        ).problems
    )
    if baseline.fd_table != permuted.fd_table:
        problems.append(
            f"fd table diverged: {baseline.fd_table} vs {permuted.fd_table}"
        )
    return problems


def matrix_verdict(payload: dict, a: str, b: str) -> str:
    """The matrix's verdict for the unordered op pair ``{a, b}``."""
    key = "|".join(sorted((a, b)))
    return payload["pairs"][key]["verdict"]
