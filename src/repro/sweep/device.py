"""The sweep's crash trigger: a device wrapper keyed to ``file:line``.

The static catalog names persistence points as device-call sites
(``ondisk/journal.py:181`` and so on).  To crash *exactly there*,
:class:`SweepDevice` wraps the scenario's real device and, on every
read/write/flush, checks whether the armed point's call site is the
direct caller **and** the armed op's entry function is on the stack
(``commit`` points must not fire during ``unmount``'s inner commit run
and vice versa — each (op, point) tuple is its own run).  On a match it
fires the ordinary ``blkmq.submit`` fault hook with a ``persist_ref``
context key; the crash itself is delivered by a :class:`BugSpec` armed
through the existing :class:`~repro.faults.injector.Injector`, so the
sweep exercises the same detection/recovery machinery as every curated
catalog bug.

Two crash kinds:

* ``fail-stop`` — the device call completes, then the hook fires (a
  kernel bug after the IO; the volatile image survives, testing the
  RAE runtime-error recovery story);
* ``power-loss`` — the hook fires *before* the call and, when the
  armed bug raises, the inner device's ``crash()`` discards every
  unflushed write (testing the journal's crash-consistency story).
"""

from __future__ import annotations

import sys

from repro.blockdev.device import BlockDevice
from repro.errors import KernelBug
from repro.sweep.surface import SweepPoint

FAIL_STOP = "fail-stop"
POWER_LOSS = "power-loss"
CRASH_KINDS = (FAIL_STOP, POWER_LOSS)


class SweepDevice(BlockDevice):
    """Wrap ``inner``, firing the fault hook at the armed crash point."""

    def __init__(self, inner: BlockDevice, hooks):
        super().__init__(inner.block_size, inner.block_count)
        self.inner = inner
        self.hooks = hooks
        self.point: SweepPoint | None = None
        self.crash_kind: str = FAIL_STOP
        self.matches = 0  # site matches seen (fired or not)

    def arm_point(self, point: SweepPoint, crash_kind: str = FAIL_STOP) -> None:
        if crash_kind not in CRASH_KINDS:
            raise ValueError(f"unknown crash kind {crash_kind!r}")
        self.point = point
        self.crash_kind = crash_kind

    def disarm_point(self) -> None:
        self.point = None

    # ------------------------------------------------------------------
    # stack matching

    def _matched(self) -> bool:
        """True when the armed point's call site is live on the stack
        and the armed op's entry function is somewhere above it.

        Usually the catalog's witness line is the direct device call
        (frame 2), but some persistence sites delegate — e.g. the
        journal manager's home writes go ``cache.writeback(block)`` →
        ``device.write_block``, so the site's frame sits one level up,
        parked exactly on the catalog line.  Walking the stack covers
        both shapes; pure submission sites whose device effect is
        deferred past the site's lifetime (blk-mq enqueues drained
        later) cannot match and carry sanctions instead.
        """
        point = self.point
        if point is None:
            return False
        # Frame 0 = _matched, 1 = our read/write/flush, 2 = the caller.
        site = sys._getframe(2)
        while site is not None:
            if site.f_lineno == point.line and site.f_code.co_filename.endswith(point.path):
                break
            site = site.f_back
        if site is None:
            return False
        entry_name = point.entry.rpartition(".")[2]
        frame = site
        while frame is not None:
            code = frame.f_code
            if code.co_name == entry_name and code.co_filename.endswith(point.entry_path):
                self.matches += 1
                return True
            frame = frame.f_back
        return False

    def _fire(self, block: int) -> None:
        assert self.point is not None
        self.hooks.fire("blkmq.submit", op="sweep", block=block, persist_ref=self.point.ref)

    def _fire_power_loss(self, block: int) -> None:
        try:
            self._fire(block)
        except KernelBug:
            # The write/flush never happened AND volatile state is gone:
            # drop the inner device to its last durable image before the
            # failure propagates, so recovery sees what a real power
            # loss would leave on the platter.
            crash = getattr(self.inner, "crash", None)
            if crash is not None:
                crash()
            raise

    # ------------------------------------------------------------------
    # BlockDevice

    def read_block(self, block: int) -> bytes:
        armed = self.point is not None and self._matched()
        if armed and self.crash_kind == POWER_LOSS:
            self._fire_power_loss(block)
        data = self.inner.read_block(block)
        self.io_stats.reads += 1
        if armed and self.crash_kind == FAIL_STOP:
            self._fire(block)
        return data

    def write_block(self, block: int, data: bytes) -> None:
        armed = self.point is not None and self._matched()
        if armed and self.crash_kind == POWER_LOSS:
            self._fire_power_loss(block)
        self.inner.write_block(block, data)
        self.io_stats.writes += 1
        if armed and self.crash_kind == FAIL_STOP:
            self._fire(block)

    def flush(self) -> None:
        armed = self.point is not None and self._matched()
        if armed and self.crash_kind == POWER_LOSS:
            self._fire_power_loss(-1)
        self.inner.flush()
        self.io_stats.flushes += 1
        if armed and self.crash_kind == FAIL_STOP:
            self._fire(-1)

    def close(self) -> None:
        self.inner.close()
