"""Small shared utilities: checksums, logical time, deterministic RNG,
crash-safe JSON writes.

Nothing here depends on any other repro module.
"""

from __future__ import annotations

import json
import os
import random
import zlib
from pathlib import Path


def checksum32(data: bytes) -> int:
    """32-bit checksum used by on-disk structures (CRC-32 via zlib).

    The real ext4 uses crc32c; plain crc32 has the same role here — detect
    silent corruption of metadata blocks — and is available without C
    extensions.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


class LogicalClock:
    """A monotonically increasing integer clock.

    Filesystem timestamps in the reproduction are logical, not wall-clock:
    determinism is what makes the base/shadow equivalence checks exact.
    The clock ticks once per stamp by default.
    """

    def __init__(self, start: int = 1):
        self._now = start

    def now(self) -> int:
        """Return the current time without advancing."""
        return self._now

    def tick(self) -> int:
        """Advance the clock and return the new time."""
        self._now += 1
        return self._now


def atomic_write_json(path: str | Path, payload, *, sort_keys: bool = True) -> str:
    """Write ``payload`` as indented JSON to ``path`` atomically.

    The payload is serialized *before* the target is touched, staged in a
    sibling ``.tmp`` file, and :func:`os.replace`d into place — so a crash,
    a full disk, or an unserializable payload can never truncate an
    existing file: readers see either the previous complete file or the
    new one.  The temp file is removed on any failure.

    Every committed JSON artifact in the repo (the raelint baseline,
    ``crashpoints.json``, ``replaymatrix.json``, ``BENCH_obs.json``,
    forensic bundles) goes through here; ``sort_keys=False`` is for
    payloads that carry their own canonical ordering.
    """
    text = json.dumps(payload, indent=2, sort_keys=sort_keys) + "\n"
    target = str(path)
    tmp = f"{target}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(text)
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return target


def make_rng(seed: int) -> random.Random:
    """A seeded ``random.Random`` — the only RNG source in the repo.

    Workload generators and fault schedules all derive from explicit seeds
    so that every experiment is replayable.
    """
    return random.Random(seed)
