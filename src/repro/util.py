"""Small shared utilities: checksums, logical time, deterministic RNG.

Nothing here depends on any other repro module.
"""

from __future__ import annotations

import random
import zlib


def checksum32(data: bytes) -> int:
    """32-bit checksum used by on-disk structures (CRC-32 via zlib).

    The real ext4 uses crc32c; plain crc32 has the same role here — detect
    silent corruption of metadata blocks — and is available without C
    extensions.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


class LogicalClock:
    """A monotonically increasing integer clock.

    Filesystem timestamps in the reproduction are logical, not wall-clock:
    determinism is what makes the base/shadow equivalence checks exact.
    The clock ticks once per stamp by default.
    """

    def __init__(self, start: int = 1):
        self._now = start

    def now(self) -> int:
        """Return the current time without advancing."""
        return self._now

    def tick(self) -> int:
        """Advance the clock and return the new time."""
        self._now += 1
        return self._now


def make_rng(seed: int) -> random.Random:
    """A seeded ``random.Random`` — the only RNG source in the repo.

    Workload generators and fault schedules all derive from explicit seeds
    so that every experiment is replayable.
    """
    return random.Random(seed)
