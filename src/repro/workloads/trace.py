"""Operation-trace serialization.

§4.3 casts the shadow as "a valuable post-error testing tool" because
"the sequence and outputs are recorded (input to the shadow)".  That
only works if sequences can leave the process: this module serializes
:class:`~repro.api.FsOp` streams (and optionally their outcomes) to
JSON-lines, so a failing sequence can be captured on one machine and
replayed against a shadow — or any implementation — on another.

Format: one JSON object per line::

    {"seq": 12, "op": "write", "args": {"fd": 3, "data": "aGVsbG8="},
     "outcome": {"errno": null, "value": 5, "ino": null}}

Bytes are base64 (``data`` argument, bytes-valued outcomes); a
StatResult outcome becomes a dict tagged ``"stat"``.  ``outcome`` is
optional — plain workload traces omit it, recorded op logs include it.
"""

from __future__ import annotations

import base64
import json
from typing import Iterable, Iterator, TextIO

from repro.api import FsOp, OpResult, StatResult
from repro.errors import Errno
from repro.ondisk.inode import FileType


def _encode_value(value):
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, StatResult):
        return {
            "__stat__": {
                "ino": value.ino,
                "ftype": int(value.ftype),
                "size": value.size,
                "nlink": value.nlink,
                "perms": value.perms,
                "uid": value.uid,
                "gid": value.gid,
                "atime": value.atime,
                "mtime": value.mtime,
                "ctime": value.ctime,
            }
        }
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value):
    if isinstance(value, dict):
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__stat__" in value:
            fields = dict(value["__stat__"])
            fields["ftype"] = FileType(fields["ftype"])
            return StatResult(**fields)
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_record(op: FsOp, seq: int | None = None, outcome: OpResult | None = None) -> str:
    """One trace line for an operation (optionally with its outcome)."""
    record: dict = {"op": op.name, "args": {k: _encode_value(v) for k, v in op.args.items()}}
    if seq is not None:
        record["seq"] = seq
    if outcome is not None:
        record["outcome"] = {
            "errno": int(outcome.errno) if outcome.errno is not None else None,
            "value": _encode_value(outcome.value),
            "ino": outcome.ino,
        }
    return json.dumps(record, sort_keys=True)


def decode_record(line: str) -> tuple[int | None, FsOp, OpResult | None]:
    """Parse one trace line back into (seq, op, outcome)."""
    record = json.loads(line)
    op = FsOp(name=record["op"], args={k: _decode_value(v) for k, v in record["args"].items()})
    outcome = None
    if "outcome" in record and record["outcome"] is not None:
        raw = record["outcome"]
        outcome = OpResult(
            errno=Errno(raw["errno"]) if raw["errno"] is not None else None,
            value=_decode_value(raw["value"]),
            ino=raw["ino"],
        )
    return record.get("seq"), op, outcome


def dump_trace(records: Iterable, stream: TextIO) -> int:
    """Write a trace.  Accepts FsOp items, (seq, op) pairs, or objects
    with ``.seq``/``.op``/``.outcome`` (i.e. OpRecord).  Returns count."""
    count = 0
    for item in records:
        if isinstance(item, FsOp):
            line = encode_record(item)
        elif isinstance(item, tuple):
            seq, op = item
            line = encode_record(op, seq=seq)
        else:
            line = encode_record(item.op, seq=item.seq, outcome=item.outcome)
        stream.write(line + "\n")
        count += 1
    return count


def load_trace(stream: TextIO) -> Iterator[tuple[int | None, FsOp, OpResult | None]]:
    """Iterate the records of a trace stream."""
    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        yield decode_record(line)


def replay_trace(fs, stream: TextIO, start_seq: int = 1) -> list[tuple[int, OpResult, OpResult | None]]:
    """Replay a trace against any FilesystemAPI; returns
    ``(index, actual, recorded-or-None)`` for every op, so callers can
    diff actual vs recorded outcomes (the §4.3 discrepancy report).

    Recorded inode numbers are pinned via ``ino_hint`` (constrained-mode
    semantics) when the target implementation supports it, so allocation
    policy differences never register as discrepancies.
    """
    results = []
    for index, (seq, op, recorded) in enumerate(load_trace(stream)):
        opseq = seq if seq is not None else start_seq + index
        if (
            recorded is not None
            and recorded.ino is not None
            and op.name in ("mkdir", "symlink", "open")
            and hasattr(fs, "ino_hint")
        ):
            fs.ino_hint = recorded.ino
        actual = op.apply(fs, opseq=opseq)
        if hasattr(fs, "ino_hint"):
            fs.ino_hint = None
        results.append((index, actual, recorded))
    return results
