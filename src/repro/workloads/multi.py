"""Multi-client workload interleaving.

The base filesystem is "highly concurrent" in the paper's world; the
reproduction executes one operation at a time but can still model the
*interleaving* of independent clients — the access pattern that stresses
the lock manager, makes dentry/inode caches contend, and gives the
non-deterministic bug class realistic trigger schedules.

:class:`MultiClientWorkload` runs K generator streams in a seeded random
interleave.  Each client works under its own namespace root
(``/client<k>``) so streams never collide on names, and each believes it
owns fds — the interleaver maintains the mapping from per-client virtual
fds to the real shared fd numbers, exactly the translation an OS would
not need but a single shared fd table does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.api import FsOp, OpResult
from repro.util import make_rng
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import Profile


@dataclass
class _Client:
    index: int
    root: str
    generator: WorkloadGenerator
    stream: Iterator[FsOp] = None  # type: ignore[assignment]
    fd_map: dict[int, int] = field(default_factory=dict)  # virtual -> real
    pending: list[FsOp] = field(default_factory=list)
    ops_issued: int = 0


class MultiClientWorkload:
    """Interleave K clients' streams against one filesystem."""

    def __init__(self, fs, profile: Profile, clients: int = 4, seed: int = 0):
        if clients <= 0:
            raise ValueError("clients must be positive")
        self.fs = fs
        self.rng = make_rng(seed)
        self.clients: list[_Client] = []
        self.results: list[OpResult] = []
        self.runtime_failures = 0
        for index in range(clients):
            root = f"/client{index}"
            generator = WorkloadGenerator(profile, seed=seed * 1000 + index)
            client = _Client(index=index, root=root, generator=generator)
            client.pending = list(generator.prepopulate())
            client.stream = generator.stream()
            self.clients.append(client)

    # ------------------------------------------------------------------

    def _rewrite(self, client: _Client, op: FsOp) -> FsOp:
        """Prefix paths with the client root; translate virtual fds."""
        args = dict(op.args)
        for key in ("path", "src", "dst", "existing", "new"):
            if key in args:
                args[key] = client.root + args[key]
        if "target" in args and str(args["target"]).startswith("/"):
            args["target"] = client.root + args["target"]
        if "fd" in args:
            virtual = args["fd"]
            args["fd"] = client.fd_map.get(virtual, -1)
        return FsOp(name=op.name, args=args)

    def _next_op(self, client: _Client) -> FsOp:
        if client.pending:
            return client.pending.pop(0)
        return next(client.stream)

    def run(self, total_ops: int, stop_on_runtime_failure: bool = True) -> list[OpResult]:
        """Interleave until ``total_ops`` operations have been issued."""
        # Client roots first.
        for client in self.clients:
            self.fs.mkdir(client.root, opseq=client.index + 1)

        issued = 0
        while issued < total_ops:
            client = self.rng.choice(self.clients)
            raw = self._next_op(client)
            op = self._rewrite(client, raw)
            issued += 1
            client.ops_issued += 1
            try:
                result = op.apply(self.fs, opseq=1000 + issued)
            except Exception:  # raelint: disable=ERRNO-DISCIPLINE — availability boundary: any runtime failure counts as downtime
                self.runtime_failures += 1
                if stop_on_runtime_failure:
                    break
                continue
            self.results.append(result)
            if op.name == "open" and result.ok:
                client.fd_map[self._virtual_fd(raw, client)] = result.value
            if op.name == "close" and result.ok:
                victims = [v for v, real in client.fd_map.items() if real == op.args["fd"]]
                for v in victims:
                    del client.fd_map[v]
        return self.results

    @staticmethod
    def _virtual_fd(raw: FsOp, client: _Client) -> int:
        """The virtual fd the client's generator believes open() returned:
        its model allocates lowest-free >= 3 over its own fd_map."""
        fd = 3
        while fd in client.fd_map:
            fd += 1
        return fd

    @property
    def errno_count(self) -> int:
        return sum(1 for result in self.results if result.errno is not None)
