"""The simulated application.

§2.3: "The data pages are shared between the base and the shadow because
only applications can detect their corruption."  This module is that
application: it drives a workload against any
:class:`~repro.api.FilesystemAPI`, remembers exactly what it wrote, and
verifies what it reads — so after any recovery it can attest (or refute)
that its view was preserved.

Used by the availability benchmark (RAE vs crash-restart vs NVP), the
crafted-image example, and the recovery property tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api import FilesystemAPI, FsOp, OpenFlags
from repro.errors import FsError
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import Profile


@dataclass
class AppStats:
    ops_attempted: int = 0
    ops_completed: int = 0
    errnos: dict[str, int] = field(default_factory=dict)
    runtime_failures: int = 0  # exceptions that are NOT errnos: lost availability
    verify_checks: int = 0
    corruption_detected: int = 0
    elapsed_seconds: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of attempted operations that completed (ok or errno)."""
        if not self.ops_attempted:
            return 1.0
        failed = self.runtime_failures
        return (self.ops_attempted - failed) / self.ops_attempted


class SimulatedApplication:
    """Runs a profile's stream, tracking expected file contents.

    ``expected`` maps path -> bytearray of what the app believes the
    file holds; reads are verified against it.  The tracking is kept in
    sync only for the write patterns the generator emits (sequential
    writes through a fresh fd), which is sufficient to detect recovery
    losing or corrupting data.
    """

    def __init__(self, fs: FilesystemAPI, profile: Profile, seed: int = 0, verify_reads: bool = True):
        self.fs = fs
        self.generator = WorkloadGenerator(profile, seed=seed)
        self.verify_reads = verify_reads
        self.stats = AppStats()
        self.expected: dict[str, bytearray] = {}
        self._fd_paths: dict[int, str] = {}
        self._fd_offsets: dict[int, int] = {}

    def run(self, n_ops: int, stop_on_runtime_failure: bool = True) -> AppStats:
        operations = self.generator.ops(n_ops)
        start = time.perf_counter()
        for operation in operations:
            self.stats.ops_attempted += 1
            try:
                self._execute(operation)
                self.stats.ops_completed += 1
            except FsError as err:
                self.stats.errnos[err.errno.name] = self.stats.errnos.get(err.errno.name, 0) + 1
                self.stats.ops_completed += 1  # an errno is a completed op
            except Exception:  # raelint: disable=ERRNO-DISCIPLINE — availability boundary: any runtime failure counts as downtime
                self.stats.runtime_failures += 1
                if stop_on_runtime_failure:
                    break
        self.stats.elapsed_seconds += time.perf_counter() - start
        return self.stats

    # ------------------------------------------------------------------

    def _execute(self, operation: FsOp) -> None:
        name, args = operation.name, operation.args
        fs = self.fs
        if name == "open":
            fd = fs.open(args["path"], OpenFlags(args.get("flags", 0)), args.get("perms", 0o644))
            self._fd_paths[fd] = args["path"]
            flags = OpenFlags(args.get("flags", 0))
            self._fd_offsets[fd] = 0
            if flags & OpenFlags.CREAT and args["path"] not in self.expected:
                self.expected[args["path"]] = bytearray()
            if flags & OpenFlags.TRUNC:
                self.expected[args["path"]] = bytearray()
            return
        if name == "close":
            fs.close(args["fd"])
            self._fd_paths.pop(args["fd"], None)
            self._fd_offsets.pop(args["fd"], None)
            return
        if name == "write":
            fd = args["fd"]
            data = args["data"]
            n = fs.write(fd, data)
            path = self._fd_paths.get(fd)
            if path is not None and path in self.expected:
                content = self.expected[path]
                offset = len(content) if self._is_append(fd) else self._fd_offsets.get(fd, 0)
                if offset > len(content):
                    content.extend(b"\x00" * (offset - len(content)))
                content[offset : offset + n] = data[:n]
                self._fd_offsets[fd] = offset + n
            return
        if name == "read":
            fd = args["fd"]
            offset = self._fd_offsets.get(fd, 0)
            data = fs.read(fd, args["length"])
            path = self._fd_paths.get(fd)
            if self.verify_reads and path is not None and path in self.expected:
                self.stats.verify_checks += 1
                expected = bytes(self.expected[path][offset : offset + len(data)])
                if expected != data:
                    self.stats.corruption_detected += 1
            self._fd_offsets[fd] = offset + len(data)
            return
        if name == "truncate":
            fs.truncate(args["path"], args["size"])
            if args["path"] in self.expected:
                content = self.expected[args["path"]]
                size = args["size"]
                if size < len(content):
                    del content[size:]
                else:
                    content.extend(b"\x00" * (size - len(content)))
            return
        if name == "rename":
            fs.rename(args["src"], args["dst"])
            if args["src"] in self.expected:
                self.expected[args["dst"]] = self.expected.pop(args["src"])
            return
        if name == "unlink":
            fs.unlink(args["path"])
            self.expected.pop(args["path"], None)
            return
        if name == "lseek":
            new = fs.lseek(args["fd"], args["offset"], args.get("whence", 0))
            self._fd_offsets[args["fd"]] = new
            return
        # Everything else has no content-tracking implications.
        operation.apply(fs)

    def _is_append(self, fd: int) -> bool:
        try:
            return bool(self.fs.fd_table.get(fd).flags & OpenFlags.APPEND)  # type: ignore[attr-defined]
        except (AttributeError, FsError):  # RAEFilesystem has no fd_table; retry on the wrapped base
            try:
                return bool(self.fs.base.fd_table.get(fd).flags & OpenFlags.APPEND)  # type: ignore[attr-defined]
            except (AttributeError, FsError):
                return False

    def verify_all(self) -> int:
        """Re-read every tracked file and count mismatches."""
        mismatches = 0
        for path in sorted(self.expected):
            try:
                fd = self.fs.open(path)
            except FsError:
                mismatches += 1
                continue
            try:
                self.fs.lseek(fd, 0, 0)
                content = self.fs.read(fd, len(self.expected[path]) + 1)
            finally:
                self.fs.close(fd)
            self.stats.verify_checks += 1
            if bytes(content) != bytes(self.expected[path]):
                mismatches += 1
                self.stats.corruption_detected += 1
        return mismatches
