"""Workload profiles.

Each :class:`Profile` is a weighted operation mix plus shape parameters,
modelled on the classic filebench personalities the storage literature
benchmarks with.  Weights are relative; the generator normalizes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Profile:
    name: str
    weights: dict[str, float] = field(default_factory=dict)
    prepopulate_files: int = 0  # files created before the measured stream
    prepopulate_dirs: int = 4
    file_size_blocks: tuple[int, int] = (1, 4)  # min/max blocks per created file
    io_size: tuple[int, int] = (512, 8192)  # bytes per read/write
    append_only: bool = False
    max_open_fds: int = 16
    dir_fanout: int = 20  # max entries per directory before a new one opens

    def __post_init__(self):
        if not self.weights:
            raise ValueError("profile needs weights")
        for op_name, weight in self.weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {op_name}")


def fileserver_profile() -> Profile:
    """Mixed metadata + data, the filebench 'fileserver' personality."""
    return Profile(
        name="fileserver",
        weights={
            "create": 2.0,
            "write": 3.0,
            "read": 3.0,
            "open_close": 1.0,
            "unlink": 1.0,
            "stat": 2.0,
            "readdir": 0.5,
            "mkdir": 0.3,
            "rename": 0.3,
            "fsync": 0.2,
        },
        prepopulate_files=32,
        file_size_blocks=(1, 8),
        io_size=(1024, 16384),
    )


def varmail_profile() -> Profile:
    """Mail spool: small appends, fsync-heavy, short-lived files."""
    return Profile(
        name="varmail",
        weights={
            "create": 3.0,
            "write": 3.0,
            "fsync": 2.0,
            "read": 2.0,
            "unlink": 2.0,
            "stat": 1.0,
        },
        prepopulate_files=16,
        file_size_blocks=(1, 2),
        io_size=(256, 4096),
        append_only=True,
    )


def webserver_profile() -> Profile:
    """Read-mostly over a pre-populated tree, occasional log append."""
    return Profile(
        name="webserver",
        weights={
            "read": 8.0,
            "open_close": 2.0,
            "stat": 2.0,
            "readdir": 1.0,
            "write": 0.5,  # the access log
            "fsync": 0.1,
        },
        prepopulate_files=64,
        file_size_blocks=(1, 6),
        io_size=(2048, 16384),
    )


def churn_profile() -> Profile:
    """Create/unlink-heavy: short-lived files, allocator + dentry churn
    (the ``rae-bench`` create_unlink_heavy mix)."""
    return Profile(
        name="churn",
        weights={
            "create": 4.0,
            "unlink": 3.0,
            "mkdir": 1.0,
            "rmdir": 0.5,
            "stat": 1.0,
            "write": 0.5,
            "fsync": 0.3,
        },
        prepopulate_files=8,
        file_size_blocks=(0, 2),
        io_size=(256, 2048),
    )


def lookup_profile() -> Profile:
    """Lookup-heavy: stat/readdir/open over a pre-populated tree, the
    path-resolution and dentry-cache hot path (``rae-bench``
    lookup_heavy mix)."""
    return Profile(
        name="lookup",
        weights={
            "stat": 6.0,
            "readdir": 2.0,
            "open_close": 2.0,
            "read": 1.0,
        },
        prepopulate_files=48,
        file_size_blocks=(1, 2),
        io_size=(512, 2048),
    )


def metadata_profile() -> Profile:
    """Namespace churn: the dentry/inode-cache stress test."""
    return Profile(
        name="metadata",
        weights={
            "mkdir": 2.0,
            "create": 3.0,
            "rename": 2.0,
            "unlink": 2.0,
            "rmdir": 1.0,
            "stat": 3.0,
            "readdir": 1.0,
            "symlink": 0.5,
            "link": 0.5,
        },
        prepopulate_files=8,
        file_size_blocks=(0, 1),
        io_size=(256, 1024),
    )
