"""Workload generation.

Filebench-style profiles drive every performance experiment:

* :mod:`repro.workloads.profiles` — parameterized mixes: ``fileserver``
  (create/write/read/delete), ``varmail`` (small appends + heavy
  fsync), ``webserver`` (read-mostly over a pre-populated tree), and
  ``metadata`` (mkdir/rename/unlink churn);
* :mod:`repro.workloads.generator` — a seeded op-stream generator that
  models the namespace and descriptor table it is creating, so the
  stream is valid against any :class:`~repro.api.FilesystemAPI`
  implementation and *identical* across them (the differential tests
  depend on this);
* :mod:`repro.workloads.apps` — :class:`SimulatedApplication`, which
  executes a stream against a filesystem while tracking the content it
  believes it wrote, self-verifying on read — the paper's "only
  applications can detect their corruption" observer.
"""

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import (
    Profile,
    churn_profile,
    fileserver_profile,
    lookup_profile,
    metadata_profile,
    varmail_profile,
    webserver_profile,
)
from repro.workloads.apps import AppStats, SimulatedApplication

__all__ = [
    "Profile",
    "fileserver_profile",
    "varmail_profile",
    "webserver_profile",
    "metadata_profile",
    "churn_profile",
    "lookup_profile",
    "WorkloadGenerator",
    "SimulatedApplication",
    "AppStats",
]
