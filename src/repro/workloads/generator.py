"""The op-stream generator.

Produces a deterministic, seeded stream of :class:`~repro.api.FsOp`
drawn from a profile's weighted mix.  The generator maintains its own
model of the namespace and fd table it is building — directories,
files (with believed sizes), open descriptors and their offsets — so
that:

* emitted operations are valid (no ENOENT noise) against any conformant
  implementation, which keeps differential runs meaningful;
* fd numbers in emitted ops are correct by construction (it models the
  lowest-free-≥3 rule);
* the same seed yields byte-identical streams, making every experiment
  replayable.

The stream assumes operations succeed; run it on an adequately sized
device (``estimate_blocks`` helps pick one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.api import FsOp, OpenFlags, op
from repro.util import make_rng
from repro.workloads.profiles import Profile

_PAYLOAD = bytes(range(256)) * 64  # 16 KiB of patterned bytes to slice from


@dataclass
class _FileModel:
    path: str
    size: int = 0


@dataclass
class _FdModel:
    fd: int
    path: str
    offset: int = 0


class WorkloadGenerator:
    def __init__(self, profile: Profile, seed: int = 0):
        self.profile = profile
        self.rng = make_rng(seed)
        self._dirs: list[str] = ["/"]
        self._files: dict[str, _FileModel] = {}
        self._fds: dict[int, _FdModel] = {}
        self._name_counter = 0
        self._ops_emitted = 0

    # ------------------------------------------------------------------
    # model helpers

    def _fresh_name(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter:05d}"

    def _pick_dir(self) -> str:
        return self.rng.choice(self._dirs)

    def _pick_file(self) -> _FileModel | None:
        if not self._files:
            return None
        return self._files[self.rng.choice(sorted(self._files))]

    def _alloc_fd(self, path: str) -> _FdModel:
        fd = 3
        while fd in self._fds:
            fd += 1
        model = _FdModel(fd=fd, path=path)
        self._fds[fd] = model
        return model

    def _join(self, directory: str, name: str) -> str:
        return (directory.rstrip("/") or "") + "/" + name

    # ------------------------------------------------------------------
    # op constructors (each returns the ops and updates the model)

    def _op_mkdir(self) -> list[FsOp]:
        parent = self._pick_dir()
        path = self._join(parent, self._fresh_name("dir"))
        self._dirs.append(path)
        return [op("mkdir", path=path)]

    def _op_create(self) -> list[FsOp]:
        parent = self._pick_dir()
        path = self._join(parent, self._fresh_name("file"))
        blocks = self.rng.randint(*self.profile.file_size_blocks)
        size = blocks * 4096 // 2  # half-filled blocks keep images modest
        ops = [op("open", path=path, flags=int(OpenFlags.CREAT))]
        fd_model = self._alloc_fd(path)
        written = 0
        if size:
            payload = self._payload(min(size, len(_PAYLOAD)))
            ops.append(op("write", fd=fd_model.fd, data=payload))
            fd_model.offset = written = len(payload)
        ops.append(op("close", fd=fd_model.fd))
        del self._fds[fd_model.fd]
        self._files[path] = _FileModel(path=path, size=written)
        return ops

    def _op_write(self) -> list[FsOp]:
        if self._fds and self.rng.random() < 0.6:
            fd_model = self._fds[self.rng.choice(sorted(self._fds))]
        else:
            target = self._pick_file()
            if target is None:
                return self._op_create()
            flags = OpenFlags.APPEND if self.profile.append_only else OpenFlags.NONE
            fd_model = self._alloc_fd(target.path)
            prefix = [op("open", path=target.path, flags=int(flags))]
            payload = self._payload(self.rng.randint(*self.profile.io_size))
            result = prefix + [op("write", fd=fd_model.fd, data=payload), op("close", fd=fd_model.fd)]
            model = self._files.get(target.path)
            if model is not None:
                base = model.size if self.profile.append_only else 0
                model.size = max(model.size, base + len(payload))
            del self._fds[fd_model.fd]
            return result
        payload = self._payload(self.rng.randint(*self.profile.io_size))
        model = self._files.get(fd_model.path)
        if model is not None:
            model.size = max(model.size, fd_model.offset + len(payload))
        fd_model.offset += len(payload)
        return [op("write", fd=fd_model.fd, data=payload)]

    def _op_read(self) -> list[FsOp]:
        target = self._pick_file()
        if target is None:
            return self._op_create()
        length = self.rng.randint(*self.profile.io_size)
        fd_model = self._alloc_fd(target.path)
        ops = [
            op("open", path=target.path),
            op("read", fd=fd_model.fd, length=length),
            op("close", fd=fd_model.fd),
        ]
        del self._fds[fd_model.fd]
        return ops

    def _op_open_close(self) -> list[FsOp]:
        target = self._pick_file()
        if target is None:
            return self._op_create()
        if len(self._fds) < self.profile.max_open_fds and self.rng.random() < 0.5:
            fd_model = self._alloc_fd(target.path)
            return [op("open", path=target.path)]
        if self._fds:
            fd = self.rng.choice(sorted(self._fds))
            del self._fds[fd]
            return [op("close", fd=fd)]
        return [op("stat", path=target.path)]

    def _op_unlink(self) -> list[FsOp]:
        candidates = [p for p in self._files if not any(m.path == p for m in self._fds.values())]
        if not candidates:
            return self._op_create()
        path = self.rng.choice(sorted(candidates))
        del self._files[path]
        return [op("unlink", path=path)]

    def _op_rename(self) -> list[FsOp]:
        candidates = [p for p in self._files if not any(m.path == p for m in self._fds.values())]
        if not candidates:
            return self._op_create()
        src = self.rng.choice(sorted(candidates))
        dst = self._join(self._pick_dir(), self._fresh_name("mv"))
        model = self._files.pop(src)
        model.path = dst
        self._files[dst] = model
        return [op("rename", src=src, dst=dst)]

    def _op_stat(self) -> list[FsOp]:
        target = self._pick_file()
        if target is None:
            return [op("stat", path=self._pick_dir())]
        return [op("stat", path=target.path)]

    def _op_readdir(self) -> list[FsOp]:
        return [op("readdir", path=self._pick_dir())]

    def _op_fsync(self) -> list[FsOp]:
        if self._fds:
            fd = self.rng.choice(sorted(self._fds))
            return [op("fsync", fd=fd)]
        target = self._pick_file()
        if target is None:
            return self._op_create()
        fd_model = self._alloc_fd(target.path)
        ops = [op("open", path=target.path), op("fsync", fd=fd_model.fd), op("close", fd=fd_model.fd)]
        del self._fds[fd_model.fd]
        return ops

    def _op_truncate(self) -> list[FsOp]:
        target = self._pick_file()
        if target is None:
            return self._op_create()
        new_size = self.rng.randint(0, max(target.size, 1))
        target.size = new_size
        return [op("truncate", path=target.path, size=new_size)]

    def _op_symlink(self) -> list[FsOp]:
        target = self._pick_file()
        if target is None:
            return self._op_create()
        path = self._join(self._pick_dir(), self._fresh_name("sym"))
        return [op("symlink", target=target.path, path=path)]

    def _op_link(self) -> list[FsOp]:
        target = self._pick_file()
        if target is None:
            return self._op_create()
        path = self._join(self._pick_dir(), self._fresh_name("lnk"))
        self._files[path] = _FileModel(path=path, size=target.size)
        return [op("link", existing=target.path, new=path)]

    def _op_rmdir(self) -> list[FsOp]:
        # Only remove dirs the generator knows are empty: ones it created
        # and into which it never placed anything.  Track lazily: a dir is
        # removable if no file/dir path lives under it.
        removable = [
            d
            for d in self._dirs
            if d != "/"
            and not any(p.startswith(d + "/") for p in self._files)
            and not any(other.startswith(d + "/") for other in self._dirs if other != d)
        ]
        if not removable:
            return self._op_mkdir()
        path = self.rng.choice(sorted(removable))
        self._dirs.remove(path)
        return [op("rmdir", path=path)]

    # ------------------------------------------------------------------

    def _payload(self, size: int) -> bytes:
        start = self.rng.randrange(0, 4096)
        data = (_PAYLOAD * (size // len(_PAYLOAD) + 2))[start : start + size]
        return data

    def prepopulate(self) -> list[FsOp]:
        """Setup ops: directory skeleton + initial files."""
        ops: list[FsOp] = []
        for _ in range(self.profile.prepopulate_dirs):
            ops.extend(self._op_mkdir())
        for _ in range(self.profile.prepopulate_files):
            ops.extend(self._op_create())
        return ops

    def stream(self) -> Iterator[FsOp]:
        """The infinite measured stream."""
        names = sorted(self.profile.weights)
        weights = [self.profile.weights[n] for n in names]
        dispatch = {
            "mkdir": self._op_mkdir,
            "create": self._op_create,
            "write": self._op_write,
            "read": self._op_read,
            "open_close": self._op_open_close,
            "unlink": self._op_unlink,
            "rename": self._op_rename,
            "stat": self._op_stat,
            "readdir": self._op_readdir,
            "fsync": self._op_fsync,
            "truncate": self._op_truncate,
            "symlink": self._op_symlink,
            "link": self._op_link,
            "rmdir": self._op_rmdir,
        }
        while True:
            choice = self.rng.choices(names, weights=weights, k=1)[0]
            for operation in dispatch[choice]():
                self._ops_emitted += 1
                yield operation

    def ops(self, n: int, include_prepopulation: bool = True) -> list[FsOp]:
        """A finite slice: prepopulation plus ``n`` measured operations."""
        result = self.prepopulate() if include_prepopulation else []
        stream = self.stream()
        for _ in range(n):
            result.append(next(stream))
        return result
