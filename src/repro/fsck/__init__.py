"""Offline filesystem checking and repair.

§4.3 notes that a robust shadow "essentially requir[es] a verified
version of the filesystem checker (FSCK)" to guarantee input images are
valid.  This package is the reproduction's checker:

* :mod:`repro.fsck.checker` — :class:`Fsck`, a five-phase e2fsck-style
  scan (superblock, inodes & block reachability, directory structure,
  connectivity, link counts & bitmaps) producing typed findings;
* :mod:`repro.fsck.repairs` — the repair pass: replay the journal,
  release orphans, rebuild bitmaps and counts, fix link counts, and mark
  the image clean.

The recovery path uses the checker in tests to certify invariant 6 of
DESIGN.md: anything the base or the recovery hand-off persists must be
fsck-clean.
"""

from repro.fsck.checker import Finding, Fsck, FsckReport, Severity
from repro.fsck.repairs import repair_image

__all__ = ["Fsck", "FsckReport", "Finding", "Severity", "repair_image"]
