"""The filesystem checker.

Five phases over an unmounted image, mirroring e2fsck's structure:

0. **superblock** — magic, version, checksum, geometry consistency;
   a dirty mount state is a *warning* (journal replay pending), and the
   check continues against a journal-replayed in-memory clone;
1. **inodes** — every allocated inode parses (checksum!), has a valid
   type, a sane size for its type, and block pointers in range; every
   referenced block (data + indirect) is collected, double references
   are errors;
2. **directories** — every directory block parses; entries reference
   allocated, live inodes whose type matches the entry's ftype; ``.``
   and ``..`` exist and point correctly;
3. **connectivity** — every allocated inode is reachable from the root
   (unreachable-but-nonzero-nlink = error; nlink==0 = orphan warning,
   the deleted-but-open case);
4. **counts & bitmaps** — stored nlink equals counted references; block
   and inode bitmaps equal the computed reachability sets; superblock
   free counts match.

Findings carry a severity: ``ERROR`` makes the image unclean; ``WARN``
(orphans, dirty state) does not — matching the paper's observation that
images can be *structurally* acceptable yet still adversarial.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.blockdev.device import BlockDevice
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import FileType, MAX_FILE_SIZE, OnDiskInode
from repro.ondisk.journal import replay_journal
from repro.ondisk.layout import BLOCK_SIZE, INODE_SIZE, DiskLayout
from repro.ondisk.mapping import BlockMapReader
from repro.ondisk.superblock import STATE_DIRTY, Superblock


class Severity(enum.Enum):
    ERROR = "error"
    WARN = "warn"


@dataclass
class Finding:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


@dataclass
class FsckReport:
    findings: list[Finding] = field(default_factory=list)
    inodes_scanned: int = 0
    blocks_referenced: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARN]

    def add(self, severity: Severity, code: str, message: str) -> None:
        self.findings.append(Finding(severity, code, message))


class _View:
    """Read view over the device with journal replay applied virtually."""

    def __init__(self, device: BlockDevice, overlay: dict[int, bytes]):
        self._device = device
        self._overlay = overlay

    def read(self, block: int) -> bytes:
        cached = self._overlay.get(block)
        return cached if cached is not None else self._device.read_block(block)


class Fsck:
    def __init__(self, device: BlockDevice):
        self.device = device
        self.report = FsckReport()

    def run(self) -> FsckReport:
        report = self.report
        try:
            sb = Superblock.unpack(self.device.read_block(0))
        except ValueError as exc:
            report.add(Severity.ERROR, "sb-parse", str(exc))
            return report
        try:
            layout = sb.layout()
        except ValueError as exc:
            report.add(Severity.ERROR, "sb-geometry", str(exc))
            return report
        for problem in sb.validate_against(layout):
            report.add(Severity.ERROR, "sb-consistency", problem)
        if layout.block_count != self.device.block_count:
            report.add(
                Severity.ERROR,
                "sb-geometry",
                f"superblock claims {layout.block_count} blocks, device has {self.device.block_count}",
            )
            return report

        overlay: dict[int, bytes] = {}
        if sb.mount_state == STATE_DIRTY:
            report.add(Severity.WARN, "sb-dirty", "image was not cleanly unmounted; replaying journal virtually")
            try:
                for txn in replay_journal(self.device, layout, apply=False):
                    overlay.update(txn.writes)
            except ValueError as exc:
                report.add(Severity.ERROR, "journal", f"journal unreadable: {exc}")
            if 0 in overlay:
                try:
                    sb = Superblock.unpack(overlay[0])
                except ValueError as exc:
                    report.add(Severity.ERROR, "journal", f"journaled superblock invalid: {exc}")

        view = _View(self.device, overlay)
        self._check_body(sb, layout, view, report)
        return report

    # ------------------------------------------------------------------

    def _check_body(self, sb: Superblock, layout: DiskLayout, view: _View, report: FsckReport) -> None:
        # Phase 1: inode scan.
        inode_allocated: dict[int, bool] = {}
        inodes: dict[int, OnDiskInode] = {}
        for group in range(layout.group_count):
            bitmap = Bitmap.from_block(layout.inodes_per_group, view.read(layout.inode_bitmap_block(group)))
            for bit in range(layout.inodes_per_group):
                ino = group * layout.inodes_per_group + bit + 1
                inode_allocated[ino] = bitmap.test(bit)

        referenced_blocks: dict[int, int] = {}  # block -> referencing ino
        reader = BlockMapReader(view.read)
        for ino in range(1, layout.inode_count + 1):
            block, offset = layout.inode_location(ino)
            raw = view.read(block)[offset : offset + INODE_SIZE]
            try:
                inode = OnDiskInode.unpack(raw)
            except ValueError as exc:
                report.add(Severity.ERROR, "inode-parse", f"inode {ino}: {exc}")
                continue
            if inode.is_free:
                if inode_allocated.get(ino) and ino != 1:
                    report.add(Severity.ERROR, "inode-bitmap", f"inode {ino} marked allocated but table slot is free")
                continue
            report.inodes_scanned += 1
            inodes[ino] = inode
            if not inode_allocated.get(ino):
                report.add(Severity.ERROR, "inode-bitmap", f"inode {ino} in use but free in the bitmap")
            if inode.ftype not in (FileType.REGULAR, FileType.DIRECTORY, FileType.SYMLINK):
                report.add(Severity.ERROR, "inode-type", f"inode {ino} has invalid type (mode 0x{inode.mode:x})")
                continue
            if inode.size > MAX_FILE_SIZE:
                report.add(Severity.ERROR, "inode-size", f"inode {ino} size {inode.size}")
            if inode.is_dir and inode.size % BLOCK_SIZE:
                report.add(Severity.ERROR, "inode-size", f"directory inode {ino} has unaligned size {inode.size}")
            if inode.is_symlink and not 0 < inode.size < BLOCK_SIZE:
                report.add(Severity.ERROR, "inode-size", f"symlink inode {ino} has size {inode.size}")
            try:
                for referenced in reader.all_referenced_blocks(inode):
                    if not 0 < referenced < layout.block_count:
                        report.add(Severity.ERROR, "block-range", f"inode {ino} references block {referenced}")
                        continue
                    if layout.is_metadata_block(referenced):
                        report.add(
                            Severity.ERROR, "block-range", f"inode {ino} references metadata block {referenced}"
                        )
                        continue
                    previous = referenced_blocks.get(referenced)
                    if previous is not None:
                        report.add(
                            Severity.ERROR,
                            "block-shared",
                            f"block {referenced} referenced by both inode {previous} and inode {ino}",
                        )
                    referenced_blocks[referenced] = ino
            except ValueError as exc:
                report.add(Severity.ERROR, "block-map", f"inode {ino}: {exc}")
        report.blocks_referenced = len(referenced_blocks)

        # Phase 2: directory structure.
        link_counts: dict[int, int] = {}
        children: dict[int, list[int]] = {}
        for ino, inode in sorted(inodes.items()):
            if not inode.is_dir:
                continue
            names: dict[str, int] = {}
            for _logical, physical in reader.iter_data_blocks(inode):
                try:
                    entries = DirBlock(view.read(physical)).entries()
                except ValueError as exc:
                    report.add(Severity.ERROR, "dir-parse", f"dir {ino} block {physical}: {exc}")
                    continue
                for entry in entries:
                    if entry.name in names:
                        report.add(Severity.ERROR, "dir-dup", f"dir {ino} has duplicate entry {entry.name!r}")
                    names[entry.name] = entry.ino
                    if not 1 <= entry.ino <= layout.inode_count:
                        report.add(
                            Severity.ERROR, "dir-ref", f"dir {ino} entry {entry.name!r} -> invalid ino {entry.ino}"
                        )
                        continue
                    target = inodes.get(entry.ino)
                    if target is None:
                        report.add(
                            Severity.ERROR, "dir-ref", f"dir {ino} entry {entry.name!r} -> free inode {entry.ino}"
                        )
                        continue
                    if entry.ftype != target.ftype:
                        report.add(
                            Severity.ERROR,
                            "dir-ftype",
                            f"dir {ino} entry {entry.name!r} ftype {entry.ftype.name} != inode {target.ftype.name}",
                        )
                    if entry.name == ".":
                        if entry.ino != ino:
                            report.add(Severity.ERROR, "dir-dots", f"dir {ino} has '.' -> {entry.ino}")
                    elif entry.name != "..":
                        link_counts[entry.ino] = link_counts.get(entry.ino, 0) + 1
                        if target.is_dir:
                            children.setdefault(ino, []).append(entry.ino)
            if "." not in names or ".." not in names:
                report.add(Severity.ERROR, "dir-dots", f"dir {ino} lacks '.' or '..'")

        # Phase 3: connectivity.
        reachable: set[int] = set()
        stack = [sb.root_ino]
        while stack:
            ino = stack.pop()
            if ino in reachable:
                continue
            reachable.add(ino)
            stack.extend(children.get(ino, []))
        for ino, inode in sorted(inodes.items()):
            if ino == 1:
                continue  # reserved
            if inode.is_dir and ino not in reachable:
                report.add(Severity.ERROR, "unreachable", f"directory inode {ino} unreachable from root")
            elif not inode.is_dir and link_counts.get(ino, 0) == 0:
                if inode.nlink == 0:
                    report.add(Severity.WARN, "orphan", f"inode {ino} is an orphan (deleted but allocated)")
                else:
                    report.add(Severity.ERROR, "unreachable", f"inode {ino} has nlink {inode.nlink} but no entries")

        # Phase 4: link counts.
        for ino, inode in sorted(inodes.items()):
            if ino == sb.root_ino:
                expected = 2 + sum(1 for child in children.get(ino, []) if inodes[child].is_dir)
            elif inode.is_dir:
                expected = 2 + sum(1 for child in children.get(ino, []) if inodes[child].is_dir)
            else:
                expected = link_counts.get(ino, 0)
            if inode.is_dir and ino not in reachable:
                continue  # already reported
            if not inode.is_dir and expected == 0:
                continue  # orphan, already reported
            if inode.nlink != expected:
                report.add(
                    Severity.ERROR, "nlink", f"inode {ino} has nlink {inode.nlink}, counted {expected}"
                )

        # Phase 5: bitmaps and free counts.
        free_blocks = 0
        for group in range(layout.group_count):
            bitmap = Bitmap.from_block(layout.blocks_per_group, view.read(layout.block_bitmap_block(group)))
            free_blocks += bitmap.count_free()
            group_start = layout.group_start(group)
            present = layout.group_block_count(group)
            metadata = set(layout.metadata_blocks(group))
            for bit in range(layout.blocks_per_group):
                block = group_start + bit
                allocated = bitmap.test(bit)
                if bit >= present:
                    if not allocated:
                        report.add(Severity.ERROR, "bitmap-tail", f"past-end block {block} marked free")
                    continue
                should = block in metadata or block in referenced_blocks
                if should and not allocated:
                    report.add(Severity.ERROR, "bitmap-lost", f"in-use block {block} is free in the bitmap")
                elif allocated and not should:
                    report.add(Severity.WARN, "bitmap-leak", f"block {block} allocated but unreferenced")
        free_inodes = sum(
            1 for ino, allocated in inode_allocated.items() if not allocated
        )
        if sb.free_blocks != free_blocks:
            report.add(
                Severity.ERROR, "sb-counts", f"superblock free_blocks {sb.free_blocks}, bitmaps say {free_blocks}"
            )
        if sb.free_inodes != free_inodes:
            report.add(
                Severity.ERROR, "sb-counts", f"superblock free_inodes {sb.free_inodes}, bitmaps say {free_inodes}"
            )
