"""Repair pass.

``repair_image`` makes an image mountable again after a crash or a
detected inconsistency, with the classic e2fsck moves:

1. replay the journal for real and reset it;
2. re-derive ground truth by scanning inodes from the root (reachable
   set), ignoring whatever the bitmaps claim;
3. release orphans (allocated inodes unreachable from the root): their
   blocks and inode slots are freed — data loss, faithfully reported;
4. rebuild both bitmaps from the reachable set and metadata layout;
5. fix stored link counts to the counted values;
6. write a clean superblock with correct free counts.

The function returns a human-readable action log.  It is deliberately
*not* part of RAE recovery — the paper's whole point is that RAE avoids
this lossy path — but it is the baseline "crash and run fsck" world the
availability benchmark compares against.
"""

from __future__ import annotations

from repro.blockdev.device import BlockDevice
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import FileType, OnDiskInode
from repro.ondisk.journal import replay_journal, reset_journal
from repro.ondisk.layout import INODE_SIZE, DiskLayout
from repro.ondisk.mapping import BlockMapReader
from repro.ondisk.superblock import STATE_CLEAN, Superblock


def repair_image(device: BlockDevice) -> list[str]:
    actions: list[str] = []
    sb = Superblock.unpack(device.read_block(0), verify=False)
    layout = sb.layout()

    txns = replay_journal(device, layout, apply=True)
    if txns:
        actions.append(f"replayed {len(txns)} journal transactions")
    reset_journal(device, layout, start_seq=(txns[-1].seq + 1) if txns else 1)
    sb = Superblock.unpack(device.read_block(0), verify=False)

    reader = BlockMapReader(device.read_block)

    def read_inode(ino: int) -> OnDiskInode | None:
        block, offset = layout.inode_location(ino)
        raw = device.read_block(block)[offset : offset + INODE_SIZE]
        try:
            return OnDiskInode.unpack(raw)
        except ValueError:
            return None

    def write_inode(ino: int, inode: OnDiskInode | None) -> None:
        block, offset = layout.inode_location(ino)
        raw = bytearray(device.read_block(block))
        raw[offset : offset + INODE_SIZE] = inode.pack() if inode else b"\x00" * INODE_SIZE
        device.write_block(block, bytes(raw))

    # Walk from the root to find the reachable world and true link counts.
    reachable: dict[int, OnDiskInode] = {}
    link_counts: dict[int, int] = {}
    subdir_counts: dict[int, int] = {}
    stack = [sb.root_ino]
    while stack:
        ino = stack.pop()
        if ino in reachable:
            continue
        inode = read_inode(ino)
        if inode is None or inode.is_free:
            continue
        reachable[ino] = inode
        if not inode.is_dir:
            continue
        for _logical, physical in reader.iter_data_blocks(inode):
            try:
                entries = DirBlock(device.read_block(physical)).entries()
            except ValueError:
                actions.append(f"dir {ino}: discarding unparseable block {physical}")
                device.write_block(physical, DirBlock().to_block())
                continue
            for entry in entries:
                if entry.name in (".", ".."):
                    continue
                if not 1 <= entry.ino <= layout.inode_count:
                    continue
                child = read_inode(entry.ino)
                if child is None or child.is_free:
                    continue
                link_counts[entry.ino] = link_counts.get(entry.ino, 0) + 1
                if child.is_dir:
                    subdir_counts[ino] = subdir_counts.get(ino, 0) + 1
                    stack.append(entry.ino)
                else:
                    # Files and symlinks are reachable leaves: record them
                    # so the orphan pass does not release them.
                    reachable.setdefault(entry.ino, child)

    # Release orphans: allocated, parse-able inodes not reachable.
    freed_inodes = 0
    for ino in range(2, layout.inode_count + 1):
        if ino in reachable:
            continue
        inode = read_inode(ino)
        if inode is None:
            write_inode(ino, None)
            actions.append(f"cleared unparseable inode {ino}")
            continue
        if inode.is_free:
            continue
        write_inode(ino, None)
        freed_inodes += 1
    if freed_inodes:
        actions.append(f"released {freed_inodes} orphan inodes")

    # Fix link counts.
    for ino, inode in sorted(reachable.items()):
        expected = 2 + subdir_counts.get(ino, 0) if inode.is_dir else link_counts.get(ino, 0)
        if inode.nlink != expected:
            actions.append(f"inode {ino}: nlink {inode.nlink} -> {expected}")
            inode.nlink = expected
            write_inode(ino, inode)

    # Rebuild bitmaps from the reachable world.
    referenced: set[int] = set()
    for inode in reachable.values():
        try:
            referenced.update(reader.all_referenced_blocks(inode))
        except ValueError:
            continue
    free_blocks = 0
    free_inodes = 0
    for group in range(layout.group_count):
        block_bitmap = Bitmap(layout.blocks_per_group)
        group_start = layout.group_start(group)
        present = layout.group_block_count(group)
        for meta in layout.metadata_blocks(group):
            block_bitmap.set(meta - group_start)
        for bit in range(present, layout.blocks_per_group):
            block_bitmap.set(bit)
        for bit in range(present):
            if group_start + bit in referenced:
                block_bitmap.set(bit)
        device.write_block(layout.block_bitmap_block(group), block_bitmap.to_block())
        free_blocks += block_bitmap.count_free()

        inode_bitmap = Bitmap(layout.inodes_per_group)
        for bit in range(layout.inodes_per_group):
            ino = group * layout.inodes_per_group + bit + 1
            if ino == 1 or ino in reachable:
                inode_bitmap.set(bit)
        device.write_block(layout.inode_bitmap_block(group), inode_bitmap.to_block())
        free_inodes += inode_bitmap.count_free()
    actions.append("rebuilt block and inode bitmaps")

    sb.free_blocks = free_blocks
    sb.free_inodes = free_inodes
    sb.mount_state = STATE_CLEAN
    device.write_block(0, sb.pack())
    device.flush()
    actions.append(f"superblock: free {free_blocks} blocks / {free_inodes} inodes, marked clean")
    return actions
