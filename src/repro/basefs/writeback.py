"""The write-back daemon.

Models the kernel's flusher threads deterministically: the RAE supervisor
calls :meth:`WritebackDaemon.tick` after every operation, and the daemon
decides when the base should commit — on dirty-page pressure, on dirty
metadata pressure (bounding journal transaction size), or on a dirty
age-out interval.  All thresholds are in operation counts, not wall time,
so every run of an experiment commits at exactly the same points.

The *gap* between the application's view and the on-disk state — the
thing the op log records — is precisely the state accumulated between
ticks that trigger and ticks that do not; the op-log benchmark sweeps
these thresholds to show the trade-off the paper implies (more buffering
= better batching but a longer operation sequence to replay).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WritebackPolicy:
    """Commit triggers; any one firing causes a commit at the next tick."""

    dirty_page_high_water: int = 64
    dirty_metadata_high_water: int = 32
    commit_interval_ops: int = 50

    def __post_init__(self):
        if min(self.dirty_page_high_water, self.dirty_metadata_high_water, self.commit_interval_ops) <= 0:
            raise ValueError("writeback thresholds must be positive")


@dataclass
class WritebackStats:
    ticks: int = 0
    commits: int = 0
    pressure_commits: int = 0
    interval_commits: int = 0


class WritebackDaemon:
    """Tick-driven flusher.  ``fs`` is any object exposing
    ``dirty_page_count()``, ``dirty_metadata_count()`` and ``commit()``."""

    def __init__(self, fs, policy: WritebackPolicy | None = None):
        self.fs = fs
        self.policy = policy or WritebackPolicy()
        self.stats = WritebackStats()
        self._ops_since_commit = 0

    def note_commit(self) -> None:
        """External commit happened (fsync) — restart the interval clock."""
        self._ops_since_commit = 0

    def tick(self) -> bool:
        """One post-operation tick; returns True if a commit was issued."""
        self.stats.ticks += 1
        self._ops_since_commit += 1

        pressure = (
            self.fs.dirty_page_count() >= self.policy.dirty_page_high_water
            or self.fs.dirty_metadata_count() >= self.policy.dirty_metadata_high_water
        )
        interval = self._ops_since_commit >= self.policy.commit_interval_ops
        if not pressure and not interval:
            return False

        self.fs.commit()
        self.stats.commits += 1
        if pressure:
            self.stats.pressure_commits += 1
        else:
            self.stats.interval_commits += 1
        self._ops_since_commit = 0
        return True
