"""The base's journaling manager (ordered mode) with validate-on-sync.

Sits between the filesystem's commit path and the on-disk journal format:

1. the filesystem hands it the transaction — every dirty metadata block
   (inode-table blocks, bitmaps, directory blocks, indirect blocks, the
   superblock), *after* file data has already been written in place
   (ordered mode: data before metadata commit);
2. **validate-on-sync** runs: the fault model (§3.1) assumes "errors are
   detected before being persisted to disk, which can be achieved by
   techniques like validating upon sync" — the validator parses and
   cross-checks the transaction's blocks, raising
   :class:`InvariantViolation` *before* anything touches the journal, so
   a corrupted update never becomes durable;
3. the transaction is appended (chunked if it exceeds journal capacity —
   a fidelity concession over JBD2's circular log, documented in
   DESIGN.md), then home-location writes go out through the buffer
   cache, then the journal is reset once it runs low.

Because home writes happen immediately after the journal commit, the
journal's only replay obligation is the window between append and home
write-back — exactly the window a contained reboot or crash lands in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.blockdev.cache import BufferCache
from repro.blockdev.device import BlockDevice
from repro.errors import InvariantViolation
from repro.ondisk.journal import JournalWriter, replay_journal
from repro.ondisk.layout import DiskLayout

# (Multi-chunk commits form an atomic replay group — see
# repro.ondisk.journal.FLAG_MORE_CHUNKS — so a whole commit must fit the
# journal region; the default geometry sizes the journal accordingly.)

Validator = Callable[[dict[int, bytes]], list[str]]


@dataclass
class JournalStats:
    commits: int = 0
    chunks: int = 0
    blocks_journaled: int = 0
    resets: int = 0
    validation_failures: int = 0


class JournalManager:
    def __init__(
        self,
        device: BlockDevice,
        layout: DiskLayout,
        validator: Validator | None = None,
    ):
        self.device = device
        self.layout = layout
        self.writer = JournalWriter(device, layout)
        self.validator = validator
        self.stats = JournalStats()

    @property
    def max_chunk(self) -> int:
        """Blocks per journal transaction (one chunk of a commit group).

        Bounded by the descriptor's tag budget (``MAX_TAGS``) and, for
        small journals, by the region itself (JSB + descriptor + commit
        overhead).  A commit larger than this becomes a multi-chunk
        atomic group — possible only when the region exceeds the tag
        budget, which is why chunking exists at all.
        """
        from repro.ondisk.journal import MAX_TAGS

        return min(MAX_TAGS, self.layout.journal_blocks - 3)

    def commit(self, txn: dict[int, bytes], cache: BufferCache) -> None:
        """Validate, journal, and write home one metadata transaction.

        ``cache`` is the buffer cache holding the dirty home blocks; after
        the journal append succeeds, the corresponding cache blocks are
        written back so on-disk state catches up immediately.
        """
        if not txn:
            return
        if self.validator is not None:
            problems = self.validator(txn)
            if problems:
                self.stats.validation_failures += 1
                raise InvariantViolation(
                    "validate-on-sync rejected the transaction: " + "; ".join(problems[:5]),
                    check="validate-on-sync",
                )

        blocks = sorted(txn)
        chunk_starts = list(range(0, len(blocks), self.max_chunk))
        if len(chunk_starts) > 1:
            # A multi-chunk commit must fit the journal in one piece: its
            # chunks form an atomic replay group, and a mid-group reset
            # would discard already-appended members.
            needed = sum(
                self.writer.blocks_needed(min(self.max_chunk, len(blocks) - start))
                for start in chunk_starts
            )
            if needed > self.writer.free_blocks:
                self.writer.reset()
                self.stats.resets += 1
            if needed > self.writer.free_blocks:
                raise InvariantViolation(
                    f"commit of {len(blocks)} metadata blocks exceeds the journal "
                    f"({self.writer.free_blocks} blocks free after reset)",
                    check="journal-capacity",
                )
        for index, start in enumerate(chunk_starts):
            chunk = blocks[start : start + self.max_chunk]
            if not self.writer.can_fit(len(chunk)):
                if index > 0:
                    # Unreachable given the group pre-check above, but a
                    # reset mid-group would orphan the appended members —
                    # never do it silently.
                    raise InvariantViolation(
                        "journal exhausted mid commit-group", check="journal-capacity"
                    )
                self.writer.reset()
                self.stats.resets += 1
            more = index < len(chunk_starts) - 1
            self.writer.append({b: txn[b] for b in chunk}, more=more)
            self.stats.chunks += 1
            self.stats.blocks_journaled += len(chunk)
        self.stats.commits += 1

        # Home writes: the journaled copy is durable, so the home locations
        # may now be updated in any order.  The append loop above ran at
        # least once (`if not txn: return` guards the empty case), but that
        # loop bound is invisible to the intraprocedural must-analysis.
        for block in blocks:
            cache.writeback(block)  # raelint: disable=JOURNAL-BEFORE-WRITE
        self.device.flush()
        # The journal region is reclaimed lazily: the next commit that does
        # not fit triggers a reset, which is safe because home writes always
        # complete before commit() returns.

    @staticmethod
    def recover(device: BlockDevice, layout: DiskLayout) -> int:
        """Mount-time / contained-reboot journal replay; returns #txns."""
        return len(replay_journal(device, layout, apply=True))
