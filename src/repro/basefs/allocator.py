"""Block and inode allocation.

The base's allocators are where "policy decisions" live — §3.3's example
of allowed base/shadow divergence: *which* blocks get allocated may differ
between the two, as long as the resulting metadata is consistent.  The
base plays the performance game:

* **block allocation** seeks locality: it starts searching in the
  inode's own block group, from a per-group rotor (last allocation
  position), before spilling into other groups;
* **inode allocation** spreads directories into the emptiest group
  (Orlov-flavoured) and co-locates files with their parent directory;
* **delayed allocation** is implemented above this module (the page
  cache holds unmapped dirty pages; the commit path calls into here),
  but the reservation accounting that makes early ``ENOSPC`` possible
  is here.

The shadow's allocator (in :mod:`repro.shadowfs`) is, by contrast, a
strict first-fit scan from zero — simplest possible, per the paper.

:class:`AllocState` owns the in-memory bitmaps and free counters; it is
part of the distrusted state dropped at contained reboot and rebuilt from
disk (plus the shadow's hand-off) afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.basefs.hooks import HookPoints
from repro.errors import Errno, FsError, InvariantViolation
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.layout import DiskLayout


@dataclass
class AllocState:
    """In-memory allocation bitmaps, one pair per group, plus accounting."""

    layout: DiskLayout
    block_bitmaps: list[Bitmap] = field(default_factory=list)
    inode_bitmaps: list[Bitmap] = field(default_factory=list)
    dirty_block_groups: set[int] = field(default_factory=set)
    dirty_inode_groups: set[int] = field(default_factory=set)
    free_blocks: int = 0
    free_inodes: int = 0
    reserved_blocks: int = 0  # delayed-allocation reservations
    rotors: dict[int, int] = field(default_factory=dict)  # group -> next search bit
    # Blocks freed since the last commit.  Their bitmap bits stay SET so
    # they cannot be reallocated and overwritten in place (ordered-mode
    # data writes land before the freeing transaction commits; reuse
    # would corrupt files whose on-disk metadata still references them —
    # the same discipline JBD2 enforces).  The commit path applies these
    # to the bitmaps just before journaling.
    pending_free: set[int] = field(default_factory=set)

    @classmethod
    def load(cls, layout: DiskLayout, read_block) -> "AllocState":
        """Read every group's bitmaps from disk (mount path)."""
        state = cls(layout=layout)
        for group in range(layout.group_count):
            bb = Bitmap.from_block(layout.blocks_per_group, read_block(layout.block_bitmap_block(group)))
            ib = Bitmap.from_block(layout.inodes_per_group, read_block(layout.inode_bitmap_block(group)))
            state.block_bitmaps.append(bb)
            state.inode_bitmaps.append(ib)
            state.free_blocks += bb.count_free()
            state.free_inodes += ib.count_free()
        return state

    @property
    def available_blocks(self) -> int:
        """Blocks free *and* not spoken for by delalloc reservations."""
        return self.free_blocks - self.reserved_blocks

    def reserve(self, nblocks: int) -> None:
        """Reserve capacity for delayed allocation; ENOSPC if exhausted."""
        if nblocks < 0:
            raise ValueError("negative reservation")
        if self.available_blocks < nblocks:
            raise FsError(Errno.ENOSPC, f"cannot reserve {nblocks} blocks ({self.available_blocks} available)")
        self.reserved_blocks += nblocks

    def release_reservation(self, nblocks: int) -> None:
        if nblocks < 0 or nblocks > self.reserved_blocks:
            raise InvariantViolation(
                f"reservation release of {nblocks} with {self.reserved_blocks} outstanding",
                check="delalloc-reservation",
            )
        self.reserved_blocks -= nblocks


class BlockAllocator:
    """Locality-seeking block allocator over :class:`AllocState`."""

    def __init__(self, state: AllocState, hooks: HookPoints):
        self.state = state
        self.hooks = hooks

    def allocate(self, goal_group: int, charge_reservation: bool = False) -> int:
        """Allocate one block, preferring ``goal_group``; returns the block.

        ``charge_reservation`` consumes one delalloc reservation instead of
        free-count headroom (commit-time allocation of reserved pages).
        """
        layout = self.state.layout
        if not charge_reservation and self.state.available_blocks < 1:
            raise FsError(Errno.ENOSPC, "no unreserved blocks")
        if self.state.free_blocks < 1:
            raise FsError(Errno.ENOSPC, "no free blocks")
        order = [goal_group % layout.group_count] + [
            g for g in range(layout.group_count) if g != goal_group % layout.group_count
        ]
        for group in order:
            bitmap = self.state.block_bitmaps[group]
            rotor = self.state.rotors.get(group, 0)
            bit = bitmap.find_free(start=rotor)
            if bit is None:
                continue
            bitmap.set(bit)
            self.state.rotors[group] = bit + 1
            self.state.dirty_block_groups.add(group)
            self.state.free_blocks -= 1
            if charge_reservation:
                self.state.release_reservation(1)
            block = layout.group_start(group) + bit
            self.hooks.fire("alloc.block", group=group, block=block)
            return block
        raise FsError(Errno.ENOSPC, "all groups full")

    def free(self, block: int) -> None:
        """Free a block: counted immediately, reusable only after the
        next commit (see ``AllocState.pending_free``)."""
        layout = self.state.layout
        group = layout.group_of_block(block)
        if layout.is_metadata_block(block):
            raise InvariantViolation(f"attempt to free metadata block {block}", check="free-metadata-block")
        bit = block - layout.group_start(group)
        bitmap = self.state.block_bitmaps[group]
        if block in self.state.pending_free or not bitmap.test(bit):
            raise InvariantViolation(f"double free of block {block}", check="block-double-free")
        self.state.pending_free.add(block)
        self.state.free_blocks += 1
        self.hooks.fire("free.block", block=block)

    def apply_pending_frees(self) -> int:
        """Commit path: clear the bitmap bits of blocks freed this window
        (their frees become durable with this transaction); returns the
        number applied."""
        layout = self.state.layout
        applied = len(self.state.pending_free)
        for block in sorted(self.state.pending_free):
            group = layout.group_of_block(block)
            self.state.block_bitmaps[group].clear(block - layout.group_start(group))
            self.state.dirty_block_groups.add(group)
        self.state.pending_free.clear()
        return applied


class InodeAllocator:
    """Orlov-flavoured inode allocator over :class:`AllocState`."""

    def __init__(self, state: AllocState, hooks: HookPoints):
        self.state = state
        self.hooks = hooks

    def allocate(self, parent_group: int, is_dir: bool) -> int:
        """Allocate an inode number.  Directories spread to the emptiest
        group; files stay near their parent."""
        layout = self.state.layout
        if self.state.free_inodes < 1:
            raise FsError(Errno.ENOSPC, "no free inodes")
        if is_dir:
            order = sorted(
                range(layout.group_count),
                key=lambda g: (-self.state.inode_bitmaps[g].count_free(), g),
            )
        else:
            goal = parent_group % layout.group_count
            order = [goal] + [g for g in range(layout.group_count) if g != goal]
        for group in order:
            bitmap = self.state.inode_bitmaps[group]
            bit = bitmap.find_free(start=0)
            if bit is None:
                continue
            bitmap.set(bit)
            self.state.dirty_inode_groups.add(group)
            self.state.free_inodes -= 1
            ino = group * layout.inodes_per_group + bit + 1
            self.hooks.fire("alloc.inode", group=group, ino=ino)
            return ino
        raise FsError(Errno.ENOSPC, "all inode groups full")

    def claim(self, ino: int) -> None:
        """Mark a specific inode allocated (recovery hand-off ingest)."""
        layout = self.state.layout
        group = layout.group_of_ino(ino)
        bit = layout.ino_index_in_group(ino)
        bitmap = self.state.inode_bitmaps[group]
        if bitmap.test(bit):
            raise InvariantViolation(f"claim of already-allocated inode {ino}", check="inode-claim")
        bitmap.set(bit)
        self.state.dirty_inode_groups.add(group)
        self.state.free_inodes -= 1

    def free(self, ino: int) -> None:
        layout = self.state.layout
        group = layout.group_of_ino(ino)
        bit = layout.ino_index_in_group(ino)
        bitmap = self.state.inode_bitmaps[group]
        if not bitmap.test(bit):
            raise InvariantViolation(f"double free of inode {ino}", check="inode-double-free")
        bitmap.clear(bit)
        self.state.dirty_inode_groups.add(group)
        self.state.free_inodes += 1
        self.hooks.fire("free.inode", ino=ino)
