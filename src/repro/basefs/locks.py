"""Lock management for the base's simulated concurrency.

The reproduction executes operations one at a time (Python, determinism),
but the base *models* the locking discipline a concurrent filesystem
needs, because lock-ordering violations are one of the paper's
non-deterministic bug classes (Table 1 groups threading bugs under
non-deterministic).  Each operation acquires per-inode locks through this
manager, which:

* tracks the held set and acquisition order;
* enforces the ordering rule (ascending inode number, like the
  parent-before-child convention) and reports violations as lockdep
  events — the injectable "deadlock/freeze" bug class works by
  *suppressing* the ordering discipline at a hook point and letting the
  manager flag it;
* feeds the ``lock.acquire`` hook so injected concurrency bugs have a
  realistic trigger site.

A detected would-be deadlock surfaces as :class:`KernelWarning` (the
kernel's lockdep WARNs) so the detector's WARN policy decides whether RAE
engages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.basefs.hooks import HookPoints
from repro.errors import KernelWarning


@dataclass
class LockStats:
    acquisitions: int = 0
    contentions: int = 0  # re-acquisitions of a held lock (recursive use)
    order_violations: int = 0


@dataclass
class LockManager:
    hooks: HookPoints
    strict: bool = False
    held: list[int] = field(default_factory=list)
    stats: LockStats = field(default_factory=LockStats)

    def acquire(self, ino: int, parent: int | None = None) -> None:
        """Take the lock on ``ino``.

        Out-of-order acquisitions (a lower inode number while holding a
        higher one) are counted; with ``strict`` they raise the lockdep
        WARN.  The one sanctioned exception is hierarchy locking: a
        child taken while its ``parent``'s lock is already held is safe
        regardless of numeric order (the hierarchy imposes a global
        order of its own), so callers declare the relationship and no
        violation is recorded.  ``strict`` is off by default; the
        injectable deadlock bugs use the ``lock.acquire`` hook to model
        a discipline violation being caught at runtime.
        """
        self.hooks.fire("lock.acquire", ino=ino)
        self.stats.acquisitions += 1
        if ino in self.held:
            self.stats.contentions += 1
            return
        if self.held and ino < self.held[-1]:
            sanctioned = parent is not None and parent in self.held
            if not sanctioned:
                self.stats.order_violations += 1
                if self.strict:
                    raise KernelWarning(
                        f"lock order violation: acquiring inode {ino} while holding {self.held[-1]}",
                        bug_id="lockdep",
                    )
        self.held.append(ino)

    def acquire_pair(self, a: int, b: int) -> None:
        """Take two inode locks in canonical (ascending) order — the
        rename/link discipline."""
        first, second = sorted((a, b))
        self.acquire(first)
        if second != first:
            self.acquire(second)

    def release(self, ino: int) -> None:
        if ino in self.held:
            self.held.remove(ino)

    def release_all(self) -> None:
        """End-of-operation cleanup (also runs on the error path, since a
        crashed base's locks are part of the distrusted state)."""
        self.held.clear()
