"""The dentry cache.

Maps ``(parent_ino, name)`` to a child inode number so repeated lookups
skip the directory scan.  Supports *negative* entries (name known absent),
which is where much of the real-world subtlety — and several of the
studied bugs — lives: a stale negative entry makes a file invisible, a
stale positive one resurrects a deleted file.  The base invalidates
entries on every namespace mutation; the injected "stale dentry" bug class
works precisely by suppressing one of those invalidations.

§3.3: "the shadow does not use a dentry cache, and instead always performs
path lookup from the root inode" — this module has no shadow counterpart.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class DentryCacheStats:
    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.negative_hits + self.misses
        return (self.hits + self.negative_hits) / total if total else 0.0


class DentryCache:
    """LRU cache of directory-entry lookups, with negative caching.

    ``lookup`` returns the child ino, ``NEGATIVE`` (name known absent), or
    ``None`` (unknown — caller must scan the directory).
    """

    NEGATIVE = 0  # ino 0 is invalid, so it can encode "known absent"

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, str], int] = OrderedDict()
        self.stats = DentryCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, parent_ino: int, name: str) -> int | None:
        key = (parent_ino, name)
        ino = self._entries.get(key)
        if ino is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        if ino == self.NEGATIVE:
            self.stats.negative_hits += 1
        else:
            self.stats.hits += 1
        return ino

    def insert(self, parent_ino: int, name: str, ino: int) -> None:
        """Record a positive lookup result."""
        if ino == self.NEGATIVE:
            raise ValueError("use insert_negative for absent names")
        self._insert((parent_ino, name), ino)

    def insert_negative(self, parent_ino: int, name: str) -> None:
        """Record that ``name`` is absent from ``parent_ino``."""
        self._insert((parent_ino, name), self.NEGATIVE)

    def invalidate(self, parent_ino: int, name: str) -> None:
        if self._entries.pop((parent_ino, name), None) is not None:
            self.stats.invalidations += 1

    def invalidate_dir(self, parent_ino: int) -> None:
        """Drop every entry under one directory (rmdir of the dir, rename)."""
        victims = [key for key in self._entries if key[0] == parent_ino]
        for key in victims:
            del self._entries[key]
        self.stats.invalidations += len(victims)

    def invalidate_ino(self, ino: int) -> None:
        """Drop every entry *resolving to* ``ino`` (inode reuse safety)."""
        victims = [key for key, value in self._entries.items() if value == ino]
        for key in victims:
            del self._entries[key]
        self.stats.invalidations += len(victims)

    def drop_all(self) -> None:
        self._entries.clear()

    def _insert(self, key: tuple[int, str], ino: int) -> None:
        self._entries[key] = ino
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
