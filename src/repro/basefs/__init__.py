"""The base filesystem: the performance-oriented implementation.

This package is the left-hand side of the paper's Figure 2 — the complex,
optimized filesystem that RAE protects.  Its defining features, each one
deliberately *absent* from the shadow:

* a **dentry cache** (:mod:`repro.basefs.dentry_cache`) so repeated path
  lookups skip directory scans, with negative entries;
* an **inode cache** (:mod:`repro.basefs.inode_cache`) of decoded inodes
  with dirty tracking;
* a **page cache** (:mod:`repro.basefs.page_cache`) holding file data,
  written back lazily;
* **delayed allocation** (:mod:`repro.basefs.allocator`) — file blocks
  are not allocated until write-back/commit;
* an **asynchronous block layer** (the blk-mq model from
  :mod:`repro.blockdev.blkmq`) under a write-back buffer cache;
* **journaling** (:mod:`repro.basefs.journal_mgr`) in ordered mode, with
  the validate-on-sync error-detection hook the fault model assumes;
* a **write-back daemon** (:mod:`repro.basefs.writeback`) that flushes on
  ticks and memory pressure;
* a **lock manager** (:mod:`repro.basefs.locks`) modelling the locking
  discipline whose violations are a classic non-deterministic bug class;
* **bug hook points** (:mod:`repro.basefs.hooks`) threaded through every
  subsystem, where :mod:`repro.faults` arms the study's bug taxonomy.

The entry point is :class:`repro.basefs.filesystem.BaseFilesystem`.
"""

from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.basefs.vfs import FdState, FdTable

__all__ = ["BaseFilesystem", "HookPoints", "FdTable", "FdState"]
