"""Bug-injection hook points.

The base filesystem calls :meth:`HookPoints.fire` at named points in its
code paths — lookup, directory insert, allocation, page-cache write,
journal commit, and so on.  The fault injector (:mod:`repro.faults`)
registers handlers on those names; a handler may

* raise :class:`~repro.errors.KernelBug` (a BUG()-style crash),
* raise :class:`~repro.errors.KernelWarning` (a WARN_ON hit),
* mutate the fired context in place (silent corruption — the NoCrash
  consequence class), or
* do nothing this time (non-deterministic bugs fire probabilistically
  from a seeded RNG).

Without an injector attached, ``fire`` is a cheap no-op — the common
case, matching the paper's observation that the base keeps runtime
checking (and here, checking *hooks*) lean for performance.

Hook names used by the base (the injector validates against this list):
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

HOOK_NAMES = (
    "vfs.lookup",  # per path component resolution; ctx: parent_ino, name
    "vfs.open",  # ctx: path, flags, ino
    "vfs.close",  # ctx: fd, ino
    "dir.insert",  # ctx: dir_ino, name, child_ino
    "dir.remove",  # ctx: dir_ino, name
    "dir.read",  # ctx: dir_ino
    "inode.read",  # ctx: ino
    "inode.dirty",  # ctx: ino
    "inode.evict",  # ctx: ino
    "alloc.inode",  # ctx: group, ino
    "alloc.block",  # ctx: group, block
    "free.block",  # ctx: block
    "free.inode",  # ctx: ino
    "page.write",  # ctx: ino, logical
    "page.read",  # ctx: ino, logical
    "truncate",  # ctx: ino, old_size, new_size
    "rename",  # ctx: src, dst
    "symlink",  # ctx: path, target
    "journal.commit",  # ctx: nblocks
    "journal.checkpoint",  # ctx: (none)
    "writeback.tick",  # ctx: dirty_pages
    "blkmq.submit",  # ctx: op, block
    "lock.acquire",  # ctx: ino
    "mount",  # ctx: (none)
)

#: The central hook-name registry.  Both enforcement layers agree on it:
#: raelint's HOOK-REGISTRY rule checks literal names at fire/register
#: sites statically, and :meth:`HookPoints.fire` validates dynamic names
#: at runtime — a typo'd hook site fails loudly instead of silently
#: never triggering injected faults.
VALID_HOOK_NAMES: frozenset[str] = frozenset(HOOK_NAMES)


class Hook(Protocol):
    def __call__(self, point: str, ctx: dict[str, Any]) -> None: ...


class HookPoints:
    """Registry of handlers keyed by hook-point name.

    ``fired`` counts per-point invocations, which benchmarks use to show
    how much busier the base's machinery is than the shadow's (which has
    no hooks at all — there is nothing to inject into).
    """

    def __init__(self):
        self._handlers: dict[str, list[Hook]] = {}
        self.fired: dict[str, int] = {}
        self.enabled = True

    def register(self, point: str, handler: Hook) -> None:
        if point not in VALID_HOOK_NAMES:
            raise ValueError(f"unknown hook point {point!r}")
        self._handlers.setdefault(point, []).append(handler)

    def unregister_all(self) -> None:
        self._handlers.clear()

    def fire(self, point: str, **ctx: Any) -> dict[str, Any]:
        """Invoke handlers for ``point``; returns the (possibly mutated) ctx.

        Exceptions from handlers propagate — that is the entire point: an
        armed KernelBug unwinds out of the base exactly as a real BUG()
        would unwind into the error path.
        """
        if point not in VALID_HOOK_NAMES:
            raise ValueError(f"unknown hook point {point!r}")
        if not self.enabled:
            return ctx
        handlers = self._handlers.get(point)
        if handlers is None:
            return ctx
        self.fired[point] = self.fired.get(point, 0) + 1
        for handler in handlers:
            handler(point, ctx)
        return ctx
