"""The inode cache.

Decoded :class:`~repro.ondisk.inode.OnDiskInode` objects keyed by inode
number, with dirty tracking and LRU eviction of clean, unpinned entries.
Dirty inodes are the metadata half of the "buffered update" the op log
protects: they exist only here until a journal commit serializes them back
into their inode-table blocks.

Contained reboot drops this cache wholesale — a detected error means
nothing in it can be trusted — and the recovery hand-off repopulates it
from the shadow's output, entries marked dirty so the normal commit path
persists them (§3.2 "reuses its existing logic to place them into its
cache, marked as dirty").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.ondisk.inode import OnDiskInode


@dataclass
class CachedInode:
    """One cache slot.  ``pins`` counts open fds + in-operation references;
    a pinned inode is never evicted."""

    ino: int
    inode: OnDiskInode
    dirty: bool = False
    pins: int = 0


@dataclass
class InodeCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class InodeCache:
    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: OrderedDict[int, CachedInode] = OrderedDict()
        self.stats = InodeCacheStats()

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, ino: int) -> bool:
        return ino in self._slots

    def get(self, ino: int) -> CachedInode | None:
        slot = self._slots.get(ino)
        if slot is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._slots.move_to_end(ino)
        return slot

    def insert(self, ino: int, inode: OnDiskInode, dirty: bool = False) -> CachedInode:
        if ino in self._slots:
            raise ValueError(f"inode {ino} already cached")
        slot = CachedInode(ino=ino, inode=inode, dirty=dirty)
        self._slots[ino] = slot
        self._slots.move_to_end(ino)
        self._evict_excess()
        return slot

    def mark_dirty(self, ino: int) -> None:
        slot = self._slots.get(ino)
        if slot is None:
            raise KeyError(f"inode {ino} not cached")
        slot.dirty = True

    def pin(self, ino: int) -> None:
        slot = self._slots.get(ino)
        if slot is None:
            raise KeyError(f"inode {ino} not cached")
        slot.pins += 1

    def unpin(self, ino: int) -> None:
        slot = self._slots.get(ino)
        if slot is None:
            raise KeyError(f"inode {ino} not cached")
        if slot.pins <= 0:
            raise ValueError(f"inode {ino} not pinned")
        slot.pins -= 1

    def dirty_inodes(self) -> list[CachedInode]:
        """Dirty slots in inode-number order (deterministic commit order)."""
        return [self._slots[ino] for ino in sorted(self._slots) if self._slots[ino].dirty]

    def clean(self, ino: int) -> None:
        """Mark a slot clean after its table block was journaled."""
        slot = self._slots.get(ino)
        if slot is not None:
            slot.dirty = False

    def remove(self, ino: int) -> None:
        """Drop a slot (inode freed).  Dirty state is discarded — the
        caller has already recorded the free in the bitmaps."""
        self._slots.pop(ino, None)

    def drop_all(self) -> None:
        """Contained reboot: discard everything, dirty included."""
        self._slots.clear()

    def _evict_excess(self) -> None:
        while len(self._slots) > self.capacity:
            victim = None
            for ino, slot in self._slots.items():
                if not slot.dirty and slot.pins == 0:
                    victim = ino
                    break
            if victim is None:
                return  # everything dirty/pinned: over-capacity until commit
            del self._slots[victim]
            self.stats.evictions += 1
