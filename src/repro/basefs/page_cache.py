"""The page cache.

File data lives here between a ``write`` and its write-back, keyed by
``(ino, logical_block)``.  Three properties matter to RAE:

* **the gap** — dirty pages are application-visible state that is not yet
  on disk, which is exactly what the op log protects;
* **survival across contained reboot** — §2.3: "The data pages are shared
  between the base and the shadow because only applications can detect
  their corruption."  Contained reboot discards every *metadata* cache
  but calls :meth:`PageCache.detach`/:meth:`attach` to carry data pages
  across, and the shadow reads them (read-only) when replaying reads of
  not-yet-persisted data;
* **read-ahead** — a sequential-read heuristic that exists purely as a
  base-side performance feature, to make the Figure 2 contrast honest.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.ondisk.layout import BLOCK_SIZE


@dataclass
class Page:
    ino: int
    logical: int
    data: bytearray
    dirty: bool = False


@dataclass
class PageCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    readahead_loads: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """LRU page cache with dirty tracking and a read-ahead window.

    The cache itself never touches the device: the filesystem supplies
    data on miss and consumes dirty pages at write-back.  This keeps all
    allocation policy (delayed allocation!) out of the cache.
    """

    def __init__(self, capacity_pages: int = 4096, readahead_window: int = 4):
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_pages
        self.readahead_window = readahead_window
        self._pages: OrderedDict[tuple[int, int], Page] = OrderedDict()
        self._last_read: dict[int, int] = {}  # ino -> last logical read (for read-ahead)
        self.stats = PageCacheStats()

    def __len__(self) -> int:
        return len(self._pages)

    def lookup(self, ino: int, logical: int) -> Page | None:
        key = (ino, logical)
        page = self._pages.get(key)
        if page is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._pages.move_to_end(key)
        return page

    def install(self, ino: int, logical: int, data: bytes, dirty: bool) -> Page:
        """Insert (or overwrite) a page."""
        if len(data) != BLOCK_SIZE:
            raise ValueError(f"page must be {BLOCK_SIZE} bytes, got {len(data)}")
        key = (ino, logical)
        page = self._pages.get(key)
        if page is None:
            page = Page(ino=ino, logical=logical, data=bytearray(data), dirty=dirty)
            self._pages[key] = page
        else:
            page.data[:] = data
            page.dirty = page.dirty or dirty
        self._pages.move_to_end(key)
        self._evict_excess()
        return page

    def readahead_plan(self, ino: int, logical: int, file_blocks: int) -> list[int]:
        """Logical blocks to prefetch given a read at ``logical``.

        Sequential pattern (this read follows the previous one) extends
        the window; random access returns nothing.  The filesystem loads
        the planned blocks and installs them via :meth:`install`.
        """
        previous = self._last_read.get(ino)
        self._last_read[ino] = logical
        if previous is None or logical != previous + 1:
            return []
        plan = []
        for ahead in range(1, self.readahead_window + 1):
            candidate = logical + ahead
            if candidate >= file_blocks:
                break
            if (ino, candidate) not in self._pages:
                plan.append(candidate)
        self.stats.readahead_loads += len(plan)
        return plan

    def dirty_pages(self) -> list[Page]:
        """Dirty pages in (ino, logical) order — deterministic write-back."""
        return [self._pages[key] for key in sorted(self._pages) if self._pages[key].dirty]

    def dirty_count(self) -> int:
        return sum(1 for page in self._pages.values() if page.dirty)

    def mark_clean(self, ino: int, logical: int) -> None:
        page = self._pages.get((ino, logical))
        if page is not None:
            page.dirty = False

    def drop_ino(self, ino: int, from_logical: int = 0) -> None:
        """Drop pages of one file at/after ``from_logical`` (truncate, unlink)."""
        victims = [key for key in self._pages if key[0] == ino and key[1] >= from_logical]
        for key in victims:
            del self._pages[key]
        self._last_read.pop(ino, None)

    def detach(self) -> dict[tuple[int, int], Page]:
        """Contained reboot: hand the pages out to survive the reset."""
        pages = self._pages
        self._pages = OrderedDict()
        self._last_read = {}
        return dict(pages)

    def attach(self, pages: dict[tuple[int, int], Page]) -> None:
        """Re-adopt pages preserved across a contained reboot."""
        for key in sorted(pages):
            self._pages[key] = pages[key]
        self._evict_excess()

    def drop_all(self) -> None:
        self._pages.clear()
        self._last_read.clear()

    def _evict_excess(self) -> None:
        while len(self._pages) > self.capacity:
            victim = None
            for key, page in self._pages.items():
                if not page.dirty:
                    victim = key
                    break
            if victim is None:
                return  # all dirty; stay over capacity until write-back
            del self._pages[victim]
            self.stats.evictions += 1
