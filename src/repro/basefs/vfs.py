"""VFS-level state: open-file descriptors.

File descriptors are one of the two "essential states" recovery must
reconstruct (the other is on-disk metadata): fd *numbers* are
application-visible, so both the base and the shadow's replay engine use
this exact table with its lowest-free-fd-from-3 allocation rule.

A descriptor carries the inode number, open flags, and current offset.
There is no per-process separation — the reproduction models a single
application principal, which is all the paper's recovery story needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api import OpenFlags
from repro.errors import Errno, FsError

FIRST_FD = 3  # 0-2 reserved, as everywhere


@dataclass
class FdState:
    """One open descriptor.  ``replace``-able for snapshots."""

    fd: int
    ino: int
    flags: OpenFlags
    offset: int = 0

    def snapshot(self) -> "FdState":
        return replace(self)


class FdTable:
    """Descriptor table with deterministic lowest-free allocation."""

    def __init__(self):
        self._open: dict[int, FdState] = {}

    def __len__(self) -> int:
        return len(self._open)

    def __contains__(self, fd: int) -> bool:
        return fd in self._open

    def allocate(self, ino: int, flags: OpenFlags, offset: int = 0) -> FdState:
        fd = FIRST_FD
        while fd in self._open:
            fd += 1
        state = FdState(fd=fd, ino=ino, flags=flags, offset=offset)
        self._open[fd] = state
        return state

    def install(self, state: FdState) -> None:
        """Install a descriptor at a specific number (recovery hand-off)."""
        if state.fd in self._open:
            raise ValueError(f"fd {state.fd} already open")
        if state.fd < FIRST_FD:
            raise ValueError(f"fd {state.fd} below FIRST_FD")
        self._open[state.fd] = state

    def get(self, fd: int) -> FdState:
        state = self._open.get(fd)
        if state is None:
            raise FsError(Errno.EBADF, f"fd {fd} not open")
        return state

    def release(self, fd: int) -> FdState:
        state = self._open.pop(fd, None)
        if state is None:
            raise FsError(Errno.EBADF, f"fd {fd} not open")
        return state

    def open_fds(self) -> list[int]:
        return sorted(self._open)

    def fds_for_ino(self, ino: int) -> list[int]:
        return sorted(fd for fd, st in self._open.items() if st.ino == ino)

    def snapshot(self) -> dict[int, FdState]:
        """Deep-copied view — the op log's durable fd registry."""
        return {fd: st.snapshot() for fd, st in self._open.items()}

    def clear(self) -> None:
        self._open.clear()
