"""The base filesystem implementation.

``BaseFilesystem`` is the performance-oriented filesystem RAE protects:
every operation runs through the dentry cache, inode cache, page cache,
delayed allocation, the asynchronous block layer, and ordered-mode
journaling.  It implements :class:`repro.api.FilesystemAPI` exactly —
the same contract the shadow implements without any of that machinery.

Design notes that matter for recovery:

* **The gap.**  Between journal commits, namespace and data mutations
  live only in caches (dirty inodes, dirty buffer-cache blocks, dirty
  pages).  The on-disk image trails the application's view by exactly
  the operations since the last commit — the sequence the op log keeps.
* **Commit.**  ``commit()`` is the single durability path (write-back
  daemon, fsync, unmount all funnel here): data pages first (ordered
  mode), then one validated journal transaction of all dirty metadata,
  then home writes.  ``on_commit`` callbacks let the RAE supervisor
  truncate the op log at that instant.
* **Errors.**  Legitimate request errors raise :class:`FsError` after a
  *validate-before-mutate* discipline, so an errno never leaves partial
  state.  Everything else — injected ``KernelBug``/``KernelWarning``,
  invariant violations from validate-on-sync, device errors — escapes to
  the supervisor's detector, leaving arbitrarily wrong in-memory state
  behind, which is precisely the state contained reboot discards.
* **Timestamps** are the caller-provided ``opseq`` (see repro.api).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import FilesystemAPI, OpenFlags, SYMLINK_DEPTH_LIMIT, StatResult, parent_and_name, split_path
from repro.basefs.allocator import AllocState, BlockAllocator, InodeAllocator
from repro.basefs.dentry_cache import DentryCache
from repro.basefs.hooks import HookPoints
from repro.basefs.inode_cache import CachedInode, InodeCache
from repro.basefs.journal_mgr import JournalManager
from repro.basefs.locks import LockManager
from repro.basefs.page_cache import Page, PageCache
from repro.basefs.vfs import FdTable
from repro.basefs.writeback import WritebackDaemon, WritebackPolicy
from repro.blockdev.blkmq import BlockMQ, IoScheduler
from repro.blockdev.cache import BufferCache
from repro.blockdev.device import BlockDevice
from repro.errors import DeviceError, Errno, FsError, InvariantViolation
from repro.ondisk.directory import DirBlock, DirEntry
from repro.ondisk.inode import (
    FileType,
    MAX_FILE_SIZE,
    N_DIRECT,
    OnDiskInode,
    PTRS_PER_BLOCK,
    make_mode,
)
from repro.ondisk.layout import BLOCK_SIZE, INODE_SIZE, ROOT_INO
from repro.ondisk.journal import replay_journal, reset_journal
from repro.ondisk.mapping import BlockMapReader, pack_pointers, unpack_pointers
from repro.ondisk.superblock import STATE_CLEAN, STATE_DIRTY, Superblock

MAX_SYMLINK_TARGET = BLOCK_SIZE - 1


@dataclass
class BaseFsStats:
    ops: dict[str, int] = field(default_factory=dict)
    commits: int = 0
    data_reads: int = 0
    data_writes: int = 0

    def count(self, name: str) -> None:
        self.ops[name] = self.ops.get(name, 0) + 1


class BaseFilesystem(FilesystemAPI):
    """Mount-on-construct performance-oriented filesystem.

    Construction mounts the device: if the superblock says the image was
    not cleanly unmounted, the journal is replayed first (this is also
    the re-mount path contained reboot takes).
    """

    def __init__(
        self,
        device: BlockDevice,
        hooks: HookPoints | None = None,
        buffer_cache_capacity: int = 1024,
        page_cache_capacity: int = 4096,
        inode_cache_capacity: int = 1024,
        dentry_cache_capacity: int = 4096,
        writeback_policy: WritebackPolicy | None = None,
        validate_on_sync: bool = True,
        nr_queues: int = 4,
        io_scheduler: IoScheduler | None = None,
        preserved_pages: dict[tuple[int, int], Page] | None = None,
    ):
        self.device = device
        self.hooks = hooks or HookPoints()
        self.hooks.fire("mount")
        self.stats = BaseFsStats()
        self.validate_on_sync = validate_on_sync
        self.on_commit: list = []  # callbacks(commit_epoch)
        self.commit_epoch = 0
        self._mounted = False

        sb = Superblock.unpack(device.read_block(0))
        self.layout = sb.layout()
        if sb.mount_state == STATE_DIRTY:
            # Crash / contained-reboot path: replay committed transactions,
            # then reset the journal under a fresh sequence so stale
            # transactions can never be replayed twice.  When nothing
            # replayed, the journal superblock is left untouched: writing
            # a fresh one with a *lower* starting sequence would resurrect
            # stale transaction records still physically in the region.
            txns = replay_journal(device, self.layout, apply=True)
            self.replayed_txns = len(txns)
            if txns:
                reset_journal(device, self.layout, start_seq=txns[-1].seq + 1)
                device.flush()
            sb = Superblock.unpack(device.read_block(0))
        else:
            self.replayed_txns = 0

        sb.mount_state = STATE_DIRTY
        sb.mount_count += 1
        # The mount stamp is deliberately outside the journal: flipping the
        # superblock to DIRTY is what makes the journal authoritative in the
        # first place, and replay is idempotent with respect to it.
        device.write_block(0, sb.pack())  # raelint: disable=JOURNAL-BEFORE-WRITE
        device.flush()
        self.sb = sb

        self.cache = BufferCache(device, capacity=buffer_cache_capacity)
        self.blkmq = BlockMQ(device, nr_queues=nr_queues, scheduler=io_scheduler)
        self.inode_cache = InodeCache(capacity=inode_cache_capacity)
        self.dentry_cache = DentryCache(capacity=dentry_cache_capacity)
        self.page_cache = PageCache(capacity_pages=page_cache_capacity)
        if preserved_pages:
            self.page_cache.attach(preserved_pages)
        self.fd_table = FdTable()
        self.alloc = AllocState.load(self.layout, device.read_block)
        self.block_alloc = BlockAllocator(self.alloc, self.hooks)
        self.inode_alloc = InodeAllocator(self.alloc, self.hooks)
        self.locks = LockManager(self.hooks)
        self.journal = JournalManager(
            device,
            self.layout,
            validator=self._validate_txn if validate_on_sync else None,
        )
        # JBD2 discipline: the write-back policy must commit before the
        # accumulated state outgrows the journal region (commits are
        # atomic groups that must fit it whole).  A quarter of the region
        # each for dirty metadata and dirty pages leaves room for the
        # metadata a commit itself dirties (delayed allocation touches
        # bitmaps, indirect blocks and inode tables while flushing pages).
        policy = writeback_policy or WritebackPolicy()
        journal_safe = max(3, (self.layout.journal_blocks - 4) // 4)
        if policy.dirty_metadata_high_water > journal_safe or policy.dirty_page_high_water > journal_safe:
            policy = WritebackPolicy(
                dirty_page_high_water=min(policy.dirty_page_high_water, journal_safe),
                dirty_metadata_high_water=min(policy.dirty_metadata_high_water, journal_safe),
                commit_interval_ops=policy.commit_interval_ops,
            )
        self.writeback = WritebackDaemon(self, policy)
        self._block_role: dict[int, str] = {}
        self._orphans: set[int] = set()
        self._reserved_pages: set[tuple[int, int]] = set()
        self._reserved_indirect: set[tuple] = set()
        self._mounted = True

    # ------------------------------------------------------------------
    # mount lifecycle

    def unmount(self) -> None:
        """Commit everything and mark the image clean.

        Open fds are tolerated (their inodes simply stay allocated; if
        they were orphaned by unlink, fsck will find them — as on a real
        system that loses power with deleted-but-open files).
        """
        self._require_mounted()
        self.commit()
        self.sb.mount_state = STATE_CLEAN
        self.device.write_block(0, self.sb.pack())
        self.device.flush()
        self._mounted = False

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise InvariantViolation("operation on unmounted filesystem", check="mounted")

    # ------------------------------------------------------------------
    # inode plumbing

    def _iget(self, ino: int) -> CachedInode:
        """Fetch an inode via the cache, decoding (and checksum-verifying)
        from the inode table on miss.  A checksum failure raises
        ``ValueError`` — a runtime error, not an errno."""
        slot = self.inode_cache.get(ino)
        if slot is not None:
            return slot
        self.layout.check_ino(ino)
        block, offset = self.layout.inode_location(ino)
        raw = self.cache.read(block)
        inode = OnDiskInode.unpack(raw[offset : offset + INODE_SIZE])
        self.hooks.fire("inode.read", ino=ino, inode=inode)
        if inode.is_free:
            raise InvariantViolation(f"reference to free inode {ino}", check="iget-free")
        return self.inode_cache.insert(ino, inode)

    def _dirty(self, slot: CachedInode) -> None:
        self.hooks.fire("inode.dirty", ino=slot.ino, inode=slot.inode)
        slot.dirty = True

    def _new_inode(self, ftype: FileType, perms: int, parent_group: int, opseq: int, ino: int | None = None) -> CachedInode:
        if ino is None:
            ino = self.inode_alloc.allocate(parent_group, is_dir=(ftype == FileType.DIRECTORY))
        inode = OnDiskInode(
            mode=make_mode(ftype, perms),
            nlink=0,
            atime=opseq,
            mtime=opseq,
            ctime=opseq,
            generation=self.sb.write_generation,
        )
        slot = self.inode_cache.insert(ino, inode, dirty=True)
        return slot

    def _free_inode(self, slot: CachedInode) -> None:
        """Release an inode and all its blocks (nlink==0, no open fds)."""
        self._truncate_blocks(slot, 0)
        self.page_cache.drop_ino(slot.ino)
        self.inode_alloc.free(slot.ino)
        self.dentry_cache.invalidate_ino(slot.ino)
        self.hooks.fire("inode.evict", ino=slot.ino)
        # Zero the table slot so the on-disk inode reads as free.
        block, offset = self.layout.inode_location(slot.ino)
        raw = bytearray(self.cache.read(block))
        raw[offset : offset + INODE_SIZE] = b"\x00" * INODE_SIZE
        self._meta_write(block, bytes(raw), role="itable")
        self.inode_cache.remove(slot.ino)

    # ------------------------------------------------------------------
    # metadata block IO (buffer cache + role tags for validate-on-sync)

    def _meta_write(self, block: int, data: bytes, role: str) -> None:
        self._block_role[block] = role
        self.cache.write(block, data)

    def _map_reader(self) -> BlockMapReader:
        """Mapping resolver whose indirect-block reads go through the
        buffer cache (they are journaled metadata)."""
        return BlockMapReader(self.cache.read)

    # ------------------------------------------------------------------
    # path resolution

    def _root(self) -> CachedInode:
        return self._iget(self.sb.root_ino)

    def _lookup_component(self, parent: CachedInode, name: str) -> int | None:
        """One component: dentry cache, then directory scan."""
        self.hooks.fire("vfs.lookup", parent_ino=parent.ino, name=name)
        cached = self.dentry_cache.lookup(parent.ino, name)
        if cached is not None:
            return None if cached == DentryCache.NEGATIVE else cached
        entry = self._dir_find(parent, name)
        if entry is None:
            self.dentry_cache.insert_negative(parent.ino, name)
            return None
        self.dentry_cache.insert(parent.ino, name, entry.ino)
        return entry.ino

    def _resolve(self, path: str, follow_last: bool = True) -> CachedInode:
        """Full path resolution with symlink following."""
        _parent, _name, slot = self._resolve_entry(path, follow_last=follow_last)
        if slot is None:
            raise FsError(Errno.ENOENT, path)
        return slot

    def _resolve_entry(
        self, path: str, follow_last: bool = True
    ) -> tuple[CachedInode, str, CachedInode | None]:
        """Resolve to ``(parent_dir, final_name, final or None)``.

        Intermediate symlinks are always followed; the final component is
        followed iff ``follow_last`` — and when it is followed, the
        returned parent/name are those of the *resolved* location, which
        is what open-with-CREAT through a dangling symlink needs.  Raises
        ENOENT for missing intermediates, ENOTDIR when a non-dir appears
        mid-path, ELOOP on symlink cycles.  For ``/`` the root is
        returned as both parent and final, with an empty name.
        """
        components = split_path(path)
        current = self._root()
        if not components:
            return current, "", current

        depth = 0
        i = 0
        while i < len(components):
            name = components[i]
            is_last = i == len(components) - 1
            if not current.inode.is_dir:
                raise FsError(Errno.ENOTDIR, "/" + "/".join(components[:i]))
            child_ino = self._lookup_component(current, name)
            if child_ino is None:
                if is_last:
                    return current, name, None
                raise FsError(Errno.ENOENT, "/" + "/".join(components[: i + 1]))
            child = self._iget(child_ino)
            if child.inode.is_symlink and (follow_last or not is_last):
                depth += 1
                if depth > SYMLINK_DEPTH_LIMIT:
                    raise FsError(Errno.ELOOP, path)
                target = self._read_symlink(child)
                rest = components[i + 1 :]
                if target.startswith("/"):
                    target_components = split_path(target)
                    current = self._root()
                else:
                    target_components = split_path("/" + target)
                    # relative: resolved against the symlink's directory
                components = target_components + rest
                i = 0
                if not components:
                    return current, "", current
                continue
            if is_last:
                return current, name, child
            current = child
            i += 1
        raise AssertionError("unreachable")

    def _resolve_parent(self, path: str) -> tuple[CachedInode, str]:
        """Resolve the parent directory of ``path``; returns (dir, name)."""
        parents, name = parent_and_name(path)
        parent_path = "/" + "/".join(parents)
        parent = self._resolve(parent_path, follow_last=True)
        if not parent.inode.is_dir:
            raise FsError(Errno.ENOTDIR, parent_path)
        return parent, name

    def _read_symlink(self, slot: CachedInode) -> str:
        block = slot.inode.direct[0]
        if not block:
            raise InvariantViolation(f"symlink inode {slot.ino} has no target block", check="symlink-block")
        raw = self.cache.read(block)
        return raw[: slot.inode.size].decode()

    # ------------------------------------------------------------------
    # directory content

    def _dir_blocks(self, slot: CachedInode) -> list[int]:
        reader = self._map_reader()
        return [physical for _logical, physical in reader.iter_data_blocks(slot.inode)]

    def _dir_find(self, slot: CachedInode, name: str) -> DirEntry | None:
        self.hooks.fire("dir.read", dir_ino=slot.ino)
        for block in self._dir_blocks(slot):
            entry = DirBlock(self.cache.read(block)).find(name)
            if entry is not None:
                return entry
        return None

    def _dir_entries(self, slot: CachedInode) -> list[DirEntry]:
        self.hooks.fire("dir.read", dir_ino=slot.ino)
        entries: list[DirEntry] = []
        for block in self._dir_blocks(slot):
            entries.extend(DirBlock(self.cache.read(block)).entries())
        return entries

    def _dir_is_empty(self, slot: CachedInode) -> bool:
        return all(entry.name in (".", "..") for entry in self._dir_entries(slot))

    def _dir_insert_cost(self, slot: CachedInode, name: str) -> int:
        """Blocks a ``_dir_insert`` of ``name`` would allocate (0..2)."""
        for block in self._dir_blocks(slot):
            if DirBlock(self.cache.read(block)).free_space_for(name):
                return 0
        cost = 1
        logical = slot.inode.block_count()
        if logical >= N_DIRECT and not slot.inode.indirect:
            cost += 1
        if logical >= N_DIRECT + PTRS_PER_BLOCK:
            raise FsError(Errno.ENOSPC, "directory too large")
        return cost

    def _dir_insert(self, slot: CachedInode, name: str, child_ino: int, ftype: FileType, opseq: int) -> None:
        """Insert an entry; the caller has verified name absence and
        capacity (``_dir_insert_cost`` + available_blocks)."""
        self.hooks.fire("dir.insert", dir_ino=slot.ino, name=name, child_ino=child_ino)
        for block in self._dir_blocks(slot):
            dir_block = DirBlock(self.cache.read(block))
            if dir_block.insert(child_ino, name, ftype):
                self._meta_write(block, dir_block.to_block(), role="dir")
                slot.inode.mtime = opseq
                slot.inode.ctime = opseq
                self._dirty(slot)
                return
        # Grow the directory by one block.
        logical = slot.inode.block_count()
        physical = self.block_alloc.allocate(self.layout.group_of_ino(slot.ino))
        self._map_block(slot, logical, physical)
        dir_block = DirBlock()
        if not dir_block.insert(child_ino, name, ftype):
            raise AssertionError("fresh directory block rejected an entry")
        self._meta_write(physical, dir_block.to_block(), role="dir")
        slot.inode.size += BLOCK_SIZE
        slot.inode.mtime = opseq
        slot.inode.ctime = opseq
        self._dirty(slot)

    def _dir_remove(self, slot: CachedInode, name: str, opseq: int) -> None:
        self.hooks.fire("dir.remove", dir_ino=slot.ino, name=name)
        for block in self._dir_blocks(slot):
            dir_block = DirBlock(self.cache.read(block))
            if dir_block.remove(name):
                self._meta_write(block, dir_block.to_block(), role="dir")
                slot.inode.mtime = opseq
                slot.inode.ctime = opseq
                self._dirty(slot)
                return
        raise InvariantViolation(f"entry {name!r} vanished from dir {slot.ino}", check="dir-remove")

    def _dir_set_dotdot(self, slot: CachedInode, new_parent_ino: int) -> None:
        """Repoint '..' after a cross-directory rename of a directory."""
        for block in self._dir_blocks(slot):
            dir_block = DirBlock(self.cache.read(block))
            if dir_block.find("..") is not None:
                dir_block.remove("..")
                if not dir_block.insert(new_parent_ino, "..", FileType.DIRECTORY):
                    raise InvariantViolation(f"no room to repoint '..' in dir {slot.ino}", check="dotdot")
                self._meta_write(block, dir_block.to_block(), role="dir")
                return
        raise InvariantViolation(f"dir {slot.ino} has no '..' entry", check="dotdot")

    # ------------------------------------------------------------------
    # block mapping (write side; read side is BlockMapReader)

    def _map_block(self, slot: CachedInode, logical: int, physical: int, charge_reservation: bool = False) -> None:
        """Point ``logical`` at ``physical``, allocating indirect blocks
        as needed.  Indirect blocks consume their reservations when the
        commit path passes ``charge_reservation``."""
        inode = slot.inode
        if logical < N_DIRECT:
            if inode.direct[logical]:
                raise InvariantViolation(f"remap of mapped block {logical} in ino {slot.ino}", check="remap")
            inode.direct[logical] = physical
            self._dirty(slot)
            return
        index = logical - N_DIRECT
        if index < PTRS_PER_BLOCK:
            if not inode.indirect:
                inode.indirect = self._alloc_pointer_block(slot, ("ind",), charge_reservation)
                self._dirty(slot)
            pointers = unpack_pointers(self.cache.read(inode.indirect))
            if pointers[index]:
                raise InvariantViolation(f"remap of mapped block {logical} in ino {slot.ino}", check="remap")
            pointers[index] = physical
            self._meta_write(inode.indirect, pack_pointers(pointers), role="indirect")
            return
        index -= PTRS_PER_BLOCK
        if index >= PTRS_PER_BLOCK * PTRS_PER_BLOCK:
            raise FsError(Errno.EFBIG, f"logical block {logical}")
        outer_index, inner_index = divmod(index, PTRS_PER_BLOCK)
        if not inode.double_indirect:
            inode.double_indirect = self._alloc_pointer_block(slot, ("dbl",), charge_reservation)
            self._dirty(slot)
        outer = unpack_pointers(self.cache.read(inode.double_indirect))
        if not outer[outer_index]:
            outer[outer_index] = self._alloc_pointer_block(slot, ("dbl", outer_index), charge_reservation)
            self._meta_write(inode.double_indirect, pack_pointers(outer), role="indirect")
        inner = unpack_pointers(self.cache.read(outer[outer_index]))
        if inner[inner_index]:
            raise InvariantViolation(f"remap of mapped block {logical} in ino {slot.ino}", check="remap")
        inner[inner_index] = physical
        self._meta_write(outer[outer_index], pack_pointers(inner), role="indirect")

    def _alloc_pointer_block(self, slot: CachedInode, key_suffix: tuple, charge_reservation: bool) -> int:
        key = (slot.ino,) + key_suffix
        charge = charge_reservation and key in self._reserved_indirect
        block = self.block_alloc.allocate(self.layout.group_of_ino(slot.ino), charge_reservation=charge)
        if charge:
            self._reserved_indirect.discard(key)
        self._meta_write(block, bytes(BLOCK_SIZE), role="indirect")
        return block

    def _truncate_blocks(self, slot: CachedInode, keep_blocks: int) -> None:
        """Free every mapped block at logical >= keep_blocks, plus any
        indirect blocks that become empty."""
        inode = slot.inode
        for logical in range(keep_blocks, N_DIRECT):
            if inode.direct[logical]:
                self._free_block(inode.direct[logical])
                inode.direct[logical] = 0
                self._dirty(slot)
        if inode.indirect:
            start = max(0, keep_blocks - N_DIRECT)
            pointers = unpack_pointers(self.cache.read(inode.indirect))
            changed = False
            for i in range(start, PTRS_PER_BLOCK):
                if pointers[i]:
                    self._free_block(pointers[i])
                    pointers[i] = 0
                    changed = True
            if start == 0:
                self._free_block(inode.indirect)
                inode.indirect = 0
                self._dirty(slot)
            elif changed:
                self._meta_write(inode.indirect, pack_pointers(pointers), role="indirect")
        if inode.double_indirect:
            dbl_base = N_DIRECT + PTRS_PER_BLOCK
            start = max(0, keep_blocks - dbl_base)
            outer = unpack_pointers(self.cache.read(inode.double_indirect))
            outer_changed = False
            for oi in range(PTRS_PER_BLOCK):
                if not outer[oi]:
                    continue
                inner_start = max(0, start - oi * PTRS_PER_BLOCK)
                if inner_start >= PTRS_PER_BLOCK:
                    continue
                inner = unpack_pointers(self.cache.read(outer[oi]))
                inner_changed = False
                for ii in range(inner_start, PTRS_PER_BLOCK):
                    if inner[ii]:
                        self._free_block(inner[ii])
                        inner[ii] = 0
                        inner_changed = True
                if inner_start == 0:
                    self._free_block(outer[oi])
                    outer[oi] = 0
                    outer_changed = True
                elif inner_changed:
                    self._meta_write(outer[oi], pack_pointers(inner), role="indirect")
            if start == 0:
                self._free_block(inode.double_indirect)
                inode.double_indirect = 0
                self._dirty(slot)
            elif outer_changed:
                self._meta_write(inode.double_indirect, pack_pointers(outer), role="indirect")

    def _free_block(self, block: int) -> None:
        """Free a block and scrub every in-memory trace of it: a freed
        block must never reach the next journal transaction as stale
        dirty metadata."""
        self.block_alloc.free(block)
        self.cache.invalidate(block)
        self._block_role.pop(block, None)

    # ------------------------------------------------------------------
    # data IO through blkmq

    def _read_data_block(self, physical: int) -> bytes:
        request = self.blkmq.submit_read(physical)
        self.hooks.fire("blkmq.submit", op="read", block=physical)
        while not request.done:
            self.blkmq.pump()
        self.blkmq.reap()
        if request.error is not None:
            raise request.error
        self.stats.data_reads += 1
        assert request.result is not None
        return request.result

    # ------------------------------------------------------------------
    # delayed-allocation reservations

    def _reserve_for_write(self, slot: CachedInode, logicals: list[int]) -> None:
        """Take delalloc reservations for not-yet-mapped, not-yet-reserved
        logical blocks, including indirect-block overhead; all-or-nothing."""
        reader = self._map_reader()
        new_pages: list[tuple[int, int]] = []
        new_indirect: list[tuple] = []
        ino = slot.ino
        for logical in logicals:
            key = (ino, logical)
            if key in self._reserved_pages:
                continue
            if reader.resolve(slot.inode, logical):
                continue
            page = self.page_cache.lookup(ino, logical)
            if page is not None and page.dirty:
                continue  # already reserved when first dirtied
            new_pages.append(key)
            if logical >= N_DIRECT + PTRS_PER_BLOCK:
                outer_index = (logical - N_DIRECT - PTRS_PER_BLOCK) // PTRS_PER_BLOCK
                for ikey in ((ino, "dbl"), (ino, "dbl", outer_index)):
                    if ikey not in self._reserved_indirect and ikey not in new_indirect:
                        if not self._indirect_present(slot, ikey):
                            new_indirect.append(ikey)
            elif logical >= N_DIRECT:
                ikey = (ino, "ind")
                if ikey not in self._reserved_indirect and ikey not in new_indirect and not slot.inode.indirect:
                    new_indirect.append(ikey)
        needed = len(new_pages) + len(new_indirect)
        if needed:
            self.alloc.reserve(needed)  # raises ENOSPC atomically
            self._reserved_pages.update(new_pages)
            self._reserved_indirect.update(new_indirect)

    def _indirect_present(self, slot: CachedInode, key: tuple) -> bool:
        if key[1] == "dbl" and len(key) == 2:
            return bool(slot.inode.double_indirect)
        if key[1] == "dbl":
            if not slot.inode.double_indirect:
                return False
            outer = unpack_pointers(self.cache.read(slot.inode.double_indirect))
            return bool(outer[key[2]])
        return bool(slot.inode.indirect)

    def _release_page_reservations(self, ino: int, from_logical: int = 0) -> None:
        victims = [key for key in self._reserved_pages if key[0] == ino and key[1] >= from_logical]
        for key in victims:
            self._reserved_pages.discard(key)
        indirect_victims = []
        for key in self._reserved_indirect:
            if key[0] != ino:
                continue
            if key[1] == "ind" and from_logical <= N_DIRECT:
                indirect_victims.append(key)
            elif key[1] == "dbl":
                if from_logical <= N_DIRECT + PTRS_PER_BLOCK:
                    indirect_victims.append(key)
                elif len(key) == 3:
                    first_logical = N_DIRECT + PTRS_PER_BLOCK + key[2] * PTRS_PER_BLOCK
                    if from_logical <= first_logical:
                        indirect_victims.append(key)
        still_needed = {k[1] for k in self._reserved_pages if k[0] == ino}
        for key in indirect_victims:
            # Only release an indirect reservation if no remaining reserved
            # page still needs that pointer block.
            if key[1] == "ind" and any(N_DIRECT <= l < N_DIRECT + PTRS_PER_BLOCK for l in still_needed):
                continue
            if key[1] == "dbl" and len(key) == 2 and any(l >= N_DIRECT + PTRS_PER_BLOCK for l in still_needed):
                continue
            if key[1] == "dbl" and len(key) == 3:
                lo = N_DIRECT + PTRS_PER_BLOCK + key[2] * PTRS_PER_BLOCK
                if any(lo <= l < lo + PTRS_PER_BLOCK for l in still_needed):
                    continue
            self._reserved_indirect.discard(key)
        released = len(victims) + sum(
            1 for key in indirect_victims if key not in self._reserved_indirect
        )
        if released:
            self.alloc.release_reservation(released)

    # ------------------------------------------------------------------
    # commit

    def dirty_page_count(self) -> int:
        return self.page_cache.dirty_count()

    def dirty_metadata_count(self) -> int:
        return (
            len(self.cache.dirty_blocks)
            + len(self.inode_cache.dirty_inodes())
            + len(self.alloc.dirty_block_groups)
            + len(self.alloc.dirty_inode_groups)
        )

    def commit(self) -> None:
        """The single durability path: data, then journaled metadata."""
        self._require_mounted()
        self.hooks.fire("journal.commit", nblocks=self.dirty_metadata_count())

        # Phase 1 (ordered mode): allocate + write dirty data pages.
        for page in self.page_cache.dirty_pages():
            slot = self.inode_cache.get(page.ino)
            if slot is None:
                slot = self._iget(page.ino)
            reader = self._map_reader()
            physical = reader.resolve(slot.inode, page.logical)
            if not physical:
                charge = (page.ino, page.logical) in self._reserved_pages
                physical = self.block_alloc.allocate(
                    self.layout.group_of_ino(page.ino), charge_reservation=charge
                )
                if charge:
                    self._reserved_pages.discard((page.ino, page.logical))
                self._map_block(slot, page.logical, physical, charge_reservation=True)
            # Ordered mode: data pages are written *before* the metadata
            # commit on purpose, so the journaled metadata never references
            # unwritten data.  Data blocks are not journal-covered (§JBD2
            # ordered); the commit that follows in phase 4 seals them.
            self.blkmq.submit_write(physical, bytes(page.data))  # raelint: disable=JOURNAL-BEFORE-WRITE
            self.hooks.fire("blkmq.submit", op="write", block=physical)
            self.stats.data_writes += 1
            self.page_cache.mark_clean(page.ino, page.logical)
        self.blkmq.drain()
        # A completed data write can still carry a device error (the
        # read path at _read_data_block re-raises these); swallowing it
        # here would seal a journal commit whose ordered data never hit
        # the disk — silent content divergence the sweep flagged.
        for request in self.blkmq.reap():
            if request.error is not None:
                raise request.error
        self.device.flush()

        # Phase 2: serialize dirty inodes into their table blocks.
        for slot in self.inode_cache.dirty_inodes():
            block, offset = self.layout.inode_location(slot.ino)
            raw = bytearray(self.cache.read(block))
            raw[offset : offset + INODE_SIZE] = slot.inode.pack()
            self._meta_write(block, bytes(raw), role="itable")
            self.inode_cache.clean(slot.ino)

        # Phase 3: apply window frees (safe now — no further in-place data
        # writes this transaction), then serialize dirty bitmaps and the
        # superblock.
        self.block_alloc.apply_pending_frees()
        for group in sorted(self.alloc.dirty_block_groups):
            self._meta_write(
                self.layout.block_bitmap_block(group),
                self.alloc.block_bitmaps[group].to_block(),
                role="bitmap",
            )
        for group in sorted(self.alloc.dirty_inode_groups):
            self._meta_write(
                self.layout.inode_bitmap_block(group),
                self.alloc.inode_bitmaps[group].to_block(),
                role="bitmap",
            )
        self.alloc.dirty_block_groups.clear()
        self.alloc.dirty_inode_groups.clear()

        txn = {block: data for block in self.cache.dirty_blocks if (data := self.cache.peek(block)) is not None}
        if txn:
            self.sb.free_blocks = self.alloc.free_blocks
            self.sb.free_inodes = self.alloc.free_inodes
            self.sb.write_generation += 1
            self._meta_write(0, self.sb.pack(), role="sb")
            txn[0] = self.cache.peek(0)  # type: ignore[assignment]

        # Phase 4: journal + home writes (validate-on-sync inside).
        self.journal.commit(txn, self.cache)
        self.stats.commits += 1
        self.commit_epoch += 1
        self.writeback.note_commit()
        for callback in self.on_commit:
            callback(self.commit_epoch)

    def _validate_txn(self, txn: dict[int, bytes]) -> list[str]:
        """Validate-on-sync: parse every block by role, cross-check
        allocation consistency.  Returns problem strings (empty = pass)."""
        problems: list[str] = []

        # Accounting ground truth: free counters must equal the bitmaps.
        # (Comparing the superblock to the counters alone would miss bugs
        # that corrupt both in lockstep, e.g. a forgotten decrement.)
        bitmap_free_blocks = sum(bm.count_free() for bm in self.alloc.block_bitmaps)
        if bitmap_free_blocks != self.alloc.free_blocks:
            problems.append(
                f"free_blocks accounting {self.alloc.free_blocks} != bitmap count {bitmap_free_blocks}"
            )
        bitmap_free_inodes = sum(bm.count_free() for bm in self.alloc.inode_bitmaps)
        if bitmap_free_inodes != self.alloc.free_inodes:
            problems.append(
                f"free_inodes accounting {self.alloc.free_inodes} != bitmap count {bitmap_free_inodes}"
            )
        for block, data in sorted(txn.items()):
            role = "sb" if block == 0 else self._block_role.get(block, "unknown")
            try:
                if role == "sb":
                    sb = Superblock.unpack(data)
                    if sb.free_blocks != self.alloc.free_blocks:
                        problems.append(
                            f"superblock free_blocks {sb.free_blocks} != accounting {self.alloc.free_blocks}"
                        )
                elif role == "dir":
                    DirBlock(data).entries()
                elif role == "itable":
                    for offset in range(0, BLOCK_SIZE, INODE_SIZE):
                        inode = OnDiskInode.unpack(data[offset : offset + INODE_SIZE])
                        if inode.is_free:
                            continue
                        if inode.ftype == FileType.NONE:
                            problems.append(f"inode in block {block}+{offset} has invalid type")
                        if inode.size > MAX_FILE_SIZE:
                            problems.append(f"inode in block {block}+{offset} has size {inode.size}")
                        if inode.is_dir and inode.size % BLOCK_SIZE:
                            problems.append(f"dir inode in block {block}+{offset} has unaligned size")
                        if inode.nlink > 65535:
                            problems.append(f"inode in block {block}+{offset} has nlink {inode.nlink}")
                elif role == "indirect":
                    for pointer in unpack_pointers(data):
                        if pointer and not 0 < pointer < self.layout.block_count:
                            problems.append(f"indirect block {block} points at {pointer}")
                elif role == "bitmap":
                    pass  # structure-free; consistency is checked below
            except (ValueError, InvariantViolation) as exc:
                problems.append(f"block {block} ({role}): {exc}")

            # Any journaled dir/indirect/symlink block must be marked
            # allocated in the (in-memory) bitmaps.
            if role in ("dir", "indirect", "symlink") and block != 0:
                group = self.layout.group_of_block(block)
                bit = block - self.layout.group_start(group)
                if not self.alloc.block_bitmaps[group].test(bit):
                    problems.append(f"journaled {role} block {block} is not allocated in the bitmap")
        return problems

    # ------------------------------------------------------------------
    # metadata downloading (§3.2 "Hand-off back to the base")
    #
    # These are the "extensively-tested interfaces to absorb the output of
    # the shadow".  They reuse the existing machinery — buffer cache, page
    # cache, fd table, allocator state — and mark everything dirty so the
    # ordinary commit path persists it.

    def absorb_metadata(self, blocks: dict[int, bytes], roles: dict[int, str]) -> None:
        """Place shadow-produced metadata blocks into the buffer cache,
        dirty.  Block 0 is skipped: the superblock is the base's own (its
        free counts arrive via :meth:`absorb_accounting`)."""
        self._require_mounted()
        for block in sorted(blocks):
            if block == 0:
                continue
            self.layout.group_of_block(block)  # range check
            self._meta_write(block, blocks[block], role=roles.get(block, "unknown"))

    def absorb_data_pages(self, pages: dict[tuple[int, int], bytes]) -> None:
        """Install shadow-produced file data into the page cache, dirty."""
        self._require_mounted()
        for (ino, logical) in sorted(pages):
            self.page_cache.install(ino, logical, pages[(ino, logical)], dirty=True)

    def absorb_accounting(
        self,
        free_blocks: int,
        free_inodes: int,
        dirty_block_groups: set[int] | None = None,
        dirty_inode_groups: set[int] | None = None,
    ) -> None:
        """Adopt the shadow's allocation state: bitmaps are re-read through
        the buffer cache (where :meth:`absorb_metadata` just put them).
        Only the groups the shadow actually modified need re-journaling;
        callers that do not know pass None and every group is marked dirty
        (correct, just a bigger commit)."""
        self._require_mounted()
        self.alloc = AllocState.load(self.layout, self.cache.read)
        all_groups = range(self.layout.group_count)
        self.alloc.dirty_block_groups = set(dirty_block_groups if dirty_block_groups is not None else all_groups)
        self.alloc.dirty_inode_groups = set(dirty_inode_groups if dirty_inode_groups is not None else all_groups)
        self.block_alloc = BlockAllocator(self.alloc, self.hooks)
        self.inode_alloc = InodeAllocator(self.alloc, self.hooks)
        if self.alloc.free_blocks != free_blocks or self.alloc.free_inodes != free_inodes:
            raise InvariantViolation(
                f"hand-off accounting mismatch: bitmaps say {self.alloc.free_blocks}b/"
                f"{self.alloc.free_inodes}i, shadow reported {free_blocks}b/{free_inodes}i",
                check="handoff-accounting",
            )
        self.sb.free_blocks = free_blocks
        self.sb.free_inodes = free_inodes

    def absorb_fd_table(self, fds: dict[int, "FdState"]) -> None:
        """Install the reconstructed descriptor table.  Orphan semantics
        (open-but-unlinked inodes) are re-established so a later close
        frees the inode exactly as it would have."""
        self._require_mounted()
        if len(self.fd_table):
            raise InvariantViolation("fd table not empty at hand-off", check="handoff-fds")
        for fd in sorted(fds):
            state = fds[fd]
            slot = self._iget(state.ino)
            self.fd_table.install(state.snapshot())
            self.inode_cache.pin(state.ino)
            if slot.inode.nlink == 0 and state.ino not in self._orphans:
                self._orphans.add(state.ino)
                self.inode_cache.pin(state.ino)

    # ==================================================================
    # FilesystemAPI

    def mkdir(self, path: str, perms: int = 0o755, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("mkdir")
        try:
            parent, name = self._resolve_parent(path)
            self.locks.acquire(parent.ino)
            if self._lookup_component(parent, name) is not None:
                raise FsError(Errno.EEXIST, path)
            # capacity: child inode + child block + possible parent growth
            needed = 1 + self._dir_insert_cost(parent, name)
            if self.alloc.available_blocks < needed:
                raise FsError(Errno.ENOSPC, path)
            if self.alloc.free_inodes < 1:
                raise FsError(Errno.ENOSPC, path)

            child = self._new_inode(FileType.DIRECTORY, perms, self.layout.group_of_ino(parent.ino), opseq)
            block = self.block_alloc.allocate(self.layout.group_of_ino(child.ino))
            dir_block = DirBlock()
            dir_block.insert(child.ino, ".", FileType.DIRECTORY)
            dir_block.insert(parent.ino, "..", FileType.DIRECTORY)
            self._meta_write(block, dir_block.to_block(), role="dir")
            child.inode.direct[0] = block
            child.inode.size = BLOCK_SIZE
            child.inode.nlink = 2
            self._dirty(child)

            self._dir_insert(parent, name, child.ino, FileType.DIRECTORY, opseq)
            parent.inode.nlink += 1
            self._dirty(parent)
            self.dentry_cache.insert(parent.ino, name, child.ino)
        finally:
            self.locks.release_all()

    def rmdir(self, path: str, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("rmdir")
        try:
            parent, name = self._resolve_parent(path)
            self.locks.acquire(parent.ino)
            child_ino = self._lookup_component(parent, name)
            if child_ino is None:
                raise FsError(Errno.ENOENT, path)
            child = self._iget(child_ino)
            self.locks.acquire(child.ino, parent=parent.ino)
            if not child.inode.is_dir:
                raise FsError(Errno.ENOTDIR, path)
            if not self._dir_is_empty(child):
                raise FsError(Errno.ENOTEMPTY, path)
            self._dir_remove(parent, name, opseq)
            parent.inode.nlink -= 1
            self._dirty(parent)
            self.dentry_cache.invalidate(parent.ino, name)
            self.dentry_cache.invalidate_dir(child.ino)
            child.inode.nlink = 0
            self._free_inode(child)
        finally:
            self.locks.release_all()

    def unlink(self, path: str, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("unlink")
        try:
            parent, name = self._resolve_parent(path)
            self.locks.acquire(parent.ino)
            child_ino = self._lookup_component(parent, name)
            if child_ino is None:
                raise FsError(Errno.ENOENT, path)
            child = self._iget(child_ino)
            self.locks.acquire(child.ino, parent=parent.ino)
            if child.inode.is_dir:
                raise FsError(Errno.EISDIR, path)
            self._dir_remove(parent, name, opseq)
            self.dentry_cache.invalidate(parent.ino, name)
            child.inode.nlink -= 1
            child.inode.ctime = opseq
            self._dirty(child)
            if child.inode.nlink == 0:
                if self.fd_table.fds_for_ino(child.ino):
                    self._orphans.add(child.ino)
                    self.inode_cache.pin(child.ino)
                else:
                    self._release_page_reservations(child.ino)
                    self._free_inode(child)
        finally:
            self.locks.release_all()

    def rename(self, src: str, dst: str, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("rename")
        self.hooks.fire("rename", src=src, dst=dst)
        try:
            src_parent, src_name = self._resolve_parent(src)
            dst_parent, dst_name = self._resolve_parent(dst)
            self.locks.acquire_pair(src_parent.ino, dst_parent.ino)
            moving_ino = self._lookup_component(src_parent, src_name)
            if moving_ino is None:
                raise FsError(Errno.ENOENT, src)
            moving = self._iget(moving_ino)
            existing_ino = self._lookup_component(dst_parent, dst_name)

            if existing_ino == moving_ino:
                return  # POSIX: same file, do nothing
            if moving.inode.is_dir:
                # Reject moving a directory into its own subtree.
                cursor = dst_parent
                while cursor.ino != self.sb.root_ino:
                    if cursor.ino == moving_ino:
                        raise FsError(Errno.EINVAL, f"{dst} is inside {src}")
                    dotdot = self._dir_find(cursor, "..")
                    if dotdot is None:
                        raise InvariantViolation(f"dir {cursor.ino} lacks '..'", check="dotdot")
                    cursor = self._iget(dotdot.ino)
                if moving_ino == self.sb.root_ino:
                    raise FsError(Errno.EINVAL, "cannot rename /")

            existing = self._iget(existing_ino) if existing_ino is not None else None
            if existing is not None:
                if moving.inode.is_dir and not existing.inode.is_dir:
                    raise FsError(Errno.ENOTDIR, dst)
                if not moving.inode.is_dir and existing.inode.is_dir:
                    raise FsError(Errno.EISDIR, dst)
                if existing.inode.is_dir and not self._dir_is_empty(existing):
                    raise FsError(Errno.ENOTEMPTY, dst)
            else:
                needed = self._dir_insert_cost(dst_parent, dst_name)
                if self.alloc.available_blocks < needed:
                    raise FsError(Errno.ENOSPC, dst)

            # ---- mutation starts here (all checks passed) ----
            if existing is not None:
                self._dir_remove(dst_parent, dst_name, opseq)
                self.dentry_cache.invalidate(dst_parent.ino, dst_name)
                if existing.inode.is_dir:
                    dst_parent.inode.nlink -= 1
                    self._dirty(dst_parent)
                    existing.inode.nlink = 0
                    self.dentry_cache.invalidate_dir(existing.ino)
                    self._free_inode(existing)
                else:
                    existing.inode.nlink -= 1
                    existing.inode.ctime = opseq
                    self._dirty(existing)
                    if existing.inode.nlink == 0:
                        if self.fd_table.fds_for_ino(existing.ino):
                            self._orphans.add(existing.ino)
                            self.inode_cache.pin(existing.ino)
                        else:
                            self._release_page_reservations(existing.ino)
                            self._free_inode(existing)

            self._dir_remove(src_parent, src_name, opseq)
            self.dentry_cache.invalidate(src_parent.ino, src_name)
            self._dir_insert(dst_parent, dst_name, moving_ino, moving.inode.ftype, opseq)
            self.dentry_cache.insert(dst_parent.ino, dst_name, moving_ino)

            if moving.inode.is_dir and src_parent.ino != dst_parent.ino:
                self._dir_set_dotdot(moving, dst_parent.ino)
                src_parent.inode.nlink -= 1
                dst_parent.inode.nlink += 1
                self._dirty(src_parent)
                self._dirty(dst_parent)
            moving.inode.ctime = opseq
            self._dirty(moving)
        finally:
            self.locks.release_all()

    def link(self, existing: str, new: str, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("link")
        try:
            target = self._resolve(existing, follow_last=False)
            if target.inode.is_dir:
                raise FsError(Errno.EPERM, "hard link to directory")
            new_parent, new_name = self._resolve_parent(new)
            self.locks.acquire_pair(new_parent.ino, target.ino)
            if self._lookup_component(new_parent, new_name) is not None:
                raise FsError(Errno.EEXIST, new)
            needed = self._dir_insert_cost(new_parent, new_name)
            if self.alloc.available_blocks < needed:
                raise FsError(Errno.ENOSPC, new)
            self._dir_insert(new_parent, new_name, target.ino, target.inode.ftype, opseq)
            self.dentry_cache.insert(new_parent.ino, new_name, target.ino)
            target.inode.nlink += 1
            target.inode.ctime = opseq
            self._dirty(target)
        finally:
            self.locks.release_all()

    def symlink(self, target: str, path: str, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("symlink")
        self.hooks.fire("symlink", path=path, target=target)
        try:
            encoded = target.encode()
            if not target:
                raise FsError(Errno.EINVAL, "empty symlink target")
            if len(encoded) > MAX_SYMLINK_TARGET:
                raise FsError(Errno.ENAMETOOLONG, "symlink target too long")
            parent, name = self._resolve_parent(path)
            self.locks.acquire(parent.ino)
            if self._lookup_component(parent, name) is not None:
                raise FsError(Errno.EEXIST, path)
            needed = 1 + self._dir_insert_cost(parent, name)
            if self.alloc.available_blocks < needed:
                raise FsError(Errno.ENOSPC, path)
            if self.alloc.free_inodes < 1:
                raise FsError(Errno.ENOSPC, path)
            child = self._new_inode(FileType.SYMLINK, 0o777, self.layout.group_of_ino(parent.ino), opseq)
            block = self.block_alloc.allocate(self.layout.group_of_ino(child.ino))
            self._meta_write(block, encoded + b"\x00" * (BLOCK_SIZE - len(encoded)), role="symlink")
            child.inode.direct[0] = block
            child.inode.size = len(encoded)
            child.inode.nlink = 1
            self._dirty(child)
            self._dir_insert(parent, name, child.ino, FileType.SYMLINK, opseq)
            self.dentry_cache.insert(parent.ino, name, child.ino)
        finally:
            self.locks.release_all()

    def readlink(self, path: str) -> str:
        self._require_mounted()
        self.stats.count("readlink")
        slot = self._resolve(path, follow_last=False)
        if not slot.inode.is_symlink:
            raise FsError(Errno.EINVAL, path)
        return self._read_symlink(slot)

    def readdir(self, path: str) -> list[str]:
        self._require_mounted()
        self.stats.count("readdir")
        slot = self._resolve(path, follow_last=True)
        if not slot.inode.is_dir:
            raise FsError(Errno.ENOTDIR, path)
        return sorted(entry.name for entry in self._dir_entries(slot) if entry.name not in (".", ".."))

    def stat(self, path: str) -> StatResult:
        self._require_mounted()
        self.stats.count("stat")
        return self._stat_slot(self._resolve(path, follow_last=True))

    def lstat(self, path: str) -> StatResult:
        self._require_mounted()
        self.stats.count("lstat")
        return self._stat_slot(self._resolve(path, follow_last=False))

    def _stat_slot(self, slot: CachedInode) -> StatResult:
        inode = slot.inode
        return StatResult(
            ino=slot.ino,
            ftype=inode.ftype,
            size=inode.size,
            nlink=inode.nlink,
            perms=inode.perms,
            uid=inode.uid,
            gid=inode.gid,
            atime=inode.atime,
            mtime=inode.mtime,
            ctime=inode.ctime,
        )

    def truncate(self, path: str, size: int, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("truncate")
        if size < 0:
            raise FsError(Errno.EINVAL, f"negative size {size}")
        if size > MAX_FILE_SIZE:
            raise FsError(Errno.EFBIG, str(size))
        slot = self._resolve(path, follow_last=True)
        if slot.inode.is_dir:
            raise FsError(Errno.EISDIR, path)
        if slot.inode.is_symlink:
            raise FsError(Errno.EINVAL, path)
        self._truncate_slot(slot, size, opseq)

    def _truncate_slot(self, slot: CachedInode, size: int, opseq: int) -> None:
        inode = slot.inode
        old_size = inode.size
        self.hooks.fire("truncate", ino=slot.ino, old_size=old_size, new_size=size)
        if size < old_size:
            keep = (size + BLOCK_SIZE - 1) // BLOCK_SIZE
            self.page_cache.drop_ino(slot.ino, from_logical=keep)
            self._release_page_reservations(slot.ino, from_logical=keep)
            self._truncate_blocks(slot, keep)
            within = size % BLOCK_SIZE
            if within:
                # Zero the tail of the final block so a later grow reveals
                # zeros, not stale bytes.
                logical = keep - 1
                page = self._page_for_write(slot, logical, full_overwrite=False)
                page.data[within:] = b"\x00" * (BLOCK_SIZE - within)
                page.dirty = True
        inode.size = size
        inode.mtime = opseq
        inode.ctime = opseq
        self._dirty(slot)

    def open(self, path: str, flags: OpenFlags = OpenFlags.NONE, perms: int = 0o644, opseq: int = 0) -> int:
        self._require_mounted()
        self.stats.count("open")
        try:
            parent_and_name(path)  # reject "/" with EINVAL up front
            if flags & OpenFlags.CREAT and flags & OpenFlags.EXCL:
                # O_CREAT|O_EXCL: the *name* must not exist, even as a
                # dangling symlink, so resolution does not follow it.
                parent, name, found = self._resolve_entry(path, follow_last=False)
                if found is not None:
                    raise FsError(Errno.EEXIST, path)
            else:
                parent, name, found = self._resolve_entry(path, follow_last=True)
            self.locks.acquire(parent.ino)

            if found is None:
                if not flags & OpenFlags.CREAT:
                    raise FsError(Errno.ENOENT, path)
                needed = self._dir_insert_cost(parent, name)
                if self.alloc.available_blocks < needed:
                    raise FsError(Errno.ENOSPC, path)
                if self.alloc.free_inodes < 1:
                    raise FsError(Errno.ENOSPC, path)
                child = self._new_inode(FileType.REGULAR, perms, self.layout.group_of_ino(parent.ino), opseq)
                child.inode.nlink = 1
                self._dirty(child)
                self._dir_insert(parent, name, child.ino, FileType.REGULAR, opseq)
                self.dentry_cache.insert(parent.ino, name, child.ino)
            else:
                child = found
                if child.inode.is_dir:
                    raise FsError(Errno.EISDIR, path)
                if child.inode.is_symlink:
                    # Only reachable in the EXCL-less case when the final
                    # symlink could not be followed; _resolve_entry always
                    # follows, so a symlink here means follow_last=False.
                    raise FsError(Errno.ELOOP, path)

            state = self.fd_table.allocate(child.ino, flags)
            self.hooks.fire("vfs.open", path=path, flags=int(flags), ino=child.ino)
            self.inode_cache.pin(child.ino)
            if flags & OpenFlags.TRUNC and child.inode.size:
                self._truncate_slot(child, 0, opseq)
            return state.fd
        finally:
            self.locks.release_all()

    def close(self, fd: int, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("close")
        state = self.fd_table.release(fd)
        self.hooks.fire("vfs.close", fd=fd, ino=state.ino)
        self.inode_cache.unpin(state.ino)
        if state.ino in self._orphans and not self.fd_table.fds_for_ino(state.ino):
            self._orphans.discard(state.ino)
            self.inode_cache.unpin(state.ino)  # the orphan pin
            slot = self._iget(state.ino)
            self._release_page_reservations(state.ino)
            self._free_inode(slot)

    def read(self, fd: int, length: int, opseq: int = 0) -> bytes:
        self._require_mounted()
        self.stats.count("read")
        if length < 0:
            raise FsError(Errno.EINVAL, f"negative length {length}")
        state = self.fd_table.get(fd)
        slot = self._iget(state.ino)
        if slot.inode.is_dir:
            raise FsError(Errno.EISDIR, f"fd {fd}")
        start = state.offset
        end = min(slot.inode.size, start + length)
        if start >= slot.inode.size or length == 0:
            return b""
        out = bytearray()
        reader = self._map_reader()
        offset = start
        while offset < end:
            logical, within = divmod(offset, BLOCK_SIZE)
            take = min(BLOCK_SIZE - within, end - offset)
            page = self.page_cache.lookup(state.ino, logical)
            self.hooks.fire("page.read", ino=state.ino, logical=logical)
            if page is None:
                physical = reader.resolve(slot.inode, logical)
                data = self._read_data_block(physical) if physical else bytes(BLOCK_SIZE)
                page = self.page_cache.install(state.ino, logical, data, dirty=False)
                for ahead in self.page_cache.readahead_plan(state.ino, logical, slot.inode.block_count()):
                    ahead_physical = reader.resolve(slot.inode, ahead)
                    ahead_data = self._read_data_block(ahead_physical) if ahead_physical else bytes(BLOCK_SIZE)
                    self.page_cache.install(state.ino, ahead, ahead_data, dirty=False)
            else:
                self.page_cache.readahead_plan(state.ino, logical, slot.inode.block_count())
            out += page.data[within : within + take]
            offset += take
        state.offset = end
        return bytes(out)

    def _page_for_write(self, slot: CachedInode, logical: int, full_overwrite: bool) -> Page:
        page = self.page_cache.lookup(slot.ino, logical)
        if page is not None:
            return page
        if full_overwrite or logical >= slot.inode.block_count():
            data = bytes(BLOCK_SIZE)
        else:
            physical = self._map_reader().resolve(slot.inode, logical)
            data = self._read_data_block(physical) if physical else bytes(BLOCK_SIZE)
        return self.page_cache.install(slot.ino, logical, data, dirty=False)

    def write(self, fd: int, data: bytes, opseq: int = 0) -> int:
        self._require_mounted()
        self.stats.count("write")
        if not isinstance(data, (bytes, bytearray)):
            raise FsError(Errno.EINVAL, "write data must be bytes")
        state = self.fd_table.get(fd)
        slot = self._iget(state.ino)
        if slot.inode.is_dir:
            raise FsError(Errno.EISDIR, f"fd {fd}")
        if not data:
            return 0
        offset = slot.inode.size if state.flags & OpenFlags.APPEND else state.offset
        end = offset + len(data)
        if end > MAX_FILE_SIZE:
            raise FsError(Errno.EFBIG, f"write to {end}")

        first, last = offset // BLOCK_SIZE, (end - 1) // BLOCK_SIZE
        logicals = list(range(first, last + 1))
        self._reserve_for_write(slot, logicals)  # ENOSPC before any mutation

        cursor = offset
        remaining = memoryview(bytes(data))
        for logical in logicals:
            within = cursor % BLOCK_SIZE
            take = min(BLOCK_SIZE - within, end - cursor)
            full = within == 0 and take == BLOCK_SIZE
            page = self._page_for_write(slot, logical, full_overwrite=full)
            page.data[within : within + take] = remaining[:take]
            page.dirty = True
            self.hooks.fire("page.write", ino=state.ino, logical=logical)
            remaining = remaining[take:]
            cursor += take

        if end > slot.inode.size:
            slot.inode.size = end
        slot.inode.mtime = opseq
        slot.inode.ctime = opseq
        self._dirty(slot)
        state.offset = end
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int = 0, opseq: int = 0) -> int:
        self._require_mounted()
        self.stats.count("lseek")
        state = self.fd_table.get(fd)
        slot = self._iget(state.ino)
        if whence == 0:
            new = offset
        elif whence == 1:
            new = state.offset + offset
        elif whence == 2:
            new = slot.inode.size + offset
        else:
            raise FsError(Errno.EINVAL, f"whence {whence}")
        if new < 0:
            raise FsError(Errno.EINVAL, f"offset {new}")
        state.offset = new
        return new

    def fsync(self, fd: int, opseq: int = 0) -> None:
        self._require_mounted()
        self.stats.count("fsync")
        self.fd_table.get(fd)  # EBADF check
        self.commit()

    def fstat_ino(self, fd: int) -> int:
        self._require_mounted()
        return self.fd_table.get(fd).ino
