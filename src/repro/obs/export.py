"""JSON export: registry snapshots and the ``BENCH_obs.json`` artifact.

Two consumers:

* ``python -m repro.tools report --json PATH`` dumps one registry
  snapshot (see :meth:`repro.obs.metrics.Registry.snapshot` for the
  schema);
* the tier-2 benchmark suite accumulates named sections with
  :func:`record_section` and writes them all with :func:`flush_bench_obs`
  — CI uploads the resulting ``BENCH_obs.json`` as an artifact, seeding
  the perf trajectory with real numbers per run.
"""

from __future__ import annotations

import os

from repro.obs.metrics import Registry
from repro.util import atomic_write_json

BENCH_OBS_ENV = "BENCH_OBS_PATH"
BENCH_OBS_DEFAULT = "BENCH_obs.json"
BENCH_OBS_SCHEMA = 1

_sections: dict[str, dict] = {}


def write_snapshot(path: str, registry: Registry, meta: dict | None = None) -> str:
    """Write one registry snapshot (plus optional metadata) as JSON.

    Crash-safe like every committed artifact: serialized first, then
    written to a sibling temp file and :func:`os.replace`d into place —
    a crash (or an unserializable ``meta``) can never truncate or
    clobber an existing snapshot."""
    payload = {"meta": meta or {}, "snapshot": registry.snapshot()}
    atomic_write_json(path, payload)
    return path


def record_section(name: str, registry: Registry, extra: dict | None = None) -> None:
    """Stage one benchmark's observability section for the next flush."""
    _sections[name] = {"extra": extra or {}, "snapshot": registry.snapshot()}


def flush_bench_obs(path: str | None = None) -> str:
    """Write all staged sections to ``BENCH_obs.json`` (or ``path`` /
    ``$BENCH_OBS_PATH``) and clear the staging area.

    Crash-safe: the payload is written to a sibling temp file and
    :func:`os.replace`d into place, so an interrupted benchmark run can
    never leave a truncated artifact — readers see either the previous
    complete file or the new one.  Sections are sorted at flush time
    (the module-global staging dict's insertion order is irrelevant),
    and the staging area is cleared even when the write fails, so a
    botched flush cannot leak stale sections into the next run.
    """
    target = path or os.environ.get(BENCH_OBS_ENV) or BENCH_OBS_DEFAULT
    payload = {"schema": BENCH_OBS_SCHEMA, "sections": dict(sorted(_sections.items()))}
    try:
        atomic_write_json(target, payload)
    finally:
        _sections.clear()
    return target
