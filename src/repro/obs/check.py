"""Schema gate for the ``BENCH_obs.json`` perf-trajectory artifact.

``make bench-obs`` and the CI ``obs-smoke`` job both end with::

    python -m repro.obs.check [BENCH_obs.json]

which **fails** (exit 1) — rather than silently skipping — when the
artifact is missing, is not valid JSON, declares the wrong ``schema``,
or carries no sections.  An empty perf trajectory should be loud: every
green run must contribute a real datapoint.
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import BENCH_OBS_DEFAULT, BENCH_OBS_SCHEMA


def check_payload(payload) -> list[str]:
    """Validate one parsed artifact; returns a list of problems."""
    if not isinstance(payload, dict):
        return [f"top-level value must be a JSON object, got {type(payload).__name__}"]
    problems = []
    if payload.get("schema") != BENCH_OBS_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, expected {BENCH_OBS_SCHEMA}")
    sections = payload.get("sections")
    if not isinstance(sections, dict) or not sections:
        problems.append("sections is missing or empty — the run produced no datapoints")
    else:
        for name in sorted(sections):
            section = sections[name]
            if not isinstance(section, dict) or "snapshot" not in section:
                problems.append(f"section {name!r} carries no registry snapshot")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else BENCH_OBS_DEFAULT
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON (truncated write?): {exc}", file=sys.stderr)
        return 1
    problems = check_payload(payload)
    if problems:
        for problem in problems:
            print(f"error: {path}: {problem}", file=sys.stderr)
        return 1
    print(f"{path}: ok ({len(payload['sections'])} sections, schema {BENCH_OBS_SCHEMA})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
