"""Schema gate for the committed benchmark artifacts.

``make bench-obs``, ``make bench-hotpath``, and the CI smoke jobs all
end with::

    python -m repro.obs.check [ARTIFACT ...]

which **fails** (exit 1) — rather than silently skipping — when any
artifact is missing, is not valid JSON, declares the wrong ``schema``,
or carries no datapoints.  An empty perf trajectory should be loud:
every green run must contribute a real datapoint.

Two artifact kinds, each with its own validator:

* ``BENCH_obs.json`` — named observability sections, each a registry
  snapshot (:mod:`repro.obs.export`);
* ``BENCH_hotpath.json`` — the ``rae-bench`` throughput artifact: per
  workload mix, ops/sec, latency percentiles, and the per-layer
  self-time breakdown from :mod:`repro.obs.prof`.

The kind is picked by filename (``BENCH_obs*`` / ``BENCH_hotpath*``)
with a content sniff as fallback (``"sections"`` vs ``"mixes"``), so
renamed copies in CI artifact stores still validate.
"""

from __future__ import annotations

import json
import os.path
import sys

from repro.obs.export import BENCH_OBS_DEFAULT, BENCH_OBS_SCHEMA
from repro.obs.prof import LAYERS

BENCH_HOTPATH_ENV = "BENCH_HOTPATH_PATH"
BENCH_HOTPATH_DEFAULT = "BENCH_hotpath.json"
BENCH_HOTPATH_SCHEMA = 1
#: ``make bench-hotpath`` must cover at least the four canonical mixes
#: (read/write/create-unlink/lookup-heavy); a partial ``--mix`` run is
#: a local experiment, not a trajectory datapoint.
MIN_HOTPATH_MIXES = 4

_PERCENTILE_KEYS = ("p50", "p95", "p99")
_LAYER_KEYS = ("self_seconds", "calls", "share") + _PERCENTILE_KEYS


def check_payload(payload) -> list[str]:
    """Validate one parsed ``BENCH_obs.json``; returns problems."""
    if not isinstance(payload, dict):
        return [f"top-level value must be a JSON object, got {type(payload).__name__}"]
    problems = []
    if payload.get("schema") != BENCH_OBS_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, expected {BENCH_OBS_SCHEMA}")
    sections = payload.get("sections")
    if not isinstance(sections, dict) or not sections:
        problems.append("sections is missing or empty — the run produced no datapoints")
    else:
        for name in sorted(sections):
            section = sections[name]
            if not isinstance(section, dict) or "snapshot" not in section:
                problems.append(f"section {name!r} carries no registry snapshot")
    return problems


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_hotpath_payload(payload) -> list[str]:
    """Validate one parsed ``BENCH_hotpath.json``; returns problems."""
    if not isinstance(payload, dict):
        return [f"top-level value must be a JSON object, got {type(payload).__name__}"]
    problems = []
    if payload.get("schema") != BENCH_HOTPATH_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {BENCH_HOTPATH_SCHEMA}"
        )
    meta = payload.get("meta")
    if not isinstance(meta, dict) or not _number(meta.get("calibration_score")):
        problems.append("meta.calibration_score missing — the ratchet cannot normalize")
    mixes = payload.get("mixes")
    if not isinstance(mixes, dict) or not mixes:
        return problems + ["mixes is missing or empty — the run produced no datapoints"]
    if len(mixes) < MIN_HOTPATH_MIXES:
        problems.append(
            f"only {len(mixes)} mixes, expected at least {MIN_HOTPATH_MIXES} "
            "(partial --mix runs are not trajectory datapoints)"
        )
    for name in sorted(mixes):
        mix = mixes[name]
        if not isinstance(mix, dict):
            problems.append(f"mix {name!r} is not an object")
            continue
        if not isinstance(mix.get("ops"), int) or mix["ops"] <= 0:
            problems.append(f"mix {name!r}: ops missing or not a positive integer")
        if not _number(mix.get("ops_per_second")) or mix.get("ops_per_second", 0) <= 0:
            problems.append(f"mix {name!r}: ops_per_second missing or not positive")
        latency = mix.get("latency_seconds")
        if not isinstance(latency, dict) or any(
            key not in latency for key in _PERCENTILE_KEYS
        ):
            problems.append(f"mix {name!r}: latency_seconds must carry p50/p95/p99")
        layers = mix.get("layers")
        if not isinstance(layers, dict) or set(layers) != set(LAYERS):
            problems.append(
                f"mix {name!r}: layers must be exactly {sorted(LAYERS)}"
            )
        else:
            for layer in sorted(layers):
                entry = layers[layer]
                if not isinstance(entry, dict) or any(
                    key not in entry for key in _LAYER_KEYS
                ):
                    problems.append(
                        f"mix {name!r}: layer {layer!r} must carry {list(_LAYER_KEYS)}"
                    )
    return problems


#: artifact kind -> (validator, summary formatter)
_VALIDATORS = {
    "obs": (
        check_payload,
        lambda payload: f"{len(payload['sections'])} sections, schema {BENCH_OBS_SCHEMA}",
    ),
    "hotpath": (
        check_hotpath_payload,
        lambda payload: f"{len(payload['mixes'])} mixes, schema {BENCH_HOTPATH_SCHEMA}",
    ),
}


def detect_kind(path: str, payload) -> str | None:
    """Pick a validator: filename first, content keys as fallback."""
    basename = os.path.basename(path)
    if basename.startswith("BENCH_obs"):
        return "obs"
    if basename.startswith("BENCH_hotpath"):
        return "hotpath"
    if isinstance(payload, dict):
        if "sections" in payload:
            return "obs"
        if "mixes" in payload:
            return "hotpath"
    return None


def check_file(path: str) -> tuple[list[str], str]:
    """Load and validate one artifact; returns ``(problems, summary)``
    where ``summary`` describes a clean artifact for the ok line."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"], ""
    except json.JSONDecodeError as exc:
        return [f"{path} is not valid JSON (truncated write?): {exc}"], ""
    kind = detect_kind(path, payload)
    if kind is None:
        return [
            f"{path}: unrecognized artifact (expected BENCH_obs-style "
            "'sections' or BENCH_hotpath-style 'mixes')"
        ], ""
    validator, summarize = _VALIDATORS[kind]
    problems = [f"{path}: {problem}" for problem in validator(payload)]
    return problems, "" if problems else summarize(payload)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    paths = args if args else [BENCH_OBS_DEFAULT]
    failed = False
    for path in paths:
        problems, summary = check_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok ({summary})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
