"""Span-based tracing for the recovery timeline.

A :class:`Tracer` keeps a stack of open spans and a bounded deque of
completed-or-open :class:`SpanEvent` records.  The supervisor opens a
``recovery`` span around each :meth:`_recover` call and the recovery
coordinator opens child spans for each phase (reboot → replay →
handoff), with ``recovery.post-commit`` wrapping the hand-off commit —
so a nested recovery (a bug during that commit) shows up as a deeper
``recovery`` span *inside* its parent's ``post-commit``, which is
exactly the structure ``timeline()`` renders.

Spans are appended on *enter* (end filled in on exit) so a timeline is
meaningful even if a phase raises: the failing span is present, its
``error`` attribute names the exception type, and its ``end`` is still
stamped by the ``finally``.

The tracer never runs inside the shadow: replay is instrumented from
outside, by the code that calls it (REPLAY-DETERMINISM bans ``time.*``
in the replay closure).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

Clock = Callable[[], float]


@dataclass
class SpanEvent:
    """One span: a named, timed, attributed interval at a nesting depth."""

    name: str
    start: float
    depth: int
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class Tracer:
    def __init__(self, clock: Clock = time.perf_counter, enabled: bool = True, limit: int = 4096):
        if limit <= 0:
            raise ValueError(f"span limit must be positive, got {limit}")
        self.clock: Clock = clock
        self.enabled = enabled
        self.limit = limit
        self.events: deque[SpanEvent] = deque(maxlen=limit)
        self._stack: list[SpanEvent] = []

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[SpanEvent | None]:
        """Open a span for the duration of the ``with`` body.

        Disabled tracers yield ``None`` and record nothing.  If the body
        raises, the span is kept, stamped with its end time, and tagged
        ``error=<exception type name>``.
        """
        if not self.enabled:
            yield None
            return
        event = SpanEvent(name=name, start=self.clock(), depth=len(self._stack), attrs=attrs)
        self.events.append(event)
        self._stack.append(event)
        try:
            yield event
        except BaseException as exc:  # raelint: disable=ERRNO-DISCIPLINE — span bookkeeping only: the exception is re-raised untouched for the detector
            event.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            event.end = self.clock()
            self._stack.pop()

    def reset(self) -> None:
        """Drop recorded events (open spans on the stack are kept)."""
        self.events.clear()

    def timeline(self) -> str:
        """Indented human-readable rendering of the recorded spans."""
        lines = []
        for event in self.events:
            duration = event.duration
            timing = f"{duration * 1000:.3f} ms" if duration is not None else "(open)"
            detail = "".join(
                f" {key}={value}" for key, value in event.attrs.items() if value is not None
            )
            lines.append(f"{'  ' * event.depth}{event.name}  {timing}{detail}")
        return "\n".join(lines)
