"""Zero-dependency metrics: counters, gauges, log-scale histograms.

The observability layer lives entirely *outside* the replay closure:
nothing under ``repro.shadowfs`` or ``repro.spec`` may import it (the
SHADOW-PURITY lint rule and ``tests/test_obs.py`` both enforce this),
because the shadow must stay deterministic and instrumentation-free —
REPLAY-DETERMINISM bans ``time.*`` anywhere replay can reach.

Design points:

* **Injected monotonic clock.**  The :class:`Registry` takes a ``clock``
  callable (default :func:`time.perf_counter`) and hands it to every
  latency measurement and span.  Tests inject a fake clock and get
  bit-exact timings.
* **Disabled means free.**  A disabled registry hands out shared
  null instruments whose methods are no-ops; the supervisor additionally
  guards its hot-path instrumentation on a single cached boolean, so
  ``RAEConfig(metrics=False)`` costs one attribute test per operation.
* **Pull, don't push.**  Subsystems that must stay import-clean (the
  base filesystem, caches, block devices) are never instrumented
  in-place; the supervisor registers *collector* callbacks that read
  their existing stats dataclasses at snapshot time.
* **Fixed log-scale buckets.**  :class:`Histogram` precomputes its
  bucket boundaries (``lo * factor**i``) once and places observations
  with :func:`bisect.bisect_left`, so recording is O(log #buckets) with
  no allocation.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable

Clock = Callable[[], float]


class Counter:
    """A monotonically increasing count (events, errnos, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value that can go up or down (queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed log-scale buckets with ``le`` (less-or-equal) semantics.

    Boundaries are ``lo * factor**i`` for ``i in range(buckets)``; an
    observation lands in the first bucket whose boundary is >= the
    value, or in the ``+inf`` overflow bucket past the last boundary.
    The defaults (1 µs × 2ⁿ, 24 buckets) span 1 µs to ~8.4 s — the full
    range of per-op latencies and recovery phases seen in this repo.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "overflow", "count", "sum", "min", "max")

    def __init__(self, name: str, lo: float = 1e-6, factor: float = 2.0, buckets: int = 24):
        if lo <= 0 or factor <= 1 or buckets < 1:
            raise ValueError(f"bad histogram shape: lo={lo} factor={factor} buckets={buckets}")
        self.name = name
        self.boundaries = [lo * factor**i for i in range(buckets)]
        self.bucket_counts = [0] * buckets
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect_left(self.boundaries, value)
        if index >= len(self.boundaries):
            self.overflow += 1
        else:
            self.bucket_counts[index] += 1

    def percentile(self, q: float) -> float | None:
        """Estimated q-quantile (``0 < q <= 1``) from the bucket counts.

        No raw samples are kept, so this interpolates linearly inside
        the bucket holding the target rank and clamps to the observed
        ``min``/``max`` — exact at the extremes, within one log-scale
        bucket everywhere else.  ``None`` when nothing was observed.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        estimate = None
        for boundary, bucket_count in zip(self.boundaries, self.bucket_counts):
            if bucket_count:
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank:
                    fraction = (rank - previous) / bucket_count
                    estimate = lower + (boundary - lower) * fraction
                    break
            lower = boundary
        if estimate is None:
            # Rank lands in the +inf overflow bucket: max is the best bound.
            estimate = self.max
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        Requires identical bucket boundaries (all per-op latency
        histograms share the registry defaults) — the benchmark harness
        merges every ``op.latency.*`` histogram into one mix-level
        distribution before reading percentiles."""
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries: "
                f"{self.name!r} vs {other.name!r}"
            )
        self.count += other.count
        self.sum += other.sum
        self.overflow += other.overflow
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def snapshot(self) -> dict:
        buckets = [
            [f"{boundary:.9g}", count]
            for boundary, count in zip(self.boundaries, self.bucket_counts)
        ]
        buckets.append(["+inf", self.overflow])
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": buckets,
        }


class _NullCounter(Counter):
    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", lo=1.0, factor=2.0, buckets=1)

Collector = Callable[[], dict]


@dataclass
class _CollectorEntry:
    prefix: str
    fn: Collector = field(repr=False)


class Registry:
    """Get-or-create instrument store plus pull-based collectors.

    ``snapshot()`` merges three sources: push instruments (counters,
    gauges, histograms the supervisor updates inline), collector
    callbacks (subsystem stats read on demand), and the tracer's span
    events.  ``to_json()`` is the export format documented in
    docs/OBSERVABILITY.md.
    """

    def __init__(self, enabled: bool = True, clock: Clock = time.perf_counter):
        from repro.obs.events import EventLog
        from repro.obs.trace import Tracer

        self.enabled = enabled
        self.clock: Clock = clock
        self.tracer = Tracer(clock=clock, enabled=enabled)
        # Correlated structured events share the tracer's clock so
        # `rae-report timeline` can merge both streams causally.
        self.events = EventLog(clock=clock, enabled=enabled)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[_CollectorEntry] = []

    # -- instruments ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, lo: float = 1e-6, factor: float = 2.0, buckets: int = 24) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, lo=lo, factor=factor, buckets=buckets)
        return instrument

    def histograms(self, prefix: str = "") -> list[Histogram]:
        """Every live histogram whose name starts with ``prefix``, in
        name order (the benchmark harness merges ``op.latency.``)."""
        return [
            self._histograms[name]
            for name in sorted(self._histograms)
            if name.startswith(prefix)
        ]

    # -- collectors ----------------------------------------------------

    def register_collector(self, prefix: str, fn: Collector) -> None:
        """Register a pull callback; its dict is namespaced under
        ``prefix.`` in every snapshot.  Re-registering a prefix replaces
        the previous callback (the supervisor re-registers on reboot)."""
        self._collectors = [e for e in self._collectors if e.prefix != prefix]
        self._collectors.append(_CollectorEntry(prefix=prefix, fn=fn))

    def collect(self) -> dict:
        merged: dict = {}
        for entry in self._collectors:
            for key, value in entry.fn().items():
                merged[f"{entry.prefix}.{key}"] = value
        return merged

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "enabled": self.enabled,
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(self._histograms.items())},
            "collected": dict(sorted(self.collect().items())),
            "spans": [event.as_dict() for event in self.tracer.events],
            "events": self.events.snapshot(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
