"""Layer-attribution profiling for the supervisor's op hot path.

:class:`LayerProfiler` decomposes every operation's wall time into
*self-time* per layer of the stack — ``api`` (supervisor dispatch) →
``vfs`` (path/dentry/fd logic in :class:`BaseFilesystem`) →
``pagecache`` (page + buffer caches) → ``journal`` → ``writeback`` →
``blkmq`` → ``device`` — by wrapping the live methods of the supervisor
side only.  Nothing under ``repro.shadowfs`` or ``repro.spec`` is
touched (SHADOW-PURITY): the shadow and the spec model stay
instrumentation-free, and the wrapping is runtime ``setattr`` on
instances the supervisor already owns, so no base-layer module gains an
``repro.obs`` import.

The per-layer self-times are the measurement every ROADMAP item 2
optimization is judged against; ``rae-bench`` aggregates them into the
``BENCH_hotpath.json`` artifact and ``rae-report hotpath`` renders the
breakdown.
"""

from repro.obs.prof.profiler import LAYERS, LayerProfiler

__all__ = ["LAYERS", "LayerProfiler"]
