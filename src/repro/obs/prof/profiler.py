"""The layer-attribution profiler: self-time per stack layer, per op.

Classic profiler accounting over a supervisor-side span stack.  Every
wrapped method pushes a ``[layer, mark]`` frame; *self-time* is the
wall time a frame spends as the top of the stack, so a parent is never
charged for its children:

* on **push**, the running (top) frame is charged ``now - mark`` and
  the new frame starts with ``mark = now``;
* on **pop**, the finishing frame is charged ``now - mark`` and the
  newly exposed frame's ``mark`` is reset to ``now``.

When the stack empties the operation is over: the per-op accumulator
is folded into the cumulative per-layer totals and one observation per
touched layer lands in a ``layer.self.<layer>`` log-scale histogram,
so the artifact gets p50/p95/p99 *of per-op self-time* per layer.

Attachment is runtime ``setattr`` on live instances — the supervisor,
its base filesystem's subsystems, and the block device — never a
module-level import into the base layers, so the pull-don't-push
discipline (docs/OBSERVABILITY.md) and SHADOW-PURITY both hold.  A
contained reboot swaps in a fresh base with unwrapped subsystems; the
profiler registers an ``on_reboot`` callback to re-wrap the new base
(the device instance survives reboots and stays wrapped).
"""

from __future__ import annotations

from typing import Callable

LAYERS = ("api", "vfs", "pagecache", "journal", "writeback", "blkmq", "device")

# Per-op self-times start around single-digit microseconds and recovery
# episodes can push an op's device share past a second: 0.1 µs × 2ⁿ over
# 30 buckets spans 0.1 µs to ~53 s.
_HIST_LO = 1e-7
_HIST_BUCKETS = 30

_WRAP_MARKER = "__rae_layer_wrapper__"

# (attribute name, layer) wrap plans per wrapped object kind.
_VFS_OPS = (
    "mkdir", "rmdir", "unlink", "rename", "link", "symlink", "readlink",
    "readdir", "stat", "lstat", "truncate", "open", "close", "read",
    "write", "lseek", "fsync", "fstat_ino", "unmount",
)
_PAGECACHE_METHODS = ("lookup", "install", "dirty_pages", "mark_clean", "drop_ino")
_BUFFERCACHE_METHODS = ("read", "write", "writeback", "writeback_some", "sync")
_BLKMQ_METHODS = ("submit", "pump", "drain", "reap")
_DEVICE_METHODS = ("read_block", "write_block", "flush")


class LayerProfiler:
    """Decompose op wall time into per-layer self-time (see module doc).

    ``registry`` supplies the injected monotonic clock and the
    histogram store — tests pass a fake-clock :class:`Registry` and get
    bit-exact attributions.
    """

    def __init__(self, registry):
        self.registry = registry
        self.clock: Callable[[], float] = registry.clock
        self.self_seconds: dict[str, float] = {layer: 0.0 for layer in LAYERS}
        self.calls: dict[str, int] = {layer: 0 for layer in LAYERS}
        self.ops = 0
        self._stack: list[list] = []
        self._op_self: dict[str, float] = {}
        self._wrapped: list[tuple[object, str, object, bool]] = []
        self._base_wrapped: list[tuple[object, str, object, bool]] = []
        self._hists = {
            layer: registry.histogram(
                f"layer.self.{layer}", lo=_HIST_LO, buckets=_HIST_BUCKETS
            )
            for layer in LAYERS
        }
        self._fs = None

    # -- wrapping ------------------------------------------------------

    def _wrap(self, records: list, obj: object, name: str, layer: str) -> None:
        original = getattr(obj, name, None)
        if original is None or getattr(original, _WRAP_MARKER, False):
            return
        had_instance_attr = name in getattr(obj, "__dict__", {})
        clock = self.clock
        stack = self._stack
        acc = self._op_self
        calls = self.calls

        def wrapper(*args, **kwargs):
            now = clock()
            if stack:
                top = stack[-1]
                acc[top[0]] = acc.get(top[0], 0.0) + (now - top[1])
            frame = [layer, now]
            stack.append(frame)
            calls[layer] += 1
            try:
                return original(*args, **kwargs)
            finally:
                now = clock()
                acc[layer] = acc.get(layer, 0.0) + (now - frame[1])
                stack.pop()
                if stack:
                    stack[-1][1] = now
                else:
                    self._flush_op()

        setattr(wrapper, _WRAP_MARKER, True)
        setattr(obj, name, wrapper)
        records.append((obj, name, original, had_instance_attr))

    @staticmethod
    def _unwrap(records: list) -> None:
        while records:
            obj, name, original, had_instance_attr = records.pop()
            if had_instance_attr:
                setattr(obj, name, original)
            else:
                try:
                    delattr(obj, name)  # fall back to the class attribute
                except AttributeError:
                    setattr(obj, name, original)

    def _flush_op(self) -> None:
        self.ops += 1
        acc = self._op_self
        totals = self.self_seconds
        hists = self._hists
        for layer, seconds in acc.items():
            totals[layer] += seconds
            hists[layer].observe(seconds)
        acc.clear()

    def _wrap_base(self, base) -> None:
        for name in _VFS_OPS:
            self._wrap(self._base_wrapped, base, name, "vfs")
        # commit is the writeback path's entry (fsync/tick/scrub all
        # funnel there); the journal and home-write costs nested inside
        # it are charged to their own layers.
        self._wrap(self._base_wrapped, base, "commit", "writeback")
        self._wrap(self._base_wrapped, base.writeback, "tick", "writeback")
        self._wrap(self._base_wrapped, base.journal, "commit", "journal")
        for name in _PAGECACHE_METHODS:
            self._wrap(self._base_wrapped, base.page_cache, name, "pagecache")
        for name in _BUFFERCACHE_METHODS:
            self._wrap(self._base_wrapped, base.cache, name, "pagecache")
        for name in _BLKMQ_METHODS:
            self._wrap(self._base_wrapped, base.blkmq, name, "blkmq")

    def _on_reboot(self, new_base) -> None:
        """Contained reboot: the old base's wrapped objects are dead;
        re-wrap the fresh base's layer objects in place."""
        self._unwrap(self._base_wrapped)
        self._wrap_base(new_base)

    # -- public API ----------------------------------------------------

    def attach(self, fs) -> None:
        """Wrap a live :class:`RAEFilesystem` (supervisor dispatch, its
        base's layers, and the block device) and follow reboots."""
        if self._fs is not None:
            raise ValueError("LayerProfiler is already attached")
        self._fs = fs
        self._wrap(self._wrapped, fs, "_call", "api")
        self._wrap(self._wrapped, fs, "unmount", "api")
        for name in _DEVICE_METHODS:
            self._wrap(self._wrapped, fs.device, name, "device")
        self._wrap_base(fs.base)
        fs.on_reboot.append(self._on_reboot)

    def detach(self) -> None:
        """Restore every wrapped method and stop following reboots."""
        fs = self._fs
        if fs is None:
            return
        self._unwrap(self._base_wrapped)
        self._unwrap(self._wrapped)
        if self._on_reboot in fs.on_reboot:
            fs.on_reboot.remove(self._on_reboot)
        self._fs = None
        self._stack.clear()
        self._op_self.clear()

    # -- export --------------------------------------------------------

    def collector_snapshot(self) -> dict:
        """Flat dict for the registry's ``prof.`` collector namespace."""
        snap: dict = {"ops": self.ops}
        for layer in LAYERS:
            snap[f"{layer}.self_seconds"] = self.self_seconds[layer]
            snap[f"{layer}.calls"] = self.calls[layer]
        return snap

    def layer_summary(self) -> dict:
        """Per-layer breakdown with a deterministic schema: every layer
        is always present, with per-op self-time percentiles from the
        ``layer.self.*`` histograms (``None`` before any op)."""
        total = sum(self.self_seconds.values())
        summary = {}
        for layer in LAYERS:
            hist = self._hists[layer]
            seconds = self.self_seconds[layer]
            summary[layer] = {
                "self_seconds": seconds,
                "calls": self.calls[layer],
                "share": (seconds / total) if total > 0 else 0.0,
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
                "p99": hist.percentile(0.99),
            }
        return summary
