"""Forensic bundles: one inspectable JSON artifact per recovery.

On every recovery — successful or failed — the supervisor assembles a
**bundle**: the frozen pre-detection flight ring, the triggering
operation's correlation id and fault record, per-phase timings, the
constrained-mode cross-check divergence table, and the correlated
events emitted during the episode.  Together with ``rae-report bundle``
(pretty-printer) and ``rae-report timeline`` (span+event merge) this
turns every injected-fault scenario into a replayable, explainable
record rather than a counter increment.

Two placement rules keep the shadow pure:

* the **cross-check capture** rows are produced at the
  :class:`~repro.shadowfs.replay.ReplayEngine` call boundary — the
  recovery layer subclasses the engine and feeds a
  :class:`CrossCheckCapture` sink; the engine itself gains only a
  comparison seam and never imports this module;
* the **flight ring** is frozen by the supervisor *before* the
  contained reboot discards the failed base's state.

Bundle JSON schema (``schema`` = :data:`BUNDLE_SCHEMA`) is documented
in docs/OBSERVABILITY.md.  This module is pure stdlib on purpose: a
bundle must be loadable anywhere, including from a checkout that can't
import the filesystem stack.
"""

from __future__ import annotations

import json
from typing import Any

from repro.util import atomic_write_json

#: Version stamp for the bundle JSON layout.
BUNDLE_SCHEMA = 1

#: Keys every bundle must carry to be considered well-formed.
_REQUIRED_KEYS = ("schema", "outcome", "trigger", "phases", "crosschecks")

#: Cap on captured cross-check rows (the replay window is bounded by the
#: commit cadence, but a pathological window must not be).
DEFAULT_CROSSCHECK_LIMIT = 256

_VALUE_LIMIT = 80


def _brief_value(value: Any) -> str | None:
    """Bounded, JSON-safe rendering of an operation's return value."""
    if value is None:
        return None
    if isinstance(value, (bytes, bytearray)):
        return f"<{len(value)} bytes>"
    text = repr(value)
    if len(text) > _VALUE_LIMIT:
        text = text[: _VALUE_LIMIT - 3] + "..."
    return text


class CrossCheckCapture:
    """Per-op divergence table for constrained-mode replay.

    ``note`` receives every (record, replayed) pair the engine
    cross-checks — duck-typed: ``record`` has ``seq``/``op``/``outcome``
    and the outcomes are :class:`~repro.api.OpResult`-shaped — and keeps
    a bounded table of expected vs. observed return value / inode /
    errno, flagged ``match``/divergent.
    """

    def __init__(self, limit: int = DEFAULT_CROSSCHECK_LIMIT):
        if limit <= 0:
            raise ValueError(f"crosscheck capture limit must be positive, got {limit}")
        self.limit = limit
        self.rows: list[dict] = []
        self.captured = 0

    def note(self, record, replayed) -> None:
        self.captured += 1
        if len(self.rows) >= self.limit:
            return
        expected = record.outcome
        self.rows.append(
            {
                "corr_id": record.seq,
                "op": record.op.describe(),
                "expected": self._side(expected),
                "observed": self._side(replayed),
                "match": expected.same_outcome_as(replayed),
            }
        )

    @staticmethod
    def _side(outcome) -> dict:
        return {
            "value": _brief_value(outcome.value),
            "ino": outcome.ino,
            "errno": outcome.errno.name if outcome.errno is not None else None,
        }

    @property
    def dropped(self) -> int:
        return max(0, self.captured - len(self.rows))

    @property
    def divergent(self) -> list[dict]:
        return [row for row in self.rows if not row["match"]]

    def as_dict(self) -> dict:
        return {
            "rows": list(self.rows),
            "captured": self.captured,
            "dropped": self.dropped,
            "divergent": len(self.divergent),
        }


# ---------------------------------------------------------------------------
# Bundle assembly and storage


def build_bundle(
    *,
    outcome: str,
    trigger: dict,
    window: dict | None,
    flight: dict | None,
    phases: dict,
    replay: dict | None,
    crosschecks: dict,
    events: list[dict],
    nesting: int = 0,
    failure: dict | None = None,
) -> dict:
    """Assemble one recovery's forensic bundle (a plain JSON-able dict).

    ``outcome`` covers the §3.2 procedure (reboot → replay → handoff);
    a later post-commit failure surfaces as its own detection and, if it
    recovers, its own bundle.
    """
    if outcome not in ("success", "failure"):
        raise ValueError(f"bundle outcome must be success|failure, got {outcome!r}")
    bundle = {
        "schema": BUNDLE_SCHEMA,
        "outcome": outcome,
        "trigger": trigger,
        "window": window,
        "flight": flight,
        "phases": phases,
        "replay": replay,
        "crosschecks": crosschecks,
        "events": events,
        "nesting": nesting,
    }
    if failure is not None:
        bundle["failure"] = failure
    return bundle


class BundleStore:
    """Bounded supervisor-lifetime store of forensic bundles."""

    def __init__(self, limit: int = 16):
        if limit <= 0:
            raise ValueError(f"bundle store limit must be positive, got {limit}")
        self.limit = limit
        self.bundles: list[dict] = []
        self.built = 0

    def add(self, bundle: dict) -> None:
        self.built += 1
        self.bundles.append(bundle)
        if len(self.bundles) > self.limit:
            del self.bundles[0]

    @property
    def last(self) -> dict | None:
        return self.bundles[-1] if self.bundles else None

    @property
    def dropped(self) -> int:
        return max(0, self.built - len(self.bundles))


def write_bundle(path: str, bundle: dict) -> str:
    """Write one bundle as JSON, atomically (temp file + rename)."""
    return atomic_write_json(path, bundle)


def load_bundle(path: str) -> dict:
    """Load and validate a bundle file.

    Raises ``OSError`` when the file is unreadable and ``ValueError``
    when it is not a well-formed bundle (corrupt JSON, wrong shape, or
    unknown schema) — the CLI maps both to exit code 2.
    """
    with open(path, "r", encoding="utf-8") as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: bundle must be a JSON object, got {type(payload).__name__}")
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise ValueError(f"{path}: not a forensic bundle (missing {', '.join(missing)})")
    if payload["schema"] != BUNDLE_SCHEMA:
        raise ValueError(f"{path}: unsupported bundle schema {payload['schema']!r} (expected {BUNDLE_SCHEMA})")
    return payload


# ---------------------------------------------------------------------------
# Rendering


def _ms(seconds: Any) -> str:
    return f"{float(seconds) * 1000:.3f} ms" if seconds is not None else "?"


def render_bundle(bundle: dict) -> str:
    """Human-readable rendering of a bundle for ``rae-report bundle``."""
    trigger = bundle.get("trigger") or {}
    lines = [
        f"forensic bundle: {bundle['outcome']} recovery "
        f"(schema {bundle['schema']}, nesting {bundle.get('nesting', 0)})",
        "  trigger   : "
        f"kind={trigger.get('kind')} op={trigger.get('op')} "
        f"corr_id={trigger.get('corr_id')} — "
        f"{trigger.get('exception')}: {trigger.get('message')}",
    ]
    window = bundle.get("window")
    if window:
        bounds = ""
        if window.get("first_seq") is not None:
            bounds = f" (#{window['first_seq']}..#{window['last_seq']})"
        lines.append(
            f"  window    : {window.get('entries', 0)} recorded ops{bounds}, "
            f"~{window.get('bytes', 0)} B"
        )
    phases = bundle.get("phases") or {}
    lines.append(
        "  phases    : "
        + " | ".join(f"{name} {_ms(phases[name])}" for name in ("reboot", "replay", "handoff", "total") if name in phases)
    )
    replay = bundle.get("replay")
    if replay:
        lines.append(
            f"  replay    : {replay.get('constrained_ops', 0)} constrained + "
            f"{replay.get('autonomous_ops', 0)} autonomous, "
            f"{replay.get('skipped_errors', 0)} errno-skips, "
            f"{len(replay.get('discrepancies', []))} discrepancies "
            f"({replay.get('mode', '?')} shadow)"
        )
    failure = bundle.get("failure")
    if failure:
        lines.append(f"  failure   : phase={failure.get('phase')} — {failure.get('message')}")
    flight = bundle.get("flight")
    if flight:
        entries = flight.get("entries", [])
        lines.append(
            f"  flight ring (frozen at detection, {len(entries)} entries, "
            f"{flight.get('ops_seen', 0)} ops seen):"
        )
        for entry in entries:
            seq = entry.get("seq")
            where = f"#{seq}" if seq is not None else "-"
            status = f" -> {entry['errno']}" if entry.get("errno") else ""
            lines.append(f"    {where:>6s} {entry.get('kind', '?'):4s} {entry.get('detail', '')}{status}")
        deltas = flight.get("stat_deltas") or {}
        changed = {name: delta for name, delta in deltas.items() if delta}
        if changed:
            lines.append(
                "    stat deltas since baseline: "
                + ", ".join(f"{name}=+{delta}" for name, delta in sorted(changed.items()))
            )
    crosschecks = bundle.get("crosschecks") or {}
    rows = crosschecks.get("rows", [])
    lines.append(
        f"  cross-checks ({crosschecks.get('captured', 0)} captured, "
        f"{crosschecks.get('divergent', 0)} divergent, {crosschecks.get('dropped', 0)} dropped):"
    )
    for row in rows:
        verdict = "MATCH" if row.get("match") else "DIVERGED"
        lines.append(
            f"    #{row.get('corr_id')} {row.get('op')}  "
            f"expected {_render_side(row.get('expected'))} | "
            f"observed {_render_side(row.get('observed'))}  [{verdict}]"
        )
    bundle_events = bundle.get("events") or []
    if bundle_events:
        lines.append(f"  events ({len(bundle_events)}):")
        base_ts = bundle_events[0].get("ts", 0.0)
        for event in bundle_events:
            lines.append(f"    {_event_line(event, base_ts)}")
    return "\n".join(lines)


def _render_side(side: dict | None) -> str:
    side = side or {}
    if side.get("errno"):
        return side["errno"]
    text = side.get("value") if side.get("value") is not None else "ok"
    if side.get("ino") is not None:
        text = f"{text} (ino {side['ino']})"
    return str(text)


def _event_line(event: dict, base_ts: float) -> str:
    ts = event.get("ts")
    offset = f"+{ts - base_ts:.6f}s" if ts is not None else "?"
    corr = f" corr_id=#{event['corr_id']}" if event.get("corr_id") is not None else ""
    detail = "".join(
        f" {key}={value}"
        for key, value in (event.get("fields") or {}).items()
        if value is not None
    )
    return f"[{offset}] {event.get('kind', '?')}{corr}{detail}"


# ---------------------------------------------------------------------------
# Timeline merge: spans + events → one causally-ordered sequence


def merge_timeline(spans: list[dict], events: list[dict]) -> list[dict]:
    """Interleave span dicts (``Registry.snapshot()["spans"]``) and event
    dicts (``...["events"]``) into one list ordered by timestamp.

    Both streams are stamped by the same registry clock, so plain
    timestamp order *is* causal order; spans sort at their start time.
    """
    merged: list[dict] = []
    for span in spans:
        merged.append(
            {
                "ts": span.get("start"),
                "kind": "span",
                "name": span.get("name"),
                "duration": span.get("duration"),
                "depth": span.get("depth", 0),
                "attrs": span.get("attrs", {}),
            }
        )
    for event in events:
        merged.append(
            {
                "ts": event.get("ts"),
                "kind": "event",
                "name": event.get("kind"),
                "corr_id": event.get("corr_id"),
                "fields": event.get("fields", {}),
            }
        )
    merged.sort(key=lambda entry: (entry["ts"] is None, entry["ts"]))
    return merged


def _span_duration_footer(entries: list[dict]) -> str | None:
    """Percentile summary line over the closed spans of a timeline —
    the same p50/p95/p99 vocabulary as the histogram report lines."""
    durations = sorted(
        entry["duration"]
        for entry in entries
        if entry.get("kind") == "span" and entry.get("duration") is not None
    )
    if not durations:
        return None

    def pct(q: float) -> float:
        index = min(len(durations) - 1, max(0, round(q * len(durations)) - 1))
        return durations[index]

    return (
        f"spans: {len(durations)} closed, "
        f"p50={_ms(pct(0.50))} p95={_ms(pct(0.95))} p99={_ms(pct(0.99))}"
    )


def render_timeline(entries: list[dict]) -> str:
    """Render a merged timeline for ``rae-report timeline``."""
    if not entries:
        return "(no spans or events recorded)"
    base_ts = next((e["ts"] for e in entries if e["ts"] is not None), 0.0)
    lines = []
    for entry in entries:
        ts = entry.get("ts")
        offset = f"+{ts - base_ts:.6f}s" if ts is not None else "?"
        if entry["kind"] == "span":
            indent = "  " * int(entry.get("depth") or 0)
            duration = entry.get("duration")
            timing = _ms(duration) if duration is not None else "(open)"
            detail = "".join(
                f" {key}={value}"
                for key, value in (entry.get("attrs") or {}).items()
                if value is not None
            )
            lines.append(f"[{offset}] {indent}span  {entry.get('name')} ({timing}){detail}")
        else:
            corr = f" corr_id=#{entry['corr_id']}" if entry.get("corr_id") is not None else ""
            detail = "".join(
                f" {key}={value}"
                for key, value in (entry.get("fields") or {}).items()
                if value is not None
            )
            lines.append(f"[{offset}] event {entry.get('name')}{corr}{detail}")
    footer = _span_duration_footer(entries)
    if footer is not None:
        lines.append(footer)
    return "\n".join(lines)
