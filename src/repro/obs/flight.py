"""The flight recorder: an always-on, fixed-cost pre-detection ring.

The contained reboot deliberately *discards* the failed base's state —
which is exactly the state a forensic investigation needs.  Membrane-
style fault isolation and EXPLODE-style systematic checking both rely
on a replayable record of the events leading up to a failure; this
module is that record for RAE.

A :class:`FlightRecorder` keeps a small ring of the most recent
operations (name, brief args, errno) plus marks (detector
classifications), and a baseline sample of cheap subsystem tallies
(journal commits, cache hits, device IO...).  At detection time — in
the supervisor, *before* :func:`repro.core.reboot.contained_reboot`
runs — the ring is **frozen**: copied into an immutable
:class:`FrozenFlight` together with the stat deltas since the last
baseline.  The frozen copy goes into the forensic bundle; the live ring
keeps recording.

Cost model: one bounded-size entry append per operation (the detail
string is truncated at :data:`DETAIL_LIMIT`, so write payloads are never
pinned), no clocks beyond the injected one, and no per-op stat
sampling — stats are sampled only at baseline/freeze time.  The
recorder is on by default (``RAEConfig(flight=False)`` disables it) and
its steady-state overhead must stay inside the obs-ablation benchmark's
noise band.

Never imported by the replay closure (SHADOW-PURITY).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections import deque
from typing import Callable

Clock = Callable[[], float]
StatsSource = Callable[[], dict]

#: Default ring capacity (entries, not bytes; each entry is bounded).
DEFAULT_RING_SIZE = 64

#: Hard cap on one entry's detail string: payload args must never make
#: the ring's footprint grow with operation size.
DETAIL_LIMIT = 96


def _truncate(detail: str) -> str:
    if len(detail) <= DETAIL_LIMIT:
        return detail
    return detail[: DETAIL_LIMIT - 3] + "..."


@dataclass
class FlightEntry:
    """One ring slot: an operation or a mark (detection, note)."""

    seq: int | None  # correlation id (op-log sequence number), if any
    kind: str  # "op" | "mark"
    name: str  # op name, or mark kind
    detail: str  # brief args / description, bounded
    errno: str | None
    ts: float

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "detail": self.detail,
            "errno": self.errno,
            "ts": self.ts,
        }

    def describe(self) -> str:
        where = f"#{self.seq} " if self.seq is not None else ""
        status = f" -> {self.errno}" if self.errno else (" -> ok" if self.kind == "op" else "")
        return f"{where}{self.kind:4s} {self.detail or self.name}{status}"


@dataclass(frozen=True)
class FrozenFlight:
    """An immutable copy of the ring, taken at detection time."""

    reason: str
    trigger_seq: int | None
    frozen_at: float
    entries: tuple[FlightEntry, ...]
    stat_deltas: dict
    ops_seen: int  # cumulative ops noted over the recorder's lifetime

    def as_dict(self) -> dict:
        return {
            "reason": self.reason,
            "trigger_seq": self.trigger_seq,
            "frozen_at": self.frozen_at,
            "entries": [entry.as_dict() for entry in self.entries],
            "stat_deltas": dict(sorted(self.stat_deltas.items())),
            "ops_seen": self.ops_seen,
        }


class FlightRecorder:
    """Fixed-cost ring of recent operations, freezable at detection.

    ``stats_source`` is a callable returning a flat ``{name: number}``
    dict of cheap subsystem tallies; it is sampled at
    :meth:`rebaseline` and :meth:`freeze` time only (never per op), and
    the frozen record carries the deltas between the two samples.
    """

    def __init__(
        self,
        clock: Clock = time.perf_counter,
        size: int = DEFAULT_RING_SIZE,
        enabled: bool = True,
        stats_source: StatsSource | None = None,
    ):
        if size <= 0:
            raise ValueError(f"flight ring size must be positive, got {size}")
        self.clock: Clock = clock
        self.enabled = enabled
        self.size = size
        self.entries: deque[FlightEntry] = deque(maxlen=size)
        self.stats_source = stats_source
        self.ops_seen = 0
        self.freezes = 0
        self.last_frozen: FrozenFlight | None = None
        self._baseline: dict = {}

    # -- recording -----------------------------------------------------

    def note_op(self, seq: int, name: str, detail: str, errno: str | None = None) -> None:
        """Append one completed operation (O(1), detail truncated)."""
        if not self.enabled:
            return
        self.ops_seen += 1
        self.entries.append(
            FlightEntry(
                seq=seq, kind="op", name=name, detail=_truncate(detail),
                errno=errno, ts=self.clock(),
            )
        )

    def mark(self, name: str, seq: int | None = None, detail: str = "") -> None:
        """Append a non-op mark (detector classification, milestone)."""
        if not self.enabled:
            return
        self.entries.append(
            FlightEntry(
                seq=seq, kind="mark", name=name, detail=_truncate(detail or name),
                errno=None, ts=self.clock(),
            )
        )

    # -- baseline and freeze -------------------------------------------

    def _sample(self) -> dict:
        return dict(self.stats_source()) if self.stats_source is not None else {}

    def rebaseline(self) -> None:
        """Resample the stat baseline (call at mount and after each
        contained reboot swaps in a fresh base)."""
        if not self.enabled:
            return
        self._baseline = self._sample()

    def freeze(self, reason: str, trigger_seq: int | None = None) -> FrozenFlight | None:
        """Snapshot the ring and the stat deltas since the baseline.

        MUST run before the contained reboot: the deltas read the failed
        base's tallies, which the reboot discards.  The live ring keeps
        recording afterwards; the baseline is advanced to the freeze
        sample so nested detections report incremental deltas.
        """
        if not self.enabled:
            return None
        sample = self._sample()
        deltas = {key: value - self._baseline.get(key, 0) for key, value in sample.items()}
        self._baseline = sample
        self.freezes += 1
        frozen = FrozenFlight(
            reason=_truncate(reason),
            trigger_seq=trigger_seq,
            frozen_at=self.clock(),
            entries=tuple(self.entries),
            stat_deltas=deltas,
            ops_seen=self.ops_seen,
        )
        self.last_frozen = frozen
        return frozen

    def __len__(self) -> int:
        return len(self.entries)
