"""Structured, correlated event log.

Spans (``repro.obs.trace``) answer *how long*; the event log answers
*what happened, in what order, about which operation*.  Every event
carries an optional **correlation id** — the supervisor's op-log
sequence number — so a detector classification, the recovery phases,
and the metadata hand-off can all be tied back to the operation that
caused them.  ``rae-report timeline`` merges events with spans into one
causally-ordered recovery narrative (both share the registry's injected
clock, so their timestamps are directly comparable).

Like the tracer, the log is a bounded ring: a supervisor lives for
millions of operations and must not grow without bound.  Cumulative
per-kind counts survive eviction; ``dropped`` says how many events fell
off the ring.

This module must stay out of the replay closure (SHADOW-PURITY forbids
``repro.obs`` under ``shadowfs/``/``spec/``): events are emitted by the
supervisor and the recovery coordinator *around* the shadow, never from
inside it.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

Clock = Callable[[], float]

#: Default bound on the event ring (cumulative counts are never dropped).
DEFAULT_EVENT_LIMIT = 1024


@dataclass
class Event:
    """One structured event: what (kind), when (ts), about which op
    (corr_id = op-log sequence number), plus free-form fields."""

    seq: int
    ts: float
    kind: str
    corr_id: int | None = None
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "corr_id": self.corr_id,
            "fields": dict(self.fields),
        }

    def describe(self) -> str:
        where = f" corr_id=#{self.corr_id}" if self.corr_id is not None else ""
        detail = "".join(
            f" {key}={value}" for key, value in self.fields.items() if value is not None
        )
        return f"{self.kind}{where}{detail}"


class EventLog:
    """Bounded ring of :class:`Event` records with cumulative counts."""

    def __init__(self, clock: Clock = time.perf_counter, enabled: bool = True, limit: int = DEFAULT_EVENT_LIMIT):
        if limit <= 0:
            raise ValueError(f"event limit must be positive, got {limit}")
        self.clock: Clock = clock
        self.enabled = enabled
        self.limit = limit
        self.events: deque[Event] = deque(maxlen=limit)
        self.emitted = 0
        self.counts: dict[str, int] = {}

    def emit(self, kind: str, corr_id: int | None = None, **fields) -> Event | None:
        """Record one event; returns it (or ``None`` when disabled)."""
        if not self.enabled:
            return None
        self.emitted += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        event = Event(seq=self.emitted, ts=self.clock(), kind=kind, corr_id=corr_id, fields=fields)
        self.events.append(event)
        return event

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (emitted but no longer kept)."""
        return max(0, self.emitted - len(self.events))

    def since(self, seq: int) -> list[Event]:
        """Events emitted after event number ``seq`` that are still in
        the ring — the forensic-bundle builder's slicing primitive."""
        return [event for event in self.events if event.seq > seq]

    def snapshot(self) -> list[dict]:
        return [event.as_dict() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)
