"""Observability for the RAE stack: metrics, spans, JSON export.

The supervisor owns a :class:`Registry`; everything else is pulled from
existing per-subsystem stats at snapshot time.  Nothing in the replay
closure (``repro.shadowfs``, ``repro.spec``) may import this package —
the shadow stays instrumentation-free (REPLAY-DETERMINISM, §3.2) — and
SHADOW-PURITY plus a dedicated test enforce that.
"""

from repro.obs.export import flush_bench_obs, record_section, write_snapshot
from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.trace import SpanEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanEvent",
    "Tracer",
    "write_snapshot",
    "record_section",
    "flush_bench_obs",
]
