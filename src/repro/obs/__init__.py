"""Observability for the RAE stack: metrics, spans, events, forensics.

The supervisor owns a :class:`Registry`; everything else is pulled from
existing per-subsystem stats at snapshot time.  Nothing in the replay
closure (``repro.shadowfs``, ``repro.spec``) may import this package —
the shadow stays instrumentation-free (REPLAY-DETERMINISM, §3.2) — and
SHADOW-PURITY plus a dedicated test enforce that.

The recovery flight recorder lives here too: :class:`EventLog`
(correlated structured events), :class:`FlightRecorder` (always-on
pre-detection ring, frozen at detection time), and the forensic-bundle
machinery (:mod:`repro.obs.forensics`) that turns every recovery into
an inspectable JSON artifact.
"""

from repro.obs.events import Event, EventLog
from repro.obs.export import flush_bench_obs, record_section, write_snapshot
from repro.obs.flight import FlightRecorder, FrozenFlight
from repro.obs.forensics import (
    BundleStore,
    CrossCheckCapture,
    build_bundle,
    load_bundle,
    merge_timeline,
    render_bundle,
    render_timeline,
    write_bundle,
)
from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.trace import SpanEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanEvent",
    "Tracer",
    "Event",
    "EventLog",
    "FlightRecorder",
    "FrozenFlight",
    "BundleStore",
    "CrossCheckCapture",
    "build_bundle",
    "load_bundle",
    "write_bundle",
    "render_bundle",
    "merge_timeline",
    "render_timeline",
    "write_snapshot",
    "record_section",
    "flush_bench_obs",
]
