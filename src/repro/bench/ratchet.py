"""The perf ratchet: ``rae-bench --check-baseline``.

Mirrors raelint's baseline discipline for benchmark numbers: a
committed ``hotpath.baseline.json`` records, per mix, the blessed
throughput and latency percentiles; CI fails when a fresh
``BENCH_hotpath.json`` regresses past the per-metric tolerance band,
and the baseline only moves when someone deliberately reruns with
``--update-baseline`` and commits the result.

Raw seconds do not transfer between machines, so every comparison is
**calibration-normalized**: both artifact and baseline carry the
:func:`repro.bench.hotpath.calibration_score` of the machine that
produced them (a fixed pure-Python workload's runs/sec), throughput is
compared as ``ops_per_second / calibration_score`` and latency as
``seconds * calibration_score``.  That cancels first-order machine
speed; what remains — scheduler jitter, cache topology, allocator
behavior — is why the default tolerance bands are deliberately wide
(a CI false-positive costs more trust than a small missed regression;
real hot-path work moves these numbers by integer factors, not
percents).  Latency tails get the widest band: p99 of a few hundred
ops is a handful of samples.
"""

from __future__ import annotations

import json

BASELINE_DEFAULT = "hotpath.baseline.json"
BASELINE_SCHEMA = 1

#: Allowed relative regression per metric, post-normalization:
#: throughput may drop to (1 - tol) of baseline; latency percentiles
#: may grow to (1 + tol) of baseline.
DEFAULT_TOLERANCE = {
    "ops_per_second": 0.60,
    "p50": 1.50,
    "p95": 1.50,
    "p99": 2.50,
}

_PERCENTILES = ("p50", "p95", "p99")


def baseline_from_artifact(artifact: dict, tolerance: dict | None = None) -> dict:
    """Distill a ``BENCH_hotpath.json`` payload into a baseline."""
    tol = dict(DEFAULT_TOLERANCE)
    if tolerance:
        tol.update(tolerance)
    return {
        "schema": BASELINE_SCHEMA,
        "calibration_score": artifact["meta"]["calibration_score"],
        "tolerance": tol,
        "mixes": {
            name: {
                "ops_per_second": mix["ops_per_second"],
                "latency_seconds": {
                    p: mix["latency_seconds"].get(p) for p in _PERCENTILES
                },
            }
            for name, mix in sorted(artifact["mixes"].items())
        },
    }


def load_baseline(path: str = BASELINE_DEFAULT) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    if not isinstance(baseline, dict) or baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: not a schema-{BASELINE_SCHEMA} hotpath baseline")
    return baseline


def check_against_baseline(artifact: dict, baseline: dict) -> list[str]:
    """Compare a fresh artifact to the committed baseline; returns the
    list of regressions (empty means the ratchet holds)."""
    problems: list[str] = []
    cal_now = artifact.get("meta", {}).get("calibration_score") or 0.0
    cal_base = baseline.get("calibration_score") or 0.0
    if cal_now <= 0 or cal_base <= 0:
        return ["calibration score missing or non-positive; cannot normalize"]
    tolerance = {**DEFAULT_TOLERANCE, **baseline.get("tolerance", {})}
    mixes = artifact.get("mixes", {})
    base_mixes = baseline.get("mixes", {})

    for name in sorted(base_mixes):
        base = base_mixes[name]
        mix = mixes.get(name)
        if mix is None:
            problems.append(
                f"{name}: mix present in baseline but missing from the artifact "
                "(a dropped mix would blind the ratchet)"
            )
            continue
        tol = tolerance["ops_per_second"]
        current = mix.get("ops_per_second", 0.0) / cal_now
        blessed = base["ops_per_second"] / cal_base
        floor = blessed * (1.0 - tol)
        if current < floor:
            problems.append(
                f"{name}: ops_per_second regressed — {current:.3f} normalized "
                f"vs baseline {blessed:.3f} (floor {floor:.3f}, tolerance -{tol:.0%})"
            )
        for p in _PERCENTILES:
            blessed_seconds = base.get("latency_seconds", {}).get(p)
            current_seconds = mix.get("latency_seconds", {}).get(p)
            if blessed_seconds is None or current_seconds is None:
                continue
            tol = tolerance[p]
            current_norm = current_seconds * cal_now
            blessed_norm = blessed_seconds * cal_base
            ceiling = blessed_norm * (1.0 + tol)
            if current_norm > ceiling:
                problems.append(
                    f"{name}: latency {p} regressed — {current_norm:.6f} normalized "
                    f"vs baseline {blessed_norm:.6f} (ceiling {ceiling:.6f}, "
                    f"tolerance +{tol:.0%})"
                )

    unbaselined = sorted(set(mixes) - set(base_mixes))
    if unbaselined:
        problems.append(
            "mixes not in the baseline: "
            + ", ".join(unbaselined)
            + " — bless them with rae-bench --update-baseline"
        )
    return problems
