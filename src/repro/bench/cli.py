"""``rae-bench``: run the hot-path mixes, emit BENCH_hotpath.json,
and check the perf ratchet.

Usage shapes (see docs/OBSERVABILITY.md):

* ``rae-bench`` — run every mix, write the artifact, print the tables;
* ``rae-bench --check-baseline`` — the CI gate: run (or reuse
  ``--artifact``), then fail (exit 1) on any regression past the
  baseline's tolerance bands;
* ``rae-bench --update-baseline`` — deliberately ratchet the committed
  ``hotpath.baseline.json`` forward from this run.

Exit codes: 0 clean, 1 regression/schema failure, 2 usage error
(unknown mix, unreadable baseline/artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.hotpath import (
    DEFAULT_OPS,
    DEFAULT_ROUNDS,
    DEFAULT_SEED,
    MIX_PROFILES,
    run_hotpath_bench,
    write_hotpath,
)
from repro.bench.ratchet import (
    BASELINE_DEFAULT,
    baseline_from_artifact,
    check_against_baseline,
    load_baseline,
)
from repro.bench.reporting import render_hotpath
from repro.obs.check import check_hotpath_payload
from repro.util import atomic_write_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="rae-bench", description=__doc__)
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS,
                        help=f"measured stream length per mix (default {DEFAULT_OPS})")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help=f"fresh runs per mix, best kept (default {DEFAULT_ROUNDS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"workload seed (default {DEFAULT_SEED})")
    parser.add_argument("--mix", action="append", metavar="NAME",
                        help="run only this mix (repeatable; default all: "
                             + ", ".join(MIX_PROFILES) + ")")
    parser.add_argument("--out", metavar="PATH",
                        help="artifact path (default $BENCH_HOTPATH_PATH or BENCH_hotpath.json)")
    parser.add_argument("--no-attribution", action="store_true",
                        help="disable the layer profiler (ablation arm)")
    parser.add_argument("--artifact", metavar="PATH",
                        help="check an existing artifact instead of running")
    parser.add_argument("--baseline", default=BASELINE_DEFAULT, metavar="PATH",
                        help=f"baseline path (default {BASELINE_DEFAULT})")
    parser.add_argument("--check-baseline", action="store_true",
                        help="fail (exit 1) on regression past the baseline's tolerance bands")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run (the deliberate ratchet)")
    parser.add_argument("--quiet", action="store_true", help="suppress the tables")
    args = parser.parse_args(argv)

    if args.artifact:
        try:
            with open(args.artifact, "r", encoding="utf-8") as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load {args.artifact}: {exc}", file=sys.stderr)
            return 2
        target = args.artifact
    else:
        try:
            payload = run_hotpath_bench(
                ops=args.ops,
                rounds=args.rounds,
                seed=args.seed,
                mixes=args.mix,
                attribution=not args.no_attribution,
            )
        except ValueError as exc:  # unknown mix name
            print(f"error: {exc}", file=sys.stderr)
            return 2
        target = write_hotpath(payload, args.out)
        if not args.quiet:
            print(f"wrote {target}")

    # Self-gate: a malformed artifact must never reach the ratchet.
    problems = check_hotpath_payload(payload)
    if problems:
        if args.mix and not args.artifact:
            # An explicit --mix subset is a local experiment, not a
            # trajectory datapoint; surface the gate result, don't fail.
            for problem in problems:
                print(f"note: {target}: {problem}", file=sys.stderr)
        else:
            for problem in problems:
                print(f"error: {target}: {problem}", file=sys.stderr)
            return 1

    if not args.quiet:
        print(render_hotpath(payload))

    if args.update_baseline:
        atomic_write_json(args.baseline, baseline_from_artifact(payload))
        print(f"baseline updated: {args.baseline}")

    if args.check_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        regressions = check_against_baseline(payload, baseline)
        if regressions:
            for regression in regressions:
                print(f"REGRESSION: {regression}", file=sys.stderr)
            print(
                f"{len(regressions)} regression(s) vs {args.baseline} — "
                "if deliberate, rerun with --update-baseline and commit",
                file=sys.stderr,
            )
            return 1
        print(f"baseline check ok ({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
