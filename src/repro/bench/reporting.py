"""Plain-text reporting for benchmark output (paper-style tables)."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Fixed-width table; floats get 3 significant decimals."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_banner(text: str) -> None:
    bar = "=" * max(60, len(text) + 4)
    print(f"\n{bar}\n  {text}\n{bar}")
