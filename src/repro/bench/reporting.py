"""Plain-text reporting for benchmark output (paper-style tables)."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Fixed-width table; floats get 3 significant decimals."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def _us(seconds: object) -> object:
    """Seconds → microseconds for table cells; ``None`` renders as -."""
    return "-" if seconds is None else float(seconds) * 1e6


def render_hotpath(payload: dict) -> str:
    """Render a ``BENCH_hotpath.json`` payload: one throughput summary
    table, then a per-layer self-time table per mix (percentiles are of
    *per-op self-time* in that layer).  Shared by ``rae-bench`` and
    ``rae-report hotpath``."""
    meta = payload.get("meta", {})
    blocks = []
    summary_rows = []
    for name, mix in payload.get("mixes", {}).items():
        latency = mix.get("latency_seconds", {})
        summary_rows.append([
            name,
            mix.get("ops", 0),
            float(mix.get("ops_per_second", 0.0)),
            _us(latency.get("p50")),
            _us(latency.get("p95")),
            _us(latency.get("p99")),
        ])
    title = "hot-path throughput"
    if meta:
        title += (
            f" (ops/mix={meta.get('ops_per_mix')} rounds={meta.get('rounds')}"
            f" seed={meta.get('seed')}"
            f" calibration={meta.get('calibration_score', 0.0):.1f}/s)"
        )
    blocks.append(format_table(
        ["mix", "ops", "ops/s", "p50us", "p95us", "p99us"], summary_rows, title=title
    ))
    for name, mix in payload.get("mixes", {}).items():
        rows = []
        for layer, entry in mix.get("layers", {}).items():
            rows.append([
                layer,
                float(entry.get("self_seconds", 0.0)),
                f"{float(entry.get('share', 0.0)) * 100:.1f}%",
                entry.get("calls", 0),
                _us(entry.get("p50")),
                _us(entry.get("p95")),
                _us(entry.get("p99")),
            ])
        blocks.append(format_table(
            ["layer", "self_s", "share", "calls", "p50us", "p95us", "p99us"],
            rows,
            title=f"{name} — per-layer self-time",
        ))
    return "\n\n".join(blocks)


def print_banner(text: str) -> None:
    bar = "=" * max(60, len(text) + 4)
    print(f"\n{bar}\n  {text}\n{bar}")
