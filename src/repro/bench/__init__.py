"""Benchmark harness helpers shared by ``benchmarks/``.

Keeps benchmark files declarative: construction of filesystems over
sized devices, workload execution with timing, and paper-style table
rendering live here.
"""

from repro.bench.harness import (
    make_base,
    make_device,
    make_rae,
    make_shadow,
    run_ops,
    time_ops,
)
from repro.bench.reporting import format_table, print_banner

__all__ = [
    "make_device",
    "make_base",
    "make_shadow",
    "make_rae",
    "run_ops",
    "time_ops",
    "format_table",
    "print_banner",
]
