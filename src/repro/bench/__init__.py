"""Benchmark harness helpers shared by ``benchmarks/``.

Keeps benchmark files declarative: construction of filesystems over
sized devices, workload execution with timing, paper-style table
rendering, and the ``BENCH_obs.json`` observability emitter live here.
"""

from repro.bench.harness import (
    emit_obs_section,
    make_base,
    make_device,
    make_rae,
    make_shadow,
    run_ops,
    time_ops,
)
from repro.bench.reporting import format_table, print_banner
from repro.obs import flush_bench_obs

__all__ = [
    "make_device",
    "make_base",
    "make_shadow",
    "make_rae",
    "run_ops",
    "time_ops",
    "format_table",
    "print_banner",
    "emit_obs_section",
    "flush_bench_obs",
]
