"""Benchmark harness helpers shared by ``benchmarks/``.

Keeps benchmark files declarative: construction of filesystems over
sized devices, workload execution with timing, paper-style table
rendering, and the ``BENCH_obs.json`` observability emitter live here.
"""

from repro.bench.harness import (
    emit_obs_section,
    make_base,
    make_device,
    make_rae,
    make_shadow,
    run_ops,
    time_ops,
)
from repro.bench.hotpath import (
    MIX_PROFILES,
    calibration_score,
    run_hotpath_bench,
    run_mix,
    write_hotpath,
)
from repro.bench.ratchet import (
    baseline_from_artifact,
    check_against_baseline,
    load_baseline,
)
from repro.bench.reporting import format_table, print_banner, render_hotpath
from repro.obs import flush_bench_obs

__all__ = [
    "MIX_PROFILES",
    "run_mix",
    "run_hotpath_bench",
    "calibration_score",
    "write_hotpath",
    "baseline_from_artifact",
    "check_against_baseline",
    "load_baseline",
    "render_hotpath",
    "make_device",
    "make_base",
    "make_shadow",
    "make_rae",
    "run_ops",
    "time_ops",
    "format_table",
    "print_banner",
    "emit_obs_section",
    "flush_bench_obs",
]
