"""The hot-path throughput harness behind ``rae-bench``.

Runs named workload mixes (seeded :mod:`repro.workloads` streams)
against a fresh supervisor per round and distills each mix into the
``BENCH_hotpath.json`` datapoint ROADMAP item 2's speed campaign is
judged against:

* **ops/sec** — best-of-rounds wall time over the whole stream (min is
  the noise-robust estimator, as in the tier-2 ablations);
* **p50/p95/p99 latency** — every ``op.latency.*`` log-scale histogram
  of the best round merged into one mix-level distribution;
* **per-layer self-time** — the :mod:`repro.obs.prof` breakdown (api →
  vfs → pagecache → journal → writeback → blkmq → device), including
  per-op self-time percentiles per layer.

The artifact also records a **calibration score**: a fixed pure-Python
workload timed the same way, so the ratchet (:mod:`repro.bench.ratchet`)
can compare runs from different machines by normalizing throughput and
latency against how fast the interpreter itself is.
"""

from __future__ import annotations

import os
import time
import zlib

from repro.bench.harness import make_device, run_ops
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.obs.check import (
    BENCH_HOTPATH_DEFAULT,
    BENCH_HOTPATH_ENV,
    BENCH_HOTPATH_SCHEMA,
)
from repro.obs.metrics import Histogram
from repro.util import atomic_write_json
from repro.workloads import (
    WorkloadGenerator,
    churn_profile,
    fileserver_profile,
    lookup_profile,
    varmail_profile,
    webserver_profile,
)

#: The named mixes: the four canonical hot-path personalities plus the
#: mixed fileserver profile.  Order is presentation order.
MIX_PROFILES = {
    "read_heavy": webserver_profile,
    "write_heavy": varmail_profile,
    "create_unlink_heavy": churn_profile,
    "lookup_heavy": lookup_profile,
    "mixed": fileserver_profile,
}

DEFAULT_OPS = 400
DEFAULT_ROUNDS = 3
DEFAULT_SEED = 11
_BLOCK_COUNT = 16384


def run_mix(
    name: str,
    ops: int = DEFAULT_OPS,
    seed: int = DEFAULT_SEED,
    rounds: int = DEFAULT_ROUNDS,
    attribution: bool = True,
    device_tweak=None,
) -> dict:
    """Run one mix; returns its ``BENCH_hotpath.json`` section.

    ``device_tweak`` (tests) mutates the fresh device *before* the
    supervisor wraps it, so an injected slowdown in, say,
    ``read_block`` is attributed to the device layer like any real
    cost.  ``attribution=False`` is the ablation arm: same run, no
    profiler, layer fields zeroed.
    """
    profile = MIX_PROFILES[name]()
    operations = WorkloadGenerator(profile, seed=seed).ops(ops)
    best_seconds = float("inf")
    best_fs = None
    for _ in range(max(1, rounds)):
        device = make_device(_BLOCK_COUNT)
        if device_tweak is not None:
            device_tweak(device)
        fs = RAEFilesystem(
            device, config=RAEConfig(metrics=True, profile=attribution)
        )
        start = time.perf_counter()
        run_ops(fs, operations)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
            best_fs = fs

    merged = Histogram("mix.latency")
    for hist in best_fs.obs.histograms("op.latency."):
        merged.merge(hist)
    if best_fs.profiler is not None:
        layers = best_fs.profiler.layer_summary()
    else:
        from repro.obs.prof import LAYERS

        layers = {
            layer: {
                "self_seconds": 0.0, "calls": 0, "share": 0.0,
                "p50": None, "p95": None, "p99": None,
            }
            for layer in LAYERS
        }
    return {
        "ops": len(operations),
        "elapsed_seconds": best_seconds,
        "ops_per_second": len(operations) / best_seconds if best_seconds else 0.0,
        "latency_seconds": {
            "p50": merged.percentile(0.50),
            "p95": merged.percentile(0.95),
            "p99": merged.percentile(0.99),
        },
        "layers": layers,
    }


def _calibration_round() -> int:
    """Fixed pure-Python work: CRC over a rolling window plus dict
    churn, roughly the byte-shuffling/dispatch blend of the op path."""
    payload = bytes(range(256)) * 64
    crc = 0
    table: dict[int, bytes] = {}
    for i in range(1500):
        crc = zlib.crc32(payload, crc)
        offset = (i * 97) % (len(payload) - 64)
        table[i & 255] = payload[offset : offset + 64]
    return crc


def calibration_score(rounds: int = DEFAULT_ROUNDS) -> float:
    """Calibration runs per second, best of ``rounds`` — the machine
    speed unit the ratchet normalizes every metric with."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        _calibration_round()
        best = min(best, time.perf_counter() - start)
    return 1.0 / best if best > 0 else 0.0


def run_hotpath_bench(
    ops: int = DEFAULT_OPS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = DEFAULT_SEED,
    mixes=None,
    attribution: bool = True,
    device_tweak=None,
) -> dict:
    """Run the requested mixes (default: all) into one artifact payload."""
    names = list(MIX_PROFILES) if mixes is None else list(mixes)
    for name in names:
        if name not in MIX_PROFILES:
            raise ValueError(
                f"unknown mix {name!r}; known: {', '.join(MIX_PROFILES)}"
            )
    return {
        "schema": BENCH_HOTPATH_SCHEMA,
        "meta": {
            "ops_per_mix": ops,
            "rounds": rounds,
            "seed": seed,
            "attribution": attribution,
            "block_count": _BLOCK_COUNT,
            "calibration_score": calibration_score(rounds),
        },
        "mixes": {
            name: run_mix(
                name,
                ops=ops,
                seed=seed,
                rounds=rounds,
                attribution=attribution,
                device_tweak=device_tweak,
            )
            for name in names
        },
    }


def write_hotpath(payload: dict, path: str | None = None) -> str:
    """Atomically write the artifact (``path`` / ``$BENCH_HOTPATH_PATH``
    / ``BENCH_hotpath.json``)."""
    target = path or os.environ.get(BENCH_HOTPATH_ENV) or BENCH_HOTPATH_DEFAULT
    atomic_write_json(target, payload)
    return target
