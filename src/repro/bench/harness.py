"""Construction and measurement helpers for the benchmark suite."""

from __future__ import annotations

import time
from typing import Sequence

from repro.api import FilesystemAPI, FsOp
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.basefs.writeback import WritebackPolicy
from repro.blockdev.device import MemoryBlockDevice
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem

_TEMPLATES: dict[tuple, bytes] = {}


def make_device(block_count: int = 8192, journal_blocks: int | None = None) -> MemoryBlockDevice:
    """A formatted in-memory device (template-cached mkfs).

    ``journal_blocks`` overrides the default journal size — benchmarks
    that deliberately hold huge uncommitted windows need a journal large
    enough for the eventual recovery hand-off commit.
    """
    from repro.ondisk.layout import DEFAULT_JOURNAL_BLOCKS

    journal = journal_blocks if journal_blocks is not None else DEFAULT_JOURNAL_BLOCKS
    device = MemoryBlockDevice(block_count=block_count)
    key = (block_count, journal)
    template = _TEMPLATES.get(key)
    if template is None:
        mkfs(device, journal_blocks=journal)
        template = device.snapshot()
        _TEMPLATES[key] = template
    else:
        device.restore(template)
    return device


def make_base(block_count: int = 8192, hooks: HookPoints | None = None, **kwargs) -> BaseFilesystem:
    return BaseFilesystem(make_device(block_count), hooks=hooks, **kwargs)


def make_shadow(block_count: int = 8192, check_level: CheckLevel = CheckLevel.FULL) -> ShadowFilesystem:
    return ShadowFilesystem(make_device(block_count), check_level=check_level)


def make_rae(
    block_count: int = 8192,
    hooks: HookPoints | None = None,
    config: RAEConfig | None = None,
    writeback_policy: WritebackPolicy | None = None,
    obs=None,
) -> RAEFilesystem:
    return RAEFilesystem(
        make_device(block_count),
        config=config,
        hooks=hooks,
        writeback_policy=writeback_policy,
        obs=obs,
    )


def run_ops(fs: FilesystemAPI, operations: Sequence[FsOp], start_seq: int = 1) -> int:
    """Apply a stream; returns how many succeeded (errno counts too)."""
    done = 0
    for index, operation in enumerate(operations):
        operation.apply(fs, opseq=start_seq + index)
        done += 1
    return done


def time_ops(fs: FilesystemAPI, operations: Sequence[FsOp], start_seq: int = 1) -> tuple[float, float]:
    """Apply a stream; returns (elapsed_seconds, ops_per_second)."""
    start = time.perf_counter()
    run_ops(fs, operations, start_seq=start_seq)
    elapsed = time.perf_counter() - start
    return elapsed, len(operations) / elapsed if elapsed else float("inf")


def emit_obs_section(name: str, fs: RAEFilesystem, extra: dict | None = None) -> None:
    """Stage a supervisor's observability snapshot for ``BENCH_obs.json``.

    Benchmarks call this after their measured run, then
    :func:`repro.obs.flush_bench_obs` once, so a tier-2 pass leaves a
    machine-readable record (CI uploads it as an artifact)."""
    from repro.obs import record_section

    record_section(name, fs.obs, extra=extra)
