"""The shadow's extensive runtime checks.

§2.3: "the shadow can enable all possible checks to survive dynamic
errors without performance concerns."  This module is that budget being
spent.  Checks run at three levels so the checks-overhead ablation
(benchmarks/test_ablation_runtime_checks.py) can quantify their cost:

* ``OFF`` — no checking beyond what parsing itself enforces;
* ``BASIC`` — structural validation of everything read: superblock and
  inode checksums are already enforced by unpack; this level adds type,
  size, link-count and pointer-range validation per inode, directory
  block chain validation, and fd-table sanity;
* ``FULL`` — everything in BASIC plus cross-structure invariants on each
  access: block pointers must be marked allocated in the bitmap, the
  superblock's free counts must match the bitmaps, directory entry inode
  numbers must reference live inodes.

A failed check raises :class:`InvariantViolation`; during recovery the
replay engine converts that into :class:`RecoveryFailure` — the shadow
refuses to vouch for state it cannot verify, which is the liveness-
versus-safety stance §4.3 discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import InvariantViolation
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import FileType, MAX_FILE_SIZE, OnDiskInode
from repro.ondisk.layout import BLOCK_SIZE, DiskLayout
from repro.ondisk.superblock import STATE_CLEAN, STATE_DIRTY, Superblock


class CheckLevel(enum.IntEnum):
    OFF = 0
    BASIC = 1
    FULL = 2


@dataclass
class CheckStats:
    checks_run: int = 0
    failures: int = 0
    by_name: dict[str, int] = field(default_factory=dict)


class ShadowChecks:
    """Runtime-check engine.  Methods are no-ops below their level."""

    def __init__(self, layout: DiskLayout, level: CheckLevel = CheckLevel.FULL):
        self.layout = layout
        self.level = level
        self.stats = CheckStats()

    def _ran(self, name: str) -> None:
        self.stats.checks_run += 1
        self.stats.by_name[name] = self.stats.by_name.get(name, 0) + 1

    def _fail(self, name: str, message: str) -> None:
        self.stats.failures += 1
        raise InvariantViolation(message, check=name)

    # ---- superblock -------------------------------------------------------

    def superblock(self, sb: Superblock) -> None:
        if self.level < CheckLevel.BASIC:
            return
        self._ran("superblock")
        problems = sb.validate_against(self.layout)
        if problems:
            self._fail("superblock", "; ".join(problems))
        if sb.mount_state not in (STATE_CLEAN, STATE_DIRTY):
            self._fail("superblock", f"bad mount state {sb.mount_state}")

    def superblock_counts(self, sb: Superblock, free_blocks: int, free_inodes: int) -> None:
        if self.level < CheckLevel.FULL:
            return
        self._ran("superblock-counts")
        if sb.free_blocks != free_blocks:
            self._fail(
                "superblock-counts",
                f"superblock free_blocks {sb.free_blocks} != bitmap count {free_blocks}",
            )
        if sb.free_inodes != free_inodes:
            self._fail(
                "superblock-counts",
                f"superblock free_inodes {sb.free_inodes} != bitmap count {free_inodes}",
            )

    # ---- inodes ------------------------------------------------------------

    def inode(self, ino: int, inode: OnDiskInode, allow_orphan: bool = False) -> None:
        if self.level < CheckLevel.BASIC:
            return
        self._ran("inode")
        if inode.is_free:
            self._fail("inode", f"inode {ino} is free but referenced")
        if inode.ftype not in (FileType.REGULAR, FileType.DIRECTORY, FileType.SYMLINK):
            self._fail("inode", f"inode {ino} has invalid type (mode 0x{inode.mode:x})")
        if inode.size > MAX_FILE_SIZE:
            self._fail("inode", f"inode {ino} size {inode.size} exceeds maximum")
        if inode.is_dir and inode.size % BLOCK_SIZE:
            self._fail("inode", f"directory inode {ino} has unaligned size {inode.size}")
        if inode.is_symlink and not 0 < inode.size < BLOCK_SIZE:
            self._fail("inode", f"symlink inode {ino} has size {inode.size}")
        if inode.nlink == 0 and not allow_orphan:
            self._fail("inode", f"inode {ino} has zero links but is referenced from the namespace")
        if inode.nlink > 65535:
            self._fail("inode", f"inode {ino} has implausible nlink {inode.nlink}")
        for pointer in inode.direct_and_indirect_roots():
            self.block_pointer(ino, pointer)

    def block_pointer(self, ino: int, block: int) -> None:
        if self.level < CheckLevel.BASIC:
            return
        self._ran("block-pointer")
        if not 0 < block < self.layout.block_count:
            self._fail("block-pointer", f"inode {ino} references out-of-range block {block}")
        if self.layout.is_metadata_block(block):
            self._fail("block-pointer", f"inode {ino} references metadata block {block}")

    def block_allocated(self, block: int, test_bit) -> None:
        """FULL: a referenced block must be marked allocated.  ``test_bit``
        is a callable (the shadow passes its overlay-aware bitmap read)."""
        if self.level < CheckLevel.FULL:
            return
        self._ran("block-allocated")
        if not test_bit(block):
            self._fail("block-allocated", f"referenced block {block} is free in the block bitmap")

    def ino_allocated(self, ino: int, test_bit) -> None:
        if self.level < CheckLevel.FULL:
            return
        self._ran("ino-allocated")
        if not test_bit(ino):
            self._fail("ino-allocated", f"referenced inode {ino} is free in the inode bitmap")

    # ---- directories ---------------------------------------------------------

    def dir_block(self, ino: int, block: int, raw: bytes) -> None:
        if self.level < CheckLevel.BASIC:
            return
        self._ran("dir-block")
        try:
            entries = DirBlock(raw).entries()
        except ValueError as exc:
            self._fail("dir-block", f"directory {ino} block {block} is malformed: {exc}")
            return
        for entry in entries:
            if not 1 <= entry.ino <= self.layout.inode_count:
                self._fail("dir-block", f"directory {ino} entry {entry.name!r} points at inode {entry.ino}")

    def dir_has_dots(self, ino: int, names: set[str]) -> None:
        if self.level < CheckLevel.BASIC:
            return
        self._ran("dir-dots")
        if "." not in names or ".." not in names:
            self._fail("dir-dots", f"directory {ino} lacks '.'/'..' entries")

    # ---- operations -----------------------------------------------------------

    def input_op(self, name: str, args: dict) -> None:
        """Validate an operation before executing it (§2.3: "validating
        input operations")."""
        if self.level < CheckLevel.BASIC:
            return
        self._ran("input-op")
        for key, value in args.items():
            if key in ("path", "src", "dst", "existing", "new") and not isinstance(value, str):
                self._fail("input-op", f"{name}: argument {key} is {type(value).__name__}, not str")
            if key in ("fd", "length", "offset", "size", "whence", "perms", "flags") and not isinstance(value, int):
                self._fail("input-op", f"{name}: argument {key} is {type(value).__name__}, not int")
            if key == "data" and not isinstance(value, (bytes, bytearray)):
                self._fail("input-op", f"{name}: argument data is {type(value).__name__}, not bytes")

    def fd_state(self, fd: int, ino: int, offset: int) -> None:
        if self.level < CheckLevel.BASIC:
            return
        self._ran("fd-state")
        if fd < 3:
            self._fail("fd-state", f"fd {fd} below the reserved range")
        if not 1 <= ino <= self.layout.inode_count:
            self._fail("fd-state", f"fd {fd} references out-of-range inode {ino}")
        if offset < 0:
            self._fail("fd-state", f"fd {fd} has negative offset {offset}")
