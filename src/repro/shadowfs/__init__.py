"""The shadow filesystem: the robust alternative implementation.

The right-hand side of the paper's Figure 2.  Everything the base has,
the shadow lacks — by design:

* no dentry cache: every path lookup walks from the root inode and scans
  directory entries;
* no inode/page/buffer caches: reads go straight to the device,
  synchronously;
* no concurrency, no locks, no asynchronous block layer;
* no journal and **no device writes at all** — every mutation lands in an
  in-memory block overlay (:class:`~repro.shadowfs.filesystem.Overlay`),
  which doubles as the recovery output: the overlay's blocks *are* the
  "new (and correct) metadata structures that are directly used by a
  rebooted base";
* no fsync/sync family (§3.3 API support);
* the simplest possible allocation policy: first-fit from zero.

What the shadow has *more* of is checking: :mod:`repro.shadowfs.checks`
validates every structure it reads and every invariant it can afford —
affordable precisely because performance is a non-goal (§2.3).

:mod:`repro.shadowfs.replay` implements the two §3.2 execution modes over
a recorded operation sequence (constrained for completed operations,
autonomous for in-flight ones), and :mod:`repro.shadowfs.output` packages
the result for hand-off.
"""

from repro.shadowfs.checks import CheckLevel, ShadowChecks
from repro.shadowfs.filesystem import Overlay, ShadowFilesystem
from repro.shadowfs.output import MetadataUpdate
from repro.shadowfs.replay import ReplayEngine, ReplayReport

__all__ = [
    "ShadowFilesystem",
    "Overlay",
    "ShadowChecks",
    "CheckLevel",
    "MetadataUpdate",
    "ReplayEngine",
    "ReplayReport",
]
