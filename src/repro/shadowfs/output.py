"""The shadow's recovery output.

§3.2: the base "must support metadata downloading by providing
extensively-tested interfaces to absorb the output of the shadow: a set
of file descriptors and on-disk metadata structures."
:class:`MetadataUpdate` is that output, packaged:

* ``metadata_blocks`` — every overlay block that is not file data, with
  its role (superblock, bitmap, inode table, directory, indirect,
  symlink), destined for the base's buffer cache, dirty;
* ``data_pages`` — file data the shadow (re)produced during replay,
  keyed ``(ino, logical)``, destined for the base's page cache, dirty;
* ``fd_table`` — the reconstructed descriptor table (numbers, inodes,
  offsets) to install verbatim;
* ``free_blocks``/``free_inodes`` — the accounting the base's allocator
  state adopts;
* ``inflight_result`` — the outcome of the autonomous-mode operation,
  which the supervisor delivers to the application as if the base had
  completed it.

The payload is plain data (bytes/ints) so it crosses the process
boundary in :mod:`repro.core.procrunner` by pickling without dragging
filesystem objects along.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import OpResult
from repro.basefs.vfs import FdState


@dataclass
class MetadataUpdate:
    metadata_blocks: dict[int, bytes] = field(default_factory=dict)
    roles: dict[int, str] = field(default_factory=dict)
    data_pages: dict[tuple[int, int], bytes] = field(default_factory=dict)
    fd_table: dict[int, FdState] = field(default_factory=dict)
    touched_inos: set[int] = field(default_factory=set)
    free_blocks: int = 0
    free_inodes: int = 0
    inflight_result: OpResult | None = None

    @classmethod
    def from_shadow(cls, shadow, inflight_result: OpResult | None = None) -> "MetadataUpdate":
        """Package a shadow filesystem's overlay after replay."""
        metadata = shadow.overlay.metadata_blocks()
        return cls(
            metadata_blocks=metadata,
            roles={b: shadow.overlay.roles.get(b, "unknown") for b in metadata},
            data_pages=shadow.overlay.data_blocks(),
            fd_table=shadow.fd_table.snapshot(),
            touched_inos=set(shadow.overlay.touched_inos),
            free_blocks=shadow.sb.free_blocks,
            free_inodes=shadow.sb.free_inodes,
            inflight_result=inflight_result,
        )

    @property
    def total_blocks(self) -> int:
        return len(self.metadata_blocks) + len(self.data_pages)

    def summary(self) -> str:
        return (
            f"MetadataUpdate({len(self.metadata_blocks)} metadata blocks, "
            f"{len(self.data_pages)} data pages, {len(self.fd_table)} fds, "
            f"free {self.free_blocks}b/{self.free_inodes}i)"
        )
