"""Constrained and autonomous replay (§3.2 "Recovery").

The replay engine drives a :class:`ShadowFilesystem` over the recorded
operation sequence:

* **fd registry install** — descriptors open at the last durability
  point are validated and installed first;
* **constrained mode** — completed operations re-execute in order.  For
  creating operations the base's recorded inode number is pinned via
  ``ino_hint`` ("the shadow validates if the value produced by the base
  filesystem is usable, rather than performing its own allocation").
  Every outcome is cross-checked against the record; a discrepancy is
  reported, and the ``strict`` policy decides whether replay aborts
  ("whether or not to continue can be configured").  Operations the base
  failed with an errno are *omitted* ("The shadow omits operations that
  returned an error by the base") — except pure fd-state operations
  (none of which can fail without also failing identically here).
* **fsync** records are skipped: completed fsyncs only affected
  durability (already reflected in the on-disk state replay starts
  from), and an in-flight fsync is delegated back to the base (§3.3).
* **autonomous mode** — the single in-flight operation executes without
  hints: the shadow makes its own policy decisions (new inode numbers
  included) because the application never saw an outcome to honour.

Any :class:`InvariantViolation` from the shadow's checks, or a strict
cross-check mismatch, aborts replay with :class:`RecoveryFailure` — the
shadow refuses to hand off state it cannot vouch for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import FsOp, OpResult
from repro.basefs.vfs import FdState
from repro.core.oplog import OpRecord
from repro.errors import (
    CrossCheckMismatch,
    DeviceError,
    FsError,
    InvariantViolation,
    RecoveryFailure,
)
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.output import MetadataUpdate


@dataclass
class Discrepancy:
    """One constrained-mode disagreement between base record and shadow."""

    seq: int
    op: str
    recorded: str
    replayed: str

    def __str__(self) -> str:
        return f"op #{self.seq} {self.op}: base recorded {self.recorded}, shadow produced {self.replayed}"


@dataclass
class ReplayReport:
    constrained_ops: int = 0
    autonomous_ops: int = 0
    skipped_errors: int = 0
    skipped_fsyncs: int = 0
    discrepancies: list[Discrepancy] = field(default_factory=list)
    checks_run: int = 0

    @property
    def clean(self) -> bool:
        return not self.discrepancies


class ReplayEngine:
    def __init__(self, shadow: ShadowFilesystem, strict: bool = True):
        self.shadow = shadow
        self.strict = strict
        self.report = ReplayReport()

    def run(
        self,
        records: list[OpRecord],
        fd_snapshot: dict[int, FdState],
        inflight: tuple[int, FsOp] | None = None,
    ) -> MetadataUpdate:
        """Full recovery replay; returns the hand-off payload.

        ``records`` are the completed operations since the last commit,
        ``fd_snapshot`` the descriptor registry at that commit, and
        ``inflight`` the (seq, op) that was executing when the error was
        detected, if any.
        """
        try:
            for state in sorted(fd_snapshot.values(), key=lambda s: s.fd):
                self.shadow.install_fd(state)
            for record in records:
                self._replay_one(record)
            inflight_result: OpResult | None = None
            if inflight is not None:
                seq, op = inflight
                inflight_result = self._autonomous(seq, op)
        except InvariantViolation as exc:
            raise RecoveryFailure(f"shadow invariant check failed during replay: {exc}", phase="replay") from exc
        except ValueError as exc:
            # Parse/checksum failures from the format layer: the on-disk
            # structures are damaged beyond the shadow's ability to vouch.
            raise RecoveryFailure(f"shadow could not parse on-disk state: {exc}", phase="replay") from exc
        except DeviceError as exc:
            raise RecoveryFailure(f"device failed under the shadow: {exc}", phase="replay") from exc
        finally:
            self.report.checks_run = self.shadow.checks.stats.checks_run
        return MetadataUpdate.from_shadow(self.shadow, inflight_result)

    # ------------------------------------------------------------------

    def _replay_one(self, record: OpRecord) -> None:
        op = record.op
        if op.name == "fsync":
            self.report.skipped_fsyncs += 1
            return
        if record.outcome.errno is not None:
            # The base returned an error: no state effect to reconstruct.
            self.report.skipped_errors += 1
            return
        if record.outcome.ino is not None and op.name in ("mkdir", "symlink", "open"):
            self.shadow.ino_hint = record.outcome.ino
        replayed = op.apply(self.shadow, opseq=record.seq)
        self.shadow.ino_hint = None
        self.report.constrained_ops += 1
        self._crosscheck(record, replayed)

    def _crosscheck(self, record: OpRecord, replayed: OpResult) -> None:
        """Compare one constrained-mode outcome against the base's record.

        A seam on purpose: the recovery layer subclasses the engine and
        overrides this to capture every (expected, observed) pair for
        the forensic bundle — supervisor-side, so the shadow itself
        stays instrumentation-free (SHADOW-PURITY).
        """
        if not record.outcome.same_outcome_as(replayed):
            discrepancy = Discrepancy(
                seq=record.seq,
                op=record.op.describe(),
                recorded=self._brief(record.outcome),
                replayed=self._brief(replayed),
            )
            self.report.discrepancies.append(discrepancy)
            if self.strict:
                raise CrossCheckMismatch(str(discrepancy), op_index=record.seq)

    def _autonomous(self, seq: int, op: FsOp) -> OpResult:
        if op.name == "fsync":
            # Delegated back to the base: after hand-off the base performs
            # the fsync itself (§3.3).  Report success-pending.
            self.report.skipped_fsyncs += 1
            return OpResult(value="fsync-delegated")
        result = op.apply(self.shadow, opseq=seq)
        self.report.autonomous_ops += 1
        return result

    @staticmethod
    def _brief(outcome: OpResult) -> str:
        if outcome.errno is not None:
            return outcome.errno.name
        value = outcome.value
        if isinstance(value, (bytes, bytearray)):
            text = f"<{len(value)} bytes>"
        else:
            text = repr(value)
        if outcome.ino is not None:
            text += f" (ino {outcome.ino})"
        return text
