"""The shadow filesystem implementation.

``ShadowFilesystem`` implements the same :class:`repro.api.FilesystemAPI`
contract and the same on-disk format as the base, as "the simplest
possible yet equivalent implementation" (§2.3):

* **sequential and synchronous** — one operation at a time, device reads
  issued directly, no queues;
* **no caches** — path lookup starts at the root inode and scans
  directory entries every time; inodes and bitmaps are re-read (through
  the overlay) on every use;
* **never writes to the device** — construction wraps the device in a
  :class:`WriteFencedDevice`, and every mutation lands in the
  :class:`Overlay`, an in-memory block map that is simultaneously the
  shadow's working state and its recovery output;
* **immediate allocation** with the simplest policy: first free bit,
  scanning groups from zero;
* **checks everywhere** — every structure read is validated by
  :class:`~repro.shadowfs.checks.ShadowChecks` at the configured level.

Semantic equivalence with the base is exact for everything applications
can observe (return values, errnos, inode numbers under constrained
allocation, timestamps, file bytes) and for metadata *consistency*; block
placement may differ, which is the §3.3-sanctioned policy divergence.

``fsync`` raises ``FsError(EINVAL)``: the shadow omits the sync family
(§3.3), and the replay engine skips/delegates those records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import (
    FilesystemAPI,
    OpenFlags,
    SYMLINK_DEPTH_LIMIT,
    StatResult,
    parent_and_name,
    split_path,
)
from repro.basefs.vfs import FdState, FdTable
from repro.blockdev.device import BlockDevice, WriteFencedDevice
from repro.errors import DeviceError, Errno, FsError, InvariantViolation
from repro.ondisk.directory import DirBlock, DirEntry
from repro.ondisk.inode import (
    FileType,
    MAX_FILE_SIZE,
    N_DIRECT,
    OnDiskInode,
    PTRS_PER_BLOCK,
    make_mode,
)
from repro.ondisk.journal import replay_journal
from repro.ondisk.layout import BLOCK_SIZE, INODE_SIZE
from repro.ondisk.mapping import pack_pointers, unpack_pointers
from repro.ondisk.superblock import STATE_DIRTY, Superblock
from repro.shadowfs.checks import CheckLevel, ShadowChecks

MAX_SYMLINK_TARGET = BLOCK_SIZE - 1
READ_RETRIES = 3  # transient device faults are retried, a runtime-check-era courtesy


@dataclass
class Overlay:
    """All state the shadow produces: modified blocks, never written back.

    ``roles`` classifies each overlay block for the hand-off (and for the
    base's validate-on-sync once ingested); ``data_pages`` maps
    ``(ino, logical) -> physical`` for file-data blocks, which hand off
    into the base's *page* cache rather than its buffer cache.
    """

    blocks: dict[int, bytes] = field(default_factory=dict)
    roles: dict[int, str] = field(default_factory=dict)
    data_pages: dict[tuple[int, int], int] = field(default_factory=dict)
    touched_inos: set[int] = field(default_factory=set)

    def write(self, block: int, data: bytes, role: str) -> None:
        if len(data) != BLOCK_SIZE:
            raise ValueError(f"overlay write of {len(data)} bytes to block {block}")
        self.blocks[block] = bytes(data)
        self.roles[block] = role

    def metadata_blocks(self) -> dict[int, bytes]:
        """Overlay blocks that are metadata (everything but file data)."""
        data_physicals = set(self.data_pages.values())
        return {b: d for b, d in self.blocks.items() if b not in data_physicals}

    def data_blocks(self) -> dict[tuple[int, int], bytes]:
        """File data as ``(ino, logical) -> bytes``."""
        return {key: self.blocks[physical] for key, physical in self.data_pages.items()}


@dataclass
class Ref:
    """A (possibly stale) working reference: inode number + decoded inode.

    The shadow re-reads instead of caching, so a Ref is only valid within
    the operation that created it; mutations write through immediately.
    """

    ino: int
    inode: OnDiskInode


class ShadowFilesystem(FilesystemAPI):
    def __init__(
        self,
        device: BlockDevice,
        check_level: CheckLevel = CheckLevel.FULL,
        shared_pages: dict[tuple[int, int], bytes] | None = None,
    ):
        self.device = WriteFencedDevice(device)
        self.overlay = Overlay()
        self.shared_pages = shared_pages or {}
        self.fd_table = FdTable()
        self.ino_hint: int | None = None  # constrained-mode allocation directive
        self._orphans: set[int] = set()

        sb = Superblock.unpack(self._read_block(0))
        self.layout = sb.layout()
        self.checks = ShadowChecks(self.layout, level=check_level)
        if sb.mount_state == STATE_DIRTY:
            # The image was in use; absorb its committed journal into the
            # overlay (the shadow cannot write, so replay is virtual).
            # replay_journal *can* write (apply=True at base mount), but the
            # shadow calls it apply=False — a read-only scan; and the device
            # here is the WriteFencedDevice, which raises on any write.
            for txn in replay_journal(self.device, self.layout, apply=False):  # raelint: disable=SHADOW-REACH
                for block, data in txn.writes.items():
                    self.overlay.write(block, data, role="replay")
            sb = Superblock.unpack(self._read_block(0))
        self.sb = sb
        self.checks.superblock(sb)
        if check_level >= CheckLevel.FULL:
            self.checks.superblock_counts(sb, self._count_free_blocks(), self._count_free_inodes())

    # ------------------------------------------------------------------
    # raw IO (overlay first, retried device reads)

    def _read_block(self, block: int) -> bytes:
        cached = self.overlay.blocks.get(block)
        if cached is not None:
            return cached
        last_error: DeviceError | None = None
        for _attempt in range(READ_RETRIES):
            try:
                return self.device.read_block(block)
            except DeviceError as exc:
                last_error = exc
                if not exc.transient:
                    break
        assert last_error is not None
        raise last_error

    def _write_block(self, block: int, data: bytes, role: str) -> None:
        self.overlay.write(block, data, role)

    # ------------------------------------------------------------------
    # superblock accounting (write-through to the overlay)

    def _sb_flush(self) -> None:
        self._write_block(0, self.sb.pack(), role="sb")

    def _count_free_blocks(self) -> int:
        return sum(self._read_block_bitmap(g).count_free() for g in range(self.layout.group_count))

    def _count_free_inodes(self) -> int:
        return sum(self._read_inode_bitmap(g).count_free() for g in range(self.layout.group_count))

    # ------------------------------------------------------------------
    # bitmaps

    def _read_block_bitmap(self, group: int):
        from repro.ondisk.bitmap import Bitmap

        return Bitmap.from_block(self.layout.blocks_per_group, self._read_block(self.layout.block_bitmap_block(group)))

    def _read_inode_bitmap(self, group: int):
        from repro.ondisk.bitmap import Bitmap

        return Bitmap.from_block(self.layout.inodes_per_group, self._read_block(self.layout.inode_bitmap_block(group)))

    def _block_is_allocated(self, block: int) -> bool:
        group = self.layout.group_of_block(block)
        bit = block - self.layout.group_start(group)
        return self._read_block_bitmap(group).test(bit)

    def _ino_is_allocated(self, ino: int) -> bool:
        group = self.layout.group_of_ino(ino)
        bit = self.layout.ino_index_in_group(ino)
        return self._read_inode_bitmap(group).test(bit)

    def _alloc_block(self) -> int:
        """First-fit block allocation, groups scanned from zero."""
        if self.sb.free_blocks < 1:
            raise FsError(Errno.ENOSPC, "no free blocks")
        for group in range(self.layout.group_count):
            bitmap = self._read_block_bitmap(group)
            bit = bitmap.find_free(start=0)
            if bit is None:
                continue
            bitmap.set(bit)
            self._write_block(self.layout.block_bitmap_block(group), bitmap.to_block(), role="bitmap")
            self.sb.free_blocks -= 1
            self._sb_flush()
            return self.layout.group_start(group) + bit
        raise FsError(Errno.ENOSPC, "all groups full")

    def _free_block(self, block: int) -> None:
        group = self.layout.group_of_block(block)
        if self.layout.is_metadata_block(block):
            raise InvariantViolation(f"attempt to free metadata block {block}", check="free-metadata-block")
        bit = block - self.layout.group_start(group)
        bitmap = self._read_block_bitmap(group)
        if not bitmap.test(bit):
            raise InvariantViolation(f"double free of block {block}", check="block-double-free")
        bitmap.clear(bit)
        self._write_block(self.layout.block_bitmap_block(group), bitmap.to_block(), role="bitmap")
        self.sb.free_blocks += 1
        self._sb_flush()
        self.overlay.blocks.pop(block, None)
        self.overlay.roles.pop(block, None)
        for key, physical in list(self.overlay.data_pages.items()):
            if physical == block:
                del self.overlay.data_pages[key]

    def _alloc_inode(self) -> int:
        """First-fit inode allocation — or the constrained-mode hint.

        §3.2: "For inode number and file descriptor allocation, the shadow
        validates if the value produced by the base filesystem is usable,
        rather than performing its own allocation."  The replay engine
        sets ``ino_hint`` before each creating operation.
        """
        if self.sb.free_inodes < 1:
            raise FsError(Errno.ENOSPC, "no free inodes")
        if self.ino_hint is not None:
            ino = self.ino_hint
            self.ino_hint = None
            self.layout.check_ino(ino)
            if self._ino_is_allocated(ino):
                raise InvariantViolation(
                    f"base-recorded inode {ino} is not free in the shadow's view",
                    check="constrained-ino",
                )
            self._claim_inode(ino)
            return ino
        for group in range(self.layout.group_count):
            bitmap = self._read_inode_bitmap(group)
            bit = bitmap.find_free(start=0)
            if bit is None:
                continue
            ino = group * self.layout.inodes_per_group + bit + 1
            self._claim_inode(ino)
            return ino
        raise FsError(Errno.ENOSPC, "all inode groups full")

    def _claim_inode(self, ino: int) -> None:
        group = self.layout.group_of_ino(ino)
        bit = self.layout.ino_index_in_group(ino)
        bitmap = self._read_inode_bitmap(group)
        bitmap.set(bit)
        self._write_block(self.layout.inode_bitmap_block(group), bitmap.to_block(), role="bitmap")
        self.sb.free_inodes -= 1
        self._sb_flush()

    def _free_inode_number(self, ino: int) -> None:
        group = self.layout.group_of_ino(ino)
        bit = self.layout.ino_index_in_group(ino)
        bitmap = self._read_inode_bitmap(group)
        if not bitmap.test(bit):
            raise InvariantViolation(f"double free of inode {ino}", check="inode-double-free")
        bitmap.clear(bit)
        self._write_block(self.layout.inode_bitmap_block(group), bitmap.to_block(), role="bitmap")
        self.sb.free_inodes += 1
        self._sb_flush()

    # ------------------------------------------------------------------
    # inodes

    def _iget(self, ino: int, allow_orphan: bool = False) -> Ref:
        self.layout.check_ino(ino)
        block, offset = self.layout.inode_location(ino)
        raw = self._read_block(block)
        inode = OnDiskInode.unpack(raw[offset : offset + INODE_SIZE])
        self.checks.inode(ino, inode, allow_orphan=allow_orphan or ino in self._orphans or bool(self.fd_table.fds_for_ino(ino)))
        self.checks.ino_allocated(ino, self._ino_is_allocated)
        return Ref(ino=ino, inode=inode)

    def _iput(self, ref: Ref) -> None:
        """Write an inode back through the overlay."""
        block, offset = self.layout.inode_location(ref.ino)
        raw = bytearray(self._read_block(block))
        raw[offset : offset + INODE_SIZE] = ref.inode.pack()
        self._write_block(block, bytes(raw), role="itable")
        self.overlay.touched_inos.add(ref.ino)

    def _izero(self, ino: int) -> None:
        block, offset = self.layout.inode_location(ino)
        raw = bytearray(self._read_block(block))
        raw[offset : offset + INODE_SIZE] = b"\x00" * INODE_SIZE
        self._write_block(block, bytes(raw), role="itable")
        self.overlay.touched_inos.add(ino)

    def _new_inode(self, ftype: FileType, perms: int, opseq: int) -> Ref:
        ino = self._alloc_inode()
        inode = OnDiskInode(
            mode=make_mode(ftype, perms),
            nlink=0,
            atime=opseq,
            mtime=opseq,
            ctime=opseq,
        )
        ref = Ref(ino=ino, inode=inode)
        self._iput(ref)
        return ref

    def _destroy_inode(self, ref: Ref) -> None:
        self._truncate_blocks(ref, 0)
        self._free_inode_number(ref.ino)
        self._izero(ref.ino)

    # ------------------------------------------------------------------
    # block mapping

    def _resolve_logical(self, inode: OnDiskInode, logical: int) -> int:
        if logical < 0:
            raise InvariantViolation(f"negative logical block {logical}", check="mapping")
        if logical < N_DIRECT:
            return inode.direct[logical]
        index = logical - N_DIRECT
        if index < PTRS_PER_BLOCK:
            if not inode.indirect:
                return 0
            return unpack_pointers(self._read_block(inode.indirect))[index]
        index -= PTRS_PER_BLOCK
        if index < PTRS_PER_BLOCK * PTRS_PER_BLOCK:
            if not inode.double_indirect:
                return 0
            outer_index, inner_index = divmod(index, PTRS_PER_BLOCK)
            outer = unpack_pointers(self._read_block(inode.double_indirect))
            if not outer[outer_index]:
                return 0
            return unpack_pointers(self._read_block(outer[outer_index]))[inner_index]
        raise FsError(Errno.EFBIG, f"logical block {logical}")

    def _map_block(self, ref: Ref, logical: int, physical: int) -> None:
        inode = ref.inode
        if logical < N_DIRECT:
            inode.direct[logical] = physical
            self._iput(ref)
            return
        index = logical - N_DIRECT
        if index < PTRS_PER_BLOCK:
            if not inode.indirect:
                inode.indirect = self._alloc_pointer_block()
                self._iput(ref)
            pointers = unpack_pointers(self._read_block(inode.indirect))
            pointers[index] = physical
            self._write_block(inode.indirect, pack_pointers(pointers), role="indirect")
            return
        index -= PTRS_PER_BLOCK
        if index >= PTRS_PER_BLOCK * PTRS_PER_BLOCK:
            raise FsError(Errno.EFBIG, f"logical block {logical}")
        outer_index, inner_index = divmod(index, PTRS_PER_BLOCK)
        if not inode.double_indirect:
            inode.double_indirect = self._alloc_pointer_block()
            self._iput(ref)
        outer = unpack_pointers(self._read_block(inode.double_indirect))
        if not outer[outer_index]:
            outer[outer_index] = self._alloc_pointer_block()
            self._write_block(inode.double_indirect, pack_pointers(outer), role="indirect")
        inner = unpack_pointers(self._read_block(outer[outer_index]))
        inner[inner_index] = physical
        self._write_block(outer[outer_index], pack_pointers(inner), role="indirect")

    def _alloc_pointer_block(self) -> int:
        block = self._alloc_block()
        self._write_block(block, bytes(BLOCK_SIZE), role="indirect")
        return block

    def _truncate_blocks(self, ref: Ref, keep_blocks: int) -> None:
        inode = ref.inode
        for logical in range(keep_blocks, N_DIRECT):
            if inode.direct[logical]:
                self._free_block(inode.direct[logical])
                inode.direct[logical] = 0
        if inode.indirect:
            start = max(0, keep_blocks - N_DIRECT)
            pointers = unpack_pointers(self._read_block(inode.indirect))
            for i in range(start, PTRS_PER_BLOCK):
                if pointers[i]:
                    self._free_block(pointers[i])
                    pointers[i] = 0
            if start == 0:
                self._free_block(inode.indirect)
                inode.indirect = 0
            else:
                self._write_block(inode.indirect, pack_pointers(pointers), role="indirect")
        if inode.double_indirect:
            dbl_base = N_DIRECT + PTRS_PER_BLOCK
            start = max(0, keep_blocks - dbl_base)
            outer = unpack_pointers(self._read_block(inode.double_indirect))
            for oi in range(PTRS_PER_BLOCK):
                if not outer[oi]:
                    continue
                inner_start = max(0, start - oi * PTRS_PER_BLOCK)
                if inner_start >= PTRS_PER_BLOCK:
                    continue
                inner = unpack_pointers(self._read_block(outer[oi]))
                for ii in range(inner_start, PTRS_PER_BLOCK):
                    if inner[ii]:
                        self._free_block(inner[ii])
                        inner[ii] = 0
                if inner_start == 0:
                    self._free_block(outer[oi])
                    outer[oi] = 0
                else:
                    self._write_block(outer[oi], pack_pointers(inner), role="indirect")
            if start == 0:
                self._free_block(inode.double_indirect)
                inode.double_indirect = 0
            else:
                self._write_block(inode.double_indirect, pack_pointers(outer), role="indirect")
        self._iput(ref)

    # ------------------------------------------------------------------
    # directories (no cache: scan every time)

    def _dir_blocks(self, ref: Ref) -> list[int]:
        blocks = []
        for logical in range(ref.inode.block_count()):
            physical = self._resolve_logical(ref.inode, logical)
            if physical:
                self.checks.block_allocated(physical, self._block_is_allocated)
                blocks.append(physical)
        return blocks

    def _dir_entries(self, ref: Ref) -> list[DirEntry]:
        entries: list[DirEntry] = []
        for block in self._dir_blocks(ref):
            raw = self._read_block(block)
            self.checks.dir_block(ref.ino, block, raw)
            entries.extend(DirBlock(raw).entries())
        self.checks.dir_has_dots(ref.ino, {e.name for e in entries})
        return entries

    def _dir_find(self, ref: Ref, name: str) -> DirEntry | None:
        for block in self._dir_blocks(ref):
            raw = self._read_block(block)
            self.checks.dir_block(ref.ino, block, raw)
            entry = DirBlock(raw).find(name)
            if entry is not None:
                return entry
        return None

    def _dir_is_empty(self, ref: Ref) -> bool:
        return all(entry.name in (".", "..") for entry in self._dir_entries(ref))

    def _dir_insert_cost(self, ref: Ref, name: str) -> int:
        for block in self._dir_blocks(ref):
            if DirBlock(self._read_block(block)).free_space_for(name):
                return 0
        cost = 1
        logical = ref.inode.block_count()
        if logical >= N_DIRECT and not ref.inode.indirect:
            cost += 1
        if logical >= N_DIRECT + PTRS_PER_BLOCK:
            raise FsError(Errno.ENOSPC, "directory too large")
        return cost

    def _dir_insert(self, ref: Ref, name: str, child_ino: int, ftype: FileType, opseq: int) -> None:
        for block in self._dir_blocks(ref):
            dir_block = DirBlock(self._read_block(block))
            if dir_block.insert(child_ino, name, ftype):
                self._write_block(block, dir_block.to_block(), role="dir")
                ref.inode.mtime = opseq
                ref.inode.ctime = opseq
                self._iput(ref)
                return
        logical = ref.inode.block_count()
        physical = self._alloc_block()
        self._map_block(ref, logical, physical)
        dir_block = DirBlock()
        if not dir_block.insert(child_ino, name, ftype):
            raise AssertionError("fresh directory block rejected an entry")
        self._write_block(physical, dir_block.to_block(), role="dir")
        ref.inode.size += BLOCK_SIZE
        ref.inode.mtime = opseq
        ref.inode.ctime = opseq
        self._iput(ref)

    def _dir_remove(self, ref: Ref, name: str, opseq: int) -> None:
        for block in self._dir_blocks(ref):
            dir_block = DirBlock(self._read_block(block))
            if dir_block.remove(name):
                self._write_block(block, dir_block.to_block(), role="dir")
                ref.inode.mtime = opseq
                ref.inode.ctime = opseq
                self._iput(ref)
                return
        raise InvariantViolation(f"entry {name!r} vanished from dir {ref.ino}", check="dir-remove")

    def _dir_set_dotdot(self, ref: Ref, new_parent_ino: int) -> None:
        for block in self._dir_blocks(ref):
            dir_block = DirBlock(self._read_block(block))
            if dir_block.find("..") is not None:
                dir_block.remove("..")
                if not dir_block.insert(new_parent_ino, "..", FileType.DIRECTORY):
                    raise InvariantViolation(f"no room to repoint '..' in dir {ref.ino}", check="dotdot")
                self._write_block(block, dir_block.to_block(), role="dir")
                return
        raise InvariantViolation(f"dir {ref.ino} has no '..' entry", check="dotdot")

    # ------------------------------------------------------------------
    # path resolution (always from the root, §3.3)

    def _root(self) -> Ref:
        return self._iget(self.sb.root_ino)

    def _read_symlink(self, ref: Ref) -> str:
        block = ref.inode.direct[0]
        if not block:
            raise InvariantViolation(f"symlink inode {ref.ino} has no target block", check="symlink-block")
        self.checks.block_allocated(block, self._block_is_allocated)
        return self._read_block(block)[: ref.inode.size].decode()

    def _resolve_entry(self, path: str, follow_last: bool = True) -> tuple[Ref, str, Ref | None]:
        components = split_path(path)
        current = self._root()
        if not components:
            return current, "", current
        depth = 0
        i = 0
        while i < len(components):
            name = components[i]
            is_last = i == len(components) - 1
            if not current.inode.is_dir:
                raise FsError(Errno.ENOTDIR, "/" + "/".join(components[:i]))
            entry = self._dir_find(current, name)
            if entry is None:
                if is_last:
                    return current, name, None
                raise FsError(Errno.ENOENT, "/" + "/".join(components[: i + 1]))
            child = self._iget(entry.ino)
            if child.inode.is_symlink and (follow_last or not is_last):
                depth += 1
                if depth > SYMLINK_DEPTH_LIMIT:
                    raise FsError(Errno.ELOOP, path)
                target = self._read_symlink(child)
                rest = components[i + 1 :]
                if target.startswith("/"):
                    components = split_path(target) + rest
                    current = self._root()
                else:
                    components = split_path("/" + target) + rest
                i = 0
                if not components:
                    return current, "", current
                continue
            if is_last:
                return current, name, child
            current = child
            i += 1
        raise AssertionError("unreachable")

    def _resolve(self, path: str, follow_last: bool = True) -> Ref:
        _parent, _name, ref = self._resolve_entry(path, follow_last=follow_last)
        if ref is None:
            raise FsError(Errno.ENOENT, path)
        return ref

    def _resolve_parent(self, path: str) -> tuple[Ref, str]:
        parents, name = parent_and_name(path)
        parent_path = "/" + "/".join(parents)
        parent = self._resolve(parent_path, follow_last=True)
        if not parent.inode.is_dir:
            raise FsError(Errno.ENOTDIR, parent_path)
        return parent, name

    # ------------------------------------------------------------------
    # recovery support

    def install_fd(self, state: FdState) -> None:
        """Adopt one descriptor from the op log's fd registry, validating
        it first (a bad registry means the recorded state is unusable)."""
        self.checks.fd_state(state.fd, state.ino, state.offset)
        ref = self._iget(state.ino, allow_orphan=True)
        if not ref.inode.is_regular:
            raise InvariantViolation(
                f"fd {state.fd} references non-regular inode {state.ino}", check="fd-install"
            )
        self.fd_table.install(state.snapshot())
        if ref.inode.nlink == 0:
            self._orphans.add(state.ino)

    # ==================================================================
    # FilesystemAPI

    def mkdir(self, path: str, perms: int = 0o755, opseq: int = 0) -> None:
        self.checks.input_op("mkdir", {"path": path, "perms": perms})
        parent, name = self._resolve_parent(path)
        if self._dir_find(parent, name) is not None:
            raise FsError(Errno.EEXIST, path)
        needed = 1 + self._dir_insert_cost(parent, name)
        if self.sb.free_blocks < needed:
            raise FsError(Errno.ENOSPC, path)
        if self.sb.free_inodes < 1:
            raise FsError(Errno.ENOSPC, path)
        child = self._new_inode(FileType.DIRECTORY, perms, opseq)
        block = self._alloc_block()
        dir_block = DirBlock()
        dir_block.insert(child.ino, ".", FileType.DIRECTORY)
        dir_block.insert(parent.ino, "..", FileType.DIRECTORY)
        self._write_block(block, dir_block.to_block(), role="dir")
        child.inode.direct[0] = block
        child.inode.size = BLOCK_SIZE
        child.inode.nlink = 2
        self._iput(child)
        self._dir_insert(parent, name, child.ino, FileType.DIRECTORY, opseq)
        parent.inode.nlink += 1
        self._iput(parent)

    def rmdir(self, path: str, opseq: int = 0) -> None:
        self.checks.input_op("rmdir", {"path": path})
        parent, name = self._resolve_parent(path)
        entry = self._dir_find(parent, name)
        if entry is None:
            raise FsError(Errno.ENOENT, path)
        child = self._iget(entry.ino)
        if not child.inode.is_dir:
            raise FsError(Errno.ENOTDIR, path)
        if not self._dir_is_empty(child):
            raise FsError(Errno.ENOTEMPTY, path)
        self._dir_remove(parent, name, opseq)
        parent.inode.nlink -= 1
        self._iput(parent)
        child.inode.nlink = 0
        self._destroy_inode(child)

    def unlink(self, path: str, opseq: int = 0) -> None:
        self.checks.input_op("unlink", {"path": path})
        parent, name = self._resolve_parent(path)
        entry = self._dir_find(parent, name)
        if entry is None:
            raise FsError(Errno.ENOENT, path)
        child = self._iget(entry.ino)
        if child.inode.is_dir:
            raise FsError(Errno.EISDIR, path)
        self._dir_remove(parent, name, opseq)
        child.inode.nlink -= 1
        child.inode.ctime = opseq
        self._iput(child)
        if child.inode.nlink == 0:
            if self.fd_table.fds_for_ino(child.ino):
                self._orphans.add(child.ino)
            else:
                self._destroy_inode(child)

    def rename(self, src: str, dst: str, opseq: int = 0) -> None:
        self.checks.input_op("rename", {"src": src, "dst": dst})
        src_parent, src_name = self._resolve_parent(src)
        dst_parent, dst_name = self._resolve_parent(dst)
        if dst_parent.ino == src_parent.ino:
            dst_parent = src_parent  # one Ref per inode within the operation
        src_entry = self._dir_find(src_parent, src_name)
        if src_entry is None:
            raise FsError(Errno.ENOENT, src)
        moving = self._iget(src_entry.ino)
        dst_entry = self._dir_find(dst_parent, dst_name)

        if dst_entry is not None and dst_entry.ino == moving.ino:
            return
        if moving.inode.is_dir:
            cursor = dst_parent
            while cursor.ino != self.sb.root_ino:
                if cursor.ino == moving.ino:
                    raise FsError(Errno.EINVAL, f"{dst} is inside {src}")
                dotdot = self._dir_find(cursor, "..")
                if dotdot is None:
                    raise InvariantViolation(f"dir {cursor.ino} lacks '..'", check="dotdot")
                cursor = self._iget(dotdot.ino)
            if moving.ino == self.sb.root_ino:
                raise FsError(Errno.EINVAL, "cannot rename /")

        existing = self._iget(dst_entry.ino) if dst_entry is not None else None
        if existing is not None:
            if moving.inode.is_dir and not existing.inode.is_dir:
                raise FsError(Errno.ENOTDIR, dst)
            if not moving.inode.is_dir and existing.inode.is_dir:
                raise FsError(Errno.EISDIR, dst)
            if existing.inode.is_dir and not self._dir_is_empty(existing):
                raise FsError(Errno.ENOTEMPTY, dst)
        else:
            needed = self._dir_insert_cost(dst_parent, dst_name)
            if self.sb.free_blocks < needed:
                raise FsError(Errno.ENOSPC, dst)

        if existing is not None:
            self._dir_remove(dst_parent, dst_name, opseq)
            if existing.inode.is_dir:
                dst_parent.inode.nlink -= 1
                self._iput(dst_parent)
                existing.inode.nlink = 0
                self._destroy_inode(existing)
            else:
                existing.inode.nlink -= 1
                existing.inode.ctime = opseq
                self._iput(existing)
                if existing.inode.nlink == 0:
                    if self.fd_table.fds_for_ino(existing.ino):
                        self._orphans.add(existing.ino)
                    else:
                        self._destroy_inode(existing)

        self._dir_remove(src_parent, src_name, opseq)
        self._dir_insert(dst_parent, dst_name, moving.ino, moving.inode.ftype, opseq)

        if moving.inode.is_dir and src_parent.ino != dst_parent.ino:
            self._dir_set_dotdot(moving, dst_parent.ino)
            src_parent.inode.nlink -= 1
            dst_parent.inode.nlink += 1
            self._iput(src_parent)
            self._iput(dst_parent)
        moving.inode.ctime = opseq
        self._iput(moving)

    def link(self, existing: str, new: str, opseq: int = 0) -> None:
        self.checks.input_op("link", {"existing": existing, "new": new})
        target = self._resolve(existing, follow_last=False)
        if target.inode.is_dir:
            raise FsError(Errno.EPERM, "hard link to directory")
        new_parent, new_name = self._resolve_parent(new)
        if self._dir_find(new_parent, new_name) is not None:
            raise FsError(Errno.EEXIST, new)
        needed = self._dir_insert_cost(new_parent, new_name)
        if self.sb.free_blocks < needed:
            raise FsError(Errno.ENOSPC, new)
        self._dir_insert(new_parent, new_name, target.ino, target.inode.ftype, opseq)
        target.inode.nlink += 1
        target.inode.ctime = opseq
        self._iput(target)

    def symlink(self, target: str, path: str, opseq: int = 0) -> None:
        self.checks.input_op("symlink", {"target": target, "path": path})
        encoded = target.encode()
        if not target:
            raise FsError(Errno.EINVAL, "empty symlink target")
        if len(encoded) > MAX_SYMLINK_TARGET:
            raise FsError(Errno.ENAMETOOLONG, "symlink target too long")
        parent, name = self._resolve_parent(path)
        if self._dir_find(parent, name) is not None:
            raise FsError(Errno.EEXIST, path)
        needed = 1 + self._dir_insert_cost(parent, name)
        if self.sb.free_blocks < needed:
            raise FsError(Errno.ENOSPC, path)
        if self.sb.free_inodes < 1:
            raise FsError(Errno.ENOSPC, path)
        child = self._new_inode(FileType.SYMLINK, 0o777, opseq)
        block = self._alloc_block()
        self._write_block(block, encoded + b"\x00" * (BLOCK_SIZE - len(encoded)), role="symlink")
        child.inode.direct[0] = block
        child.inode.size = len(encoded)
        child.inode.nlink = 1
        self._iput(child)
        self._dir_insert(parent, name, child.ino, FileType.SYMLINK, opseq)

    def readlink(self, path: str) -> str:
        self.checks.input_op("readlink", {"path": path})
        ref = self._resolve(path, follow_last=False)
        if not ref.inode.is_symlink:
            raise FsError(Errno.EINVAL, path)
        return self._read_symlink(ref)

    def readdir(self, path: str) -> list[str]:
        self.checks.input_op("readdir", {"path": path})
        ref = self._resolve(path, follow_last=True)
        if not ref.inode.is_dir:
            raise FsError(Errno.ENOTDIR, path)
        return sorted(entry.name for entry in self._dir_entries(ref) if entry.name not in (".", ".."))

    def stat(self, path: str) -> StatResult:
        self.checks.input_op("stat", {"path": path})
        return self._stat_ref(self._resolve(path, follow_last=True))

    def lstat(self, path: str) -> StatResult:
        self.checks.input_op("lstat", {"path": path})
        return self._stat_ref(self._resolve(path, follow_last=False))

    def _stat_ref(self, ref: Ref) -> StatResult:
        inode = ref.inode
        return StatResult(
            ino=ref.ino,
            ftype=inode.ftype,
            size=inode.size,
            nlink=inode.nlink,
            perms=inode.perms,
            uid=inode.uid,
            gid=inode.gid,
            atime=inode.atime,
            mtime=inode.mtime,
            ctime=inode.ctime,
        )

    def truncate(self, path: str, size: int, opseq: int = 0) -> None:
        self.checks.input_op("truncate", {"path": path, "size": size})
        if size < 0:
            raise FsError(Errno.EINVAL, f"negative size {size}")
        if size > MAX_FILE_SIZE:
            raise FsError(Errno.EFBIG, str(size))
        ref = self._resolve(path, follow_last=True)
        if ref.inode.is_dir:
            raise FsError(Errno.EISDIR, path)
        if ref.inode.is_symlink:
            raise FsError(Errno.EINVAL, path)
        self._truncate_ref(ref, size, opseq)

    def _truncate_ref(self, ref: Ref, size: int, opseq: int) -> None:
        old_size = ref.inode.size
        if size < old_size:
            keep = (size + BLOCK_SIZE - 1) // BLOCK_SIZE
            self._truncate_blocks(ref, keep)
            within = size % BLOCK_SIZE
            if within:
                logical = keep - 1
                physical = self._resolve_logical(ref.inode, logical)
                if physical:
                    data = bytearray(self._data_block_read(ref.ino, logical, physical))
                    data[within:] = b"\x00" * (BLOCK_SIZE - within)
                    self._write_block(physical, bytes(data), role="data")
                    self.overlay.data_pages[(ref.ino, logical)] = physical
        ref.inode.size = size
        ref.inode.mtime = opseq
        ref.inode.ctime = opseq
        self._iput(ref)

    def open(self, path: str, flags: OpenFlags = OpenFlags.NONE, perms: int = 0o644, opseq: int = 0) -> int:
        self.checks.input_op("open", {"path": path, "flags": int(flags), "perms": perms})
        parent_and_name(path)  # reject "/"
        if flags & OpenFlags.CREAT and flags & OpenFlags.EXCL:
            parent, name, found = self._resolve_entry(path, follow_last=False)
            if found is not None:
                raise FsError(Errno.EEXIST, path)
        else:
            parent, name, found = self._resolve_entry(path, follow_last=True)

        if found is None:
            if not flags & OpenFlags.CREAT:
                raise FsError(Errno.ENOENT, path)
            needed = self._dir_insert_cost(parent, name)
            if self.sb.free_blocks < needed:
                raise FsError(Errno.ENOSPC, path)
            if self.sb.free_inodes < 1:
                raise FsError(Errno.ENOSPC, path)
            child = self._new_inode(FileType.REGULAR, perms, opseq)
            child.inode.nlink = 1
            self._iput(child)
            self._dir_insert(parent, name, child.ino, FileType.REGULAR, opseq)
        else:
            child = found
            if child.inode.is_dir:
                raise FsError(Errno.EISDIR, path)
            if child.inode.is_symlink:
                raise FsError(Errno.ELOOP, path)

        state = self.fd_table.allocate(child.ino, flags)
        if flags & OpenFlags.TRUNC and child.inode.size:
            self._truncate_ref(child, 0, opseq)
        return state.fd

    def close(self, fd: int, opseq: int = 0) -> None:
        self.checks.input_op("close", {"fd": fd})
        state = self.fd_table.release(fd)
        if state.ino in self._orphans and not self.fd_table.fds_for_ino(state.ino):
            self._orphans.discard(state.ino)
            ref = self._iget(state.ino, allow_orphan=True)
            self._destroy_inode(ref)

    def _data_block_read(self, ino: int, logical: int, physical: int) -> bytes:
        """Data read order: shadow's own overlay, shared (preserved) page
        cache pages, then the device."""
        cached = self.overlay.blocks.get(physical)
        if cached is not None:
            return cached
        shared = self.shared_pages.get((ino, logical))
        if shared is not None:
            return shared
        return self._read_block(physical)

    def read(self, fd: int, length: int, opseq: int = 0) -> bytes:
        self.checks.input_op("read", {"fd": fd, "length": length})
        if length < 0:
            raise FsError(Errno.EINVAL, f"negative length {length}")
        state = self.fd_table.get(fd)
        ref = self._iget(state.ino, allow_orphan=True)
        if ref.inode.is_dir:
            raise FsError(Errno.EISDIR, f"fd {fd}")
        start = state.offset
        end = min(ref.inode.size, start + length)
        if start >= ref.inode.size or length == 0:
            return b""
        out = bytearray()
        offset = start
        while offset < end:
            logical, within = divmod(offset, BLOCK_SIZE)
            take = min(BLOCK_SIZE - within, end - offset)
            physical = self._resolve_logical(ref.inode, logical)
            if physical:
                self.checks.block_allocated(physical, self._block_is_allocated)
                data = self._data_block_read(state.ino, logical, physical)
            else:
                data = bytes(BLOCK_SIZE)
            out += data[within : within + take]
            offset += take
        state.offset = end
        return bytes(out)

    def write(self, fd: int, data: bytes, opseq: int = 0) -> int:
        self.checks.input_op("write", {"fd": fd, "data": bytes(data) if isinstance(data, bytearray) else data})
        if not isinstance(data, (bytes, bytearray)):
            raise FsError(Errno.EINVAL, "write data must be bytes")
        state = self.fd_table.get(fd)
        ref = self._iget(state.ino, allow_orphan=True)
        if ref.inode.is_dir:
            raise FsError(Errno.EISDIR, f"fd {fd}")
        if not data:
            return 0
        offset = ref.inode.size if state.flags & OpenFlags.APPEND else state.offset
        end = offset + len(data)
        if end > MAX_FILE_SIZE:
            raise FsError(Errno.EFBIG, f"write to {end}")

        first, last = offset // BLOCK_SIZE, (end - 1) // BLOCK_SIZE
        # ENOSPC pre-check mirroring the base's delalloc reservation: count
        # the blocks (data + pointer blocks) this write will allocate.
        needed = 0
        have_indirect = bool(ref.inode.indirect)
        have_double = bool(ref.inode.double_indirect)
        inner_present: set[int] = set()
        for logical in range(first, last + 1):
            if self._resolve_logical(ref.inode, logical):
                continue
            needed += 1
            if logical >= N_DIRECT + PTRS_PER_BLOCK:
                outer_index = (logical - N_DIRECT - PTRS_PER_BLOCK) // PTRS_PER_BLOCK
                if not have_double:
                    needed += 1
                    have_double = True
                if outer_index not in inner_present:
                    if not self._double_inner_present(ref.inode, outer_index):
                        needed += 1
                    inner_present.add(outer_index)
            elif logical >= N_DIRECT and not have_indirect:
                needed += 1
                have_indirect = True
        if self.sb.free_blocks < needed:
            raise FsError(Errno.ENOSPC, f"write needs {needed} blocks")

        cursor = offset
        remaining = memoryview(bytes(data))
        for logical in range(first, last + 1):
            within = cursor % BLOCK_SIZE
            take = min(BLOCK_SIZE - within, end - cursor)
            physical = self._resolve_logical(ref.inode, logical)
            if physical:
                if within == 0 and take == BLOCK_SIZE:
                    block = bytearray(BLOCK_SIZE)
                else:
                    block = bytearray(self._data_block_read(state.ino, logical, physical))
            else:
                physical = self._alloc_block()
                self._map_block(ref, logical, physical)
                block = bytearray(BLOCK_SIZE)
            block[within : within + take] = remaining[:take]
            self._write_block(physical, bytes(block), role="data")
            self.overlay.data_pages[(state.ino, logical)] = physical
            remaining = remaining[take:]
            cursor += take

        if end > ref.inode.size:
            ref.inode.size = end
        ref.inode.mtime = opseq
        ref.inode.ctime = opseq
        self._iput(ref)
        state.offset = end
        return len(data)

    def _double_inner_present(self, inode: OnDiskInode, outer_index: int) -> bool:
        if not inode.double_indirect:
            return False
        outer = unpack_pointers(self._read_block(inode.double_indirect))
        return bool(outer[outer_index])

    def lseek(self, fd: int, offset: int, whence: int = 0, opseq: int = 0) -> int:
        self.checks.input_op("lseek", {"fd": fd, "offset": offset, "whence": whence})
        state = self.fd_table.get(fd)
        ref = self._iget(state.ino, allow_orphan=True)
        if whence == 0:
            new = offset
        elif whence == 1:
            new = state.offset + offset
        elif whence == 2:
            new = ref.inode.size + offset
        else:
            raise FsError(Errno.EINVAL, f"whence {whence}")
        if new < 0:
            raise FsError(Errno.EINVAL, f"offset {new}")
        state.offset = new
        return new

    def fsync(self, fd: int, opseq: int = 0) -> None:
        """Unsupported by design (§3.3): the shadow never persists.  The
        replay engine skips completed fsyncs and delegates in-flight ones
        back to the base."""
        raise FsError(Errno.EINVAL, "the shadow filesystem does not implement fsync")

    def fstat_ino(self, fd: int) -> int:
        return self.fd_table.get(fd).ino
