"""Bounded-exhaustive refinement checking of the shadow against the spec.

This is the verification budget a Python reproduction can actually
spend: instead of Verus proofs, every operation sequence up to a depth
bound, drawn from a small operation alphabet over a small namespace, is
executed on a fresh shadow filesystem and on the spec model, comparing
every outcome (with ino bijection) and the final logical state.  Small-
scope exhaustiveness plus the hypothesis property suite in
``tests/properties/`` is the classic lightweight-formal-methods recipe
(the paper's own citation [8] for validating S3's storage node).

The shadow under test mounts a freshly mkfs'ed in-memory image each
sequence, so sequences are independent and failures minimal by
construction (a divergence at depth k is reported with its exact
k-operation prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.api import FilesystemAPI, FsOp, OpenFlags, op
from repro.blockdev.device import MemoryBlockDevice
from repro.errors import FsError
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec.equivalence import capture_state, outcomes_equivalent, states_equivalent
from repro.spec.model import SpecFilesystem


def default_alphabet() -> list[FsOp]:
    """A small alphabet that reaches every subsystem: namespace ops,
    symlinks, hard links, data IO, fd state."""
    return [
        op("mkdir", path="/d"),
        op("open", path="/f", flags=int(OpenFlags.CREAT)),
        op("write", fd=3, data=b"abc"),
        op("lseek", fd=3, offset=0, whence=0),
        op("read", fd=3, length=2),
        op("close", fd=3),
        op("unlink", path="/f"),
        op("rename", src="/f", dst="/d/g"),
        op("symlink", target="/d", path="/s"),
        op("stat", path="/s/g"),
        op("rmdir", path="/d"),
        op("truncate", path="/f", size=1),
    ]


@dataclass
class Divergence:
    prefix: list[str]
    problem: str

    def __str__(self) -> str:
        return f"after [{'; '.join(self.prefix)}]: {self.problem}"


@dataclass
class VerifierResult:
    sequences_checked: int = 0
    ops_executed: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


_IMAGE_TEMPLATES: dict[int, bytes] = {}


def fresh_shadow(block_count: int = 1024, check_level: CheckLevel = CheckLevel.FULL) -> ShadowFilesystem:
    """A shadow over a freshly formatted in-memory image.

    Formatted images are cached per geometry and restored bytewise, so
    the exhaustive verifier does not pay mkfs once per sequence.
    """
    device = MemoryBlockDevice(block_count=block_count)
    template = _IMAGE_TEMPLATES.get(block_count)
    if template is None:
        # Fixture construction, not verification: mkfs formats the private
        # in-memory image *before* the shadow under test exists.  The spec
        # oracle itself never touches a device during checking.
        mkfs(device)  # raelint: disable=SHADOW-REACH
        template = device.snapshot()
        _IMAGE_TEMPLATES[block_count] = template
    else:
        device.restore(template)
    return ShadowFilesystem(device, check_level=check_level)


def check_refinement(
    ops: Sequence[FsOp],
    shadow_factory: Callable[[], FilesystemAPI] = fresh_shadow,
    compare_final_state: bool = True,
) -> list[str]:
    """Run one sequence on spec and shadow; return divergence strings.

    ``fsync`` is skipped on both sides (the shadow does not implement
    it, and it is a durability no-op in the model).
    """
    spec = SpecFilesystem()
    shadow = shadow_factory()
    problems: list[str] = []
    ino_map: dict[int, int] = {}
    for index, operation in enumerate(ops):
        if operation.name == "fsync":
            continue
        spec_result = operation.apply(spec, opseq=index + 1)
        shadow_result = operation.apply(shadow, opseq=index + 1)
        if not outcomes_equivalent(spec_result, shadow_result, ino_map):
            problems.append(
                f"op {index} {operation.describe()}: spec {spec_result} vs shadow {shadow_result}"
            )
    if compare_final_state and not problems:
        report = states_equivalent(capture_state(spec), capture_state(shadow))
        problems.extend(report.problems)
    return problems


class BoundedVerifier:
    """Exhaustive DFS over the alphabet up to ``max_depth``."""

    def __init__(
        self,
        alphabet: Iterable[FsOp] | None = None,
        max_depth: int = 3,
        shadow_factory: Callable[[], FilesystemAPI] = fresh_shadow,
    ):
        self.alphabet = list(alphabet) if alphabet is not None else default_alphabet()
        self.max_depth = max_depth
        self.shadow_factory = shadow_factory

    def run(self) -> VerifierResult:
        result = VerifierResult()
        self._extend([], result)
        return result

    def _extend(self, prefix: list[FsOp], result: VerifierResult) -> None:
        if len(prefix) >= self.max_depth:
            return
        for operation in self.alphabet:
            sequence = prefix + [operation]
            result.sequences_checked += 1
            result.ops_executed += len(sequence)
            try:
                problems = check_refinement(sequence, self.shadow_factory)
            except FsError as exc:  # must not happen: apply() captures errnos
                problems = [f"FsError escaped apply(): {exc}"]
            if problems:
                result.divergences.append(
                    Divergence(prefix=[o.describe() for o in sequence], problem=problems[0])
                )
                continue  # do not extend a diverging prefix
            self._extend(sequence, result)
