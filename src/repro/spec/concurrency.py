"""The declared concurrency spec: shared classes and their lock guards.

The ROADMAP's next arc makes the supervisor side concurrent — an asyncio
multi-tenant front-end (item 1), sharded replay and parallel fsck
(item 4), multi-volume federation (item 5).  The shadow is *not* part of
that arc: SHADOW-PURITY keeps it sequential and import-clean, which is
the paper's trust argument (§3.2), so nothing here names a shadow class.

raelint's concurrency rules (RACE-LOCKSET and ATOMIC-RMW, see
``docs/STATIC_ANALYSIS.md``) extract this file from its AST, exactly
like ``OP_CONTRACTS``: both tables must stay pure literals.

* ``SHARED_CLASSES`` — classes whose instances will be reachable from
  more than one thread or task once the concurrent front-end lands.
  Registering a class turns the lockset checks on *now*, before the
  first concurrent caller exists, so every new write to supervisor
  state grows up under the race detector instead of being retrofitted.
* ``GUARDED_BY`` — ``{"Class.attr": lock token}``.  A real token
  (``"self._lock"``) obliges every write site to hold that lock.  The
  sentinel ``"<single-threaded>"`` is the concurrency analogue of
  ``shadow_extra``: a written-down, argued sanction that the attribute
  is unsynchronized *because its owner is still driven by one thread
  today*.  Each sentinel below carries the argument and must flip to a
  real token in the PR that introduces the concurrent caller — flipping
  is a one-line spec change, and every unguarded write site immediately
  becomes a finding.

A declaration that names a class or attribute that does not exist in the
tree is a configuration error (raelint exits 2), not a finding: a guard
that cannot bind protects nothing, and silently skipping it would let
this registry rot.
"""

from __future__ import annotations

#: Supervisor-side state the parallel-recovery arc will share across
#: threads/tasks.  Inferred escape seeds (``threading.Thread`` targets,
#: executor submits, asyncio task creation) extend this list
#: automatically; the registry exists to turn the checks on early.
SHARED_CLASSES = (
    # The supervisor facade: every tenant of the asyncio front-end calls
    # into one RAEFilesystem (ROADMAP item 1).
    "RAEFilesystem",
    # Appended on the hot path, drained by replay; sharded replay
    # (ROADMAP item 4) reads it from worker tasks.
    "OpLog",
    # Classifies faults on the hot path; its history feeds forensic
    # bundles that a parallel fsck would read concurrently.
    "Detector",
    # The inode lock table itself: lock metadata is the first thing
    # concurrent clients contend on.
    "LockManager",
    # The multi-client workload driver is the natural first home of real
    # threads (today it interleaves clients cooperatively).
    "MultiClientWorkload",
)

#: Class attribute -> lock token that must be may-held at every write.
#: ``"<single-threaded>"`` = argued sanction, see module docstring.
GUARDED_BY = {
    # -- RAEFilesystem: all mutation happens on the single dispatch
    #    thread today; ops() is the only entry point and it is not
    #    reentrant.  The front-end PR must route these through one
    #    supervisor lock (or an actor-style dispatch queue).
    "RAEFilesystem.base": "<single-threaded>",  # swapped only inside recovery
    "RAEFilesystem._in_recovery": "<single-threaded>",  # recovery re-entrance flag
    "RAEFilesystem.seq": "<single-threaded>",  # op sequence counter (rmw on every op)
    "RAEFilesystem._window_generation": "<single-threaded>",  # durability-point generation, moved at commit callbacks
    "RAEFilesystem.on_reboot": "<single-threaded>",  # reboot callbacks, registered before the workload runs
    "RAEFilesystem.forensics": "<single-threaded>",  # forensic bundle accumulator
    # -- OpLog: append/truncate mutate entries and the byte budget as
    #    one compound; the sharded-replay PR needs a log lock (append)
    #    while replay reads a frozen snapshot.
    "OpLog.entries": "<single-threaded>",
    "OpLog._entry_bytes": "<single-threaded>",
    "OpLog.fd_snapshot": "<single-threaded>",
    # -- Detector: history is appended per classified fault, read by
    #    forensics; a ring-buffer swap or a history lock when concurrent.
    "Detector.history": "<single-threaded>",
    # -- LockManager: the held list *is* the lock state; it mutates
    #    inside acquire/release themselves, so its eventual guard is the
    #    manager's own internal mutex, never an inode lock.
    "LockManager.held": "<single-threaded>",
    # -- MultiClientWorkload: clients interleave cooperatively on one
    #    thread today; the threaded driver must give results/failures
    #    their own lock (or per-client buckets merged at the end).
    "MultiClientWorkload.results": "<single-threaded>",
    "MultiClientWorkload.runtime_failures": "<single-threaded>",
}
