"""N-version programming baseline (§2.1).

"NVP advocates the independent development of several versions of
software with the same specification, running them simultaneously to
generate output by combining the decision of each version (via voting).
... maintaining and executing multiple versions (often, at least three)
incurs excessive overhead."

:class:`NVPExecutor` is that strawman, built honestly: every operation
executes on all N member implementations, outcomes are normalized
(inode numbers excluded — each member allocates its own) and put to a
majority vote, and a member that loses the vote is flagged as faulted.
The ablation benchmark runs it against RAE on identical workloads to
reproduce the overhead argument: NVP pays ~N× on *every* operation,
while RAE pays ~1× until an error actually occurs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.api import FilesystemAPI, FsOp, OpResult, StatResult
from repro.errors import RecoveryFailure


def _normalize(result: OpResult):
    """A hashable, ino-free projection of an outcome for voting."""
    if result.errno is not None:
        return ("errno", int(result.errno))
    value = result.value
    if isinstance(value, StatResult):
        return ("stat", value.ftype, value.size, value.nlink, value.perms, value.mtime, value.ctime)
    if isinstance(value, list):
        return ("list", tuple(value))
    if isinstance(value, bytearray):
        return ("bytes", bytes(value))
    return ("value", value)


@dataclass
class NVPResult:
    op: str
    winning: OpResult
    votes: int
    dissenting_versions: list[int] = field(default_factory=list)


@dataclass
class NVPStats:
    ops: int = 0
    executions: int = 0  # ops × versions — the overhead
    disagreements: int = 0
    vote_failures: int = 0  # no majority


class NVPExecutor:
    """Run an op across N versions and vote.

    Member exceptions other than ``FsError`` count as that member
    producing no vote (its fault is masked, the NVP promise) — but the
    member is left in an unknown state and marked ``faulted``; NVP has
    no story for re-synchronizing it, which is exactly the paper's
    criticism that RAE's state reconstruction answers.
    """

    def __init__(self, versions: list[FilesystemAPI]):
        if len(versions) < 2:
            raise ValueError("NVP requires at least two versions")
        self.versions = versions
        self.faulted: set[int] = set()
        self.stats = NVPStats()

    def apply(self, operation: FsOp, opseq: int = 0) -> NVPResult:
        self.stats.ops += 1
        outcomes: dict[int, OpResult] = {}
        for index, version in enumerate(self.versions):
            if index in self.faulted:
                continue
            self.stats.executions += 1
            try:
                outcomes[index] = operation.apply(version, opseq=opseq)
            except Exception:  # raelint: disable=ERRNO-DISCIPLINE — NVP's contract is masking *any* member fault
                self.faulted.add(index)

        if not outcomes:
            raise RecoveryFailure("every NVP version has faulted", phase="nvp")

        counter = Counter(_normalize(result) for result in outcomes.values())
        winner_key, votes = counter.most_common(1)[0]
        if votes <= len(outcomes) // 2 and len(counter) > 1:
            self.stats.vote_failures += 1

        dissenting = [i for i, result in outcomes.items() if _normalize(result) != winner_key]
        if dissenting:
            self.stats.disagreements += 1
        winning = next(result for result in outcomes.values() if _normalize(result) == winner_key)
        return NVPResult(
            op=operation.name, winning=winning, votes=votes, dissenting_versions=dissenting
        )
