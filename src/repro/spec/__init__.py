"""Executable specification and verification harness.

The paper verifies the shadow with Verus; a Python reproduction cannot,
so this package provides the lightweight-formal-methods substitute the
paper itself cites as precedent (the S3 approach [8]):

* :mod:`repro.spec.model` — :class:`SpecFilesystem`, a pure in-memory
  POSIX model implementing the same :class:`~repro.api.FilesystemAPI`.
  It has no blocks, no bitmaps, no disk — only the semantics.  It is the
  specification the shadow must refine.
* :mod:`repro.spec.equivalence` — state- and outcome-equivalence
  definitions: what "the output at the API level and the effects to
  on-disk structures must be equivalent" (§3.3) means operationally,
  including the sanctioned divergences (block placement) and the
  ino-bijection treatment for the spec model.
* :mod:`repro.spec.verifier` — bounded-exhaustive refinement checking
  (every op sequence up to a depth from a small alphabet) plus helpers
  for the hypothesis property tests.
* :mod:`repro.spec.nvp` — a classic 3-version NVP voting executor
  (§2.1's strawman), used as the overhead baseline RAE is compared
  against.
"""

from repro.spec.model import SpecFilesystem
from repro.spec.equivalence import (
    EquivalenceReport,
    capture_state,
    outcomes_equivalent,
    states_equivalent,
)
from repro.spec.verifier import BoundedVerifier, VerifierResult, check_refinement
from repro.spec.nvp import NVPExecutor, NVPResult

__all__ = [
    "SpecFilesystem",
    "EquivalenceReport",
    "capture_state",
    "states_equivalent",
    "outcomes_equivalent",
    "BoundedVerifier",
    "VerifierResult",
    "check_refinement",
    "NVPExecutor",
    "NVPResult",
]
