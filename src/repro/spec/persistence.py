"""The declared persistence spec: durability protocols and crash points.

The paper's availability argument leans on the journaled base recovering
to a consistent state after any contained reboot (§2, §4.1).  That only
holds if every durability-relevant code path follows the ordering
discipline *journal write → commit record → flush barrier → checkpoint*:
a checkpoint (in-place home-location write) that races ahead of the
flushed commit record is exactly the misordering class Chipmunk-style
studies catalog, and SquirrelFS shows the discipline can be enforced
statically as a typestate rather than discovered by crash testing
(PAPERS.md).

raelint's persistence rules (FLUSH-BARRIER, PERSIST-ORDER and
CRASH-HOOK-COVERAGE, see ``docs/STATIC_ANALYSIS.md``) extract this file
from its AST, exactly like ``OP_CONTRACTS`` and ``GUARDED_BY``: every
table must stay a pure literal.  A declaration that names a function
that does not exist in the tree — or a stale sanction for a point that
is now hook-covered — is a configuration error (raelint exits 2), not a
finding: a protocol that cannot bind checks nothing, and silently
skipping it would let this spec rot.

Persistence-point kinds (the classification vocabulary):

* ``journal-write``  — a write into the journal region (descriptor or
  logged data blocks); redundant by design, crash-safe at any moment.
* ``commit-record``  — the single write that makes a transaction
  durable once it reaches the platter; the atomicity pivot.
* ``barrier``        — a device flush; orders everything before it
  against everything after it.
* ``checkpoint``     — an in-place home-location write (direct or via
  cache writeback); only safe after the commit record is flushed.
* ``data-write``     — an ordered-mode data block write submitted ahead
  of the transaction's metadata.

``DURABILITY_PROTOCOL`` — ``{function: {"phases": ..., "events": ...}}``.
``phases`` is the ordered tuple of kinds the function must step through
on every CFG path; a ``"?"`` suffix marks a phase that may be skipped
(e.g. a commit with no dirty pages submits no data writes).  ``events``
maps non-primitive calls (``"receiver.method"``) to the kind they count
as, so a delegated step (``writer.append`` performing the commit-record
write) participates in the caller's typestate.  PERSIST-ORDER enforces
these automata, including early returns and exceptional edges.

``WRITE_SITE_ROLES`` — per-function positional roles for raw
``write_block`` call sites, in source order.  Without an entry every
``write_block`` in basefs/ondisk/blockdev defaults to ``checkpoint``
(the dangerous kind), so mislabeling fails loud.  An entry whose arity
does not match the function's actual ``write_block`` site count is a
configuration error.

``CRASH_ENTRY_POINTS`` — ``{op name: entry function}``: the roots the
crash-surface catalog (``raelint --emit-crash-surface``) walks to
enumerate *op → ordered persistence points*.  This is the direct input
work-list for ROADMAP item 3's fault-sweep engine: each (op, point)
pair is one crash the sweep must schedule.

``PERSIST_SANCTIONS`` — ``{function: argued justification}`` for
persistence points that are *not* reachable from any
``VALID_HOOK_NAMES`` fault-injection hook.  CRASH-HOOK-COVERAGE
requires every point to be hook-reachable (so the sweep engine can
actually crash there) or sanctioned here with a written argument.  A
sanction whose every point becomes hook-covered is stale and exits 2 —
the same ratchet direction as the baseline.
"""

from __future__ import annotations

#: Ordered typestate per durability-protocol function.  ``"?"`` = the
#: phase may be skipped on some paths; ``events`` maps delegated calls
#: into the automaton (see module docstring).
DURABILITY_PROTOCOL = {
    # One journal transaction chunk: descriptor + data blocks into the
    # journal region, flush, then the commit record, then flush again so
    # the record is on the platter before the caller checkpoints.
    "JournalWriter.append": {
        "phases": ("journal-write", "barrier", "commit-record", "barrier"),
        "events": {},
    },
    # The journal manager: delegate the journal+commit writes to the
    # writer (which seals them), then checkpoint home locations, then
    # one barrier so recovery never sees a half-written home block.
    "JournalManager.commit": {
        "phases": ("commit-record", "checkpoint", "barrier"),
        "events": {"writer.append": "commit-record"},
    },
    # The filesystem commit: ordered-mode data writes (skipped when no
    # pages are dirty) are flushed before the journal transaction
    # commits — data-before-metadata, ext3 ordered mode.
    "BaseFilesystem.commit": {
        "phases": ("data-write?", "barrier", "commit-record"),
        "events": {"journal.commit": "commit-record"},
    },
}

#: Source-ordered roles for raw ``write_block`` sites in functions whose
#: writes are not checkpoints.  Anything undeclared defaults to
#: ``checkpoint`` — the kind FLUSH-BARRIER treats as dangerous.
WRITE_SITE_ROLES = {
    # Descriptor block, logged data blocks, commit record — in order.
    "JournalWriter.append": ("journal-write", "journal-write", "commit-record"),
    # Rewrites the journal superblock to empty the log.
    "reset_journal": ("journal-write",),
    # The multi-queue dispatch loop submits ordered-mode data blocks.
    "BlockMQ._dispatch": ("data-write",),
}

#: Crash-surface roots: op name -> entry function.  ``raelint
#: --emit-crash-surface`` walks the call graph from each entry and
#: emits the ordered persistence points it can reach (ROADMAP item 3's
#: sweep work-list).
CRASH_ENTRY_POINTS = {
    "commit": "BaseFilesystem.commit",
    "mount": "BaseFilesystem.__init__",
    "unmount": "BaseFilesystem.unmount",
    "journal-recover": "JournalManager.recover",
    "mkfs": "mkfs",
    "inode-repair": "write_inode",
    "image-clone": "clone_to_memory",
    "fault-injection": "FaultyBlockDevice.read_block",
    "cache-sync": "BufferCache.sync",
}

#: Function -> argued justification for persistence points that no
#: fault-injection hook covers.  Each entry is a promise: if the sweep
#: engine cannot crash there, here is why that is acceptable.  A stale
#: sanction (every point hook-covered, or the function gone) exits 2.
PERSIST_SANCTIONS = {
    # mkfs formats a raw device before any filesystem — and thus any
    # hook registry — exists; a crash mid-format is indistinguishable
    # from an unformatted disk and is rejected at mount.
    "mkfs": "runs before any filesystem object exists; a torn format "
            "fails superblock validation at mount instead of corrupting "
            "live state",
    # fsck's inode-repair library writes to a quiesced device that no
    # supervisor owns; the sweep targets supervised mounts only.
    "write_inode": "offline fsck repair primitive on a quiesced device; "
                   "no supervised mount exists to crash",
    # Cloning copies into a *fresh in-memory* device; the source device
    # under supervision is only read.
    "clone_to_memory": "writes go to the newly created in-memory clone, "
                       "not the supervised device; a crash discards the "
                       "clone and leaves the source untouched",
    # unmount stamps CLEAN only after commit() sealed everything; a
    # crash between commit and the stamp leaves state DIRTY, which
    # mount-time journal replay already recovers — the stamp is an
    # optimization, not a durability step.
    "BaseFilesystem.unmount": "the clean stamp follows a full commit; "
                              "crashing before the stamp leaves the DIRTY "
                              "path that mount-time replay covers",
    # BufferCache.sync is a bare writeback+flush convenience used by
    # tools/tests outside the journaled commit path; production commits
    # go through JournalManager.commit, which is hook-covered.
    "BufferCache.sync": "test/tool convenience outside the journaled "
                        "commit path; production writeback happens inside "
                        "JournalManager.commit under journal.commit",
    # The fault injector's sticky bit-flip rewrites a block *as the
    # injected fault itself* — it is the crash source, not a durability
    # step the sweep needs to interrupt.
    "FaultyBlockDevice.read_block": "the write is the injected "
                                    "corruption itself (sticky bit-flip "
                                    "on read), not a durability step",
}

#: The closed vocabulary of persistence-point kinds.
PERSIST_KINDS = (
    "journal-write",
    "commit-record",
    "barrier",
    "checkpoint",
    "data-write",
)


def protocol_for(name: str) -> tuple[str, ...] | None:
    """Declared phase tuple for *name*, or None (runtime convenience)."""
    entry = DURABILITY_PROTOCOL.get(name)
    if entry is None:
        return None
    return tuple(entry["phases"])


def sanction_reason(name: str) -> str | None:
    """The argued justification for *name*'s sanction, if any."""
    return PERSIST_SANCTIONS.get(name)
