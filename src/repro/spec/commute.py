"""Declared replay-commutativity spec (the shard surface).

Sharded replay (ROADMAP: partition the oplog by directory subtree and
replay shards in parallel) is only sound for operation pairs that
*commute*: replaying them in either order must leave the shadow in
spec-equivalent states.  This module declares, as pure literals the
static analyzer parses (never imports), the model against which the
commute rules (COMMUTE-PARITY / SHARD-FOOTPRINT / REPLAY-ISOLATION)
hold the tree:

* the closed **component vocabulary** every replayable operation's
  footprint must be expressible in,
* how source constructs map onto components (accessor methods, write
  roles, attributes, classes),
* argued **scratch** exemptions (decoded working copies whose durable
  effect lands through a classified write site),
* argued **sanctions** resolving the conflicts the model infers, and
* the reviewed per-op **declared footprints** the inferred model is
  held against (parity in both directions).

The analyzer composes all of this into the committed
``replaymatrix.json`` (``raelint --emit-replay-matrix``), and the
permutation harness (``repro.shadowfs.permute``) validates sanctioned
verdicts dynamically by replaying recorded sequences in permuted
orders.

A ``conditional-on-disjoint-subtree`` verdict means: the pair commutes
when each op's path arguments address pairwise-disjoint directory
subtrees *and* no hard link aliases an inode across them (the
inode-table sanction below spells out the aliasing caveat).

Misdeclarations (unknown component, malformed entry, stale sanction)
are configuration errors: ``raelint`` exits 2, it does not emit
findings.
"""

# --- component vocabulary -------------------------------------------------
#
# Every durable or replay-visible piece of shadow state belongs to
# exactly one component.  ``journal`` and ``oplog`` complete the
# vocabulary for state the replay engine consumes but operations never
# touch (the journal is ingested once in __init__; the oplog is
# supervisor-side) — SHARD-FOOTPRINT proves no op reaches them.

STATE_COMPONENTS = {
    "superblock": "block 0: geometry and the free-block/free-inode counters",
    "block-bitmap": "per-group data-block allocation bitmaps",
    "inode-bitmap": "per-group inode allocation bitmaps",
    "inode-table": "on-disk inode slots, including indirect pointer blocks",
    "dentry-namespace": "directory blocks and symlink targets, keyed by subtree",
    "page-cache": "file data pages, keyed at runtime by (ino, logical block)",
    "fd-table": "the open-descriptor registry and per-descriptor cursors",
    "orphan-set": "inodes unlinked while still held open by a descriptor",
    "journal": "the redo journal ingested when the shadow attaches",
    "oplog": "the supervisor-side operation log replay is driven from",
}

# Only the namespace is statically keyable: a dentry access inherits the
# key of whichever path argument reached it through the call graph.
# page-cache is (ino, logical)-keyed at runtime, which path-level
# keying cannot soundly express (see its sanction).
PATH_KEYED_COMPONENTS = ("dentry-namespace",)

# --- replayable operation roots -------------------------------------------
#
# fsync is deliberately absent: the shadow fails it with EINVAL before
# touching any state, and the replay engine skips recorded fsyncs
# entirely (completed fsyncs only affected durability), so it has no
# replay footprint to shard.

REPLAY_ROOTS = {
    "mkdir": {"entry": "ShadowFilesystem.mkdir", "path_args": ("path",)},
    "rmdir": {"entry": "ShadowFilesystem.rmdir", "path_args": ("path",)},
    "unlink": {"entry": "ShadowFilesystem.unlink", "path_args": ("path",)},
    "rename": {"entry": "ShadowFilesystem.rename", "path_args": ("src", "dst")},
    "link": {"entry": "ShadowFilesystem.link", "path_args": ("existing", "new")},
    # symlink's ``target`` is stored as content, never resolved: it is
    # not a path argument for keying purposes.
    "symlink": {"entry": "ShadowFilesystem.symlink", "path_args": ("path",)},
    "readlink": {"entry": "ShadowFilesystem.readlink", "path_args": ("path",)},
    "readdir": {"entry": "ShadowFilesystem.readdir", "path_args": ("path",)},
    "stat": {"entry": "ShadowFilesystem.stat", "path_args": ("path",)},
    "lstat": {"entry": "ShadowFilesystem.lstat", "path_args": ("path",)},
    "truncate": {"entry": "ShadowFilesystem.truncate", "path_args": ("path",)},
    "open": {"entry": "ShadowFilesystem.open", "path_args": ("path",)},
    "close": {"entry": "ShadowFilesystem.close", "path_args": ()},
    "read": {"entry": "ShadowFilesystem.read", "path_args": ()},
    "write": {"entry": "ShadowFilesystem.write", "path_args": ()},
    "lseek": {"entry": "ShadowFilesystem.lseek", "path_args": ()},
}

# --- source construct -> component maps ------------------------------------

# Helper methods that *are* a component access wherever they are called
# (or referenced: ``checks.ino_allocated(ino, self._ino_is_allocated)``
# passes the accessor as a probe).  Dotted names match typed attribute
# receivers ("fd_table.get"); bare names match self-calls.
COMPONENT_ACCESSORS = {
    "_count_free_blocks": ("block-bitmap", "read"),
    "_count_free_inodes": ("inode-bitmap", "read"),
    "_read_block_bitmap": ("block-bitmap", "read"),
    "_read_inode_bitmap": ("inode-bitmap", "read"),
    "_block_is_allocated": ("block-bitmap", "read"),
    "_ino_is_allocated": ("inode-bitmap", "read"),
    "_alloc_block": ("block-bitmap", "write"),
    "_free_block": ("block-bitmap", "write"),
    "_alloc_inode": ("inode-bitmap", "write"),
    "_claim_inode": ("inode-bitmap", "write"),
    "_free_inode_number": ("inode-bitmap", "write"),
    "_iget": ("inode-table", "read"),
    "_resolve_logical": ("inode-table", "read"),
    "_double_inner_present": ("inode-table", "read"),
    "_iput": ("inode-table", "write"),
    "_izero": ("inode-table", "write"),
    "_new_inode": ("inode-table", "write"),
    "_destroy_inode": ("inode-table", "write"),
    "_map_block": ("inode-table", "write"),
    "_truncate_blocks": ("inode-table", "write"),
    "_alloc_pointer_block": ("inode-table", "write"),
    "_dir_blocks": ("dentry-namespace", "read"),
    "_dir_entries": ("dentry-namespace", "read"),
    "_dir_find": ("dentry-namespace", "read"),
    "_dir_is_empty": ("dentry-namespace", "read"),
    "_dir_insert_cost": ("dentry-namespace", "read"),
    "_read_symlink": ("dentry-namespace", "read"),
    "_dir_insert": ("dentry-namespace", "write"),
    "_dir_remove": ("dentry-namespace", "write"),
    "_dir_set_dotdot": ("dentry-namespace", "write"),
    "_data_block_read": ("page-cache", "read"),
    "fd_table.get": ("fd-table", "read"),
    "fd_table.fds_for_ino": ("fd-table", "read"),
    "fd_table.open_fds": ("fd-table", "read"),
    "fd_table.snapshot": ("fd-table", "read"),
    "fd_table.allocate": ("fd-table", "write"),
    "fd_table.install": ("fd-table", "write"),
    "fd_table.release": ("fd-table", "write"),
    "fd_table.clear": ("fd-table", "write"),
}

# Raw block-write primitives: every call site must carry a literal
# ``role`` that ROLE_COMPONENTS classifies.  A non-literal role is only
# legal inside another medium writer (delegation).
MEDIUM_WRITERS = ("_write_block", "overlay.write")

# The "bitmap" role covers both allocation bitmaps; the model
# disambiguates per site from the block expression (which layout helper
# computed the block number).
ROLE_COMPONENTS = {
    "sb": "superblock",
    "bitmap": ("block-bitmap", "inode-bitmap"),
    "itable": "inode-table",
    "indirect": "inode-table",
    "dir": "dentry-namespace",
    "symlink": "dentry-namespace",
    "data": "page-cache",
    "replay": "journal",
}

# Attributes that are the live in-memory image of a component: a store
# through them (or a mutator call on them) is a component write, a load
# a component read.
ATTR_COMPONENTS = {
    "sb": "superblock",
    "data_pages": "page-cache",
    "shared_pages": "page-cache",
    "touched_inos": "inode-table",
    "_orphans": "orphan-set",
}

# Classes whose instances are component state wherever they flow:
# FdState objects live inside the FdTable registry, so mutating a
# descriptor cursor is an fd-table write even through a typed local.
CLASS_COMPONENTS = {
    "FdTable": "fd-table",
    "FdState": "fd-table",
    "Superblock": "superblock",
}

# --- argued scratch exemptions ---------------------------------------------

SCRATCH_CLASSES = {
    "Bitmap": "decoded working copy; the durable write is the role='bitmap' site",
    "DirBlock": "decoded working copy; the durable write is the role='dir' site",
    "OnDiskInode": "decoded working copy; the durable write is _iput (role='itable')",
    "Ref": "an (ino, decoded inode) pair; durable writes land through _iput",
    "Overlay": "the raw block medium; every durable write is classified at its "
               "role-carrying call site",
    "ShadowChecks": "invariant-check plumbing; mutates only diagnostic counters",
    "CheckStats": "diagnostic counters; replay equivalence never reads them",
}

SCRATCH_ATTRS = {
    "ino_hint": "per-op constrained-allocation directive installed by the replay "
                "engine and consumed before the op returns; carries no cross-op state",
    "blocks": "the overlay's raw page store; durable writes are classified at "
              "role-carrying sites, and the free-path pop only scrubs pages whose "
              "bitmap release is already a classified block-bitmap write",
    "roles": "overlay bookkeeping mirroring 'blocks'; same argument",
    "stats": "ShadowChecks diagnostic counters (see SCRATCH_CLASSES)",
}

# --- argued conflict resolutions -------------------------------------------
#
# Every component two replayable ops can collide on must either be
# path-keyed (the verdict degrades to conditional-on-disjoint-subtree)
# or carry a sanction.  ``commutes`` argues the collision is
# order-invisible to spec equivalence and removes it from the verdict;
# ``serialize`` concedes the ordering dependence — pairs colliding on
# that component must replay in one shard, in log order.

COMMUTE_SANCTIONS = {
    "superblock": {
        "resolution": "commutes",
        "why": "ops touch only the free-block/free-inode counters, whose deltas "
               "are commutative; admission control (ENOSPC pre-checks) reads a "
               "conservative bound that sharded replay preserves by granting each "
               "shard the net demand its log segment records",
    },
    "block-bitmap": {
        "resolution": "commutes",
        "why": "physical block placement is sanctioned policy divergence (§3.3): "
               "spec equivalence is placement-blind, so allocation order between "
               "shards is unobservable as long as each allocation stays exclusive",
    },
    "inode-bitmap": {
        "resolution": "commutes",
        "why": "constrained replay pins every created inode number via ino_hint "
               "from the recorded outcome, so bit claims are disjoint and "
               "order-independent; frees release bits no other shard references",
    },
    "inode-table": {
        "resolution": "commutes",
        "why": "inode slots are per-ino: creating ops write slots pinned by "
               "ino_hint, and mutations of existing inodes reach them through "
               "path resolution, which the disjoint-subtree condition separates — "
               "except when a hard link aliases one inode into two subtrees, "
               "which is exactly the aliasing caveat the conditional verdict "
               "carries (nlink>1 routes the pair to one shard dynamically)",
    },
    "orphan-set": {
        "resolution": "commutes",
        "why": "orphan transitions are per-inode and every one is gated by an "
               "fd-table access (fds_for_ino / release), so any same-inode pair "
               "already serializes on fd-table; cross-inode transitions commute",
    },
    "fd-table": {
        "resolution": "serialize",
        "why": "descriptor numbers come from lowest-free allocation and cursors "
               "advance per descriptor: both are order-sensitive, so ops that "
               "touch the registry replay in one shard, in log order",
    },
    "page-cache": {
        "resolution": "serialize",
        "why": "data pages are keyed by (ino, logical) at runtime, which "
               "path-level static keying cannot soundly express (hard links "
               "alias inodes across subtrees); data-writing pairs replay in one "
               "shard until the matrix grows per-inode keys",
    },
}

# --- reviewed per-op footprints --------------------------------------------
#
# The parity target: COMMUTE-PARITY reports any drift between these
# reviewed sets and what the model infers from the tree, in both
# directions.  Instances are "component" or "component<path-arg>".

DECLARED_FOOTPRINTS = {
    "close": {
        "reads": ("block-bitmap", "fd-table", "inode-bitmap", "inode-table",
                  "orphan-set", "page-cache", "superblock",),
        "writes": ("block-bitmap", "fd-table", "inode-bitmap", "inode-table",
                  "orphan-set", "page-cache", "superblock",),
    },
    "link": {
        "reads": ("block-bitmap", "dentry-namespace<existing>",
                  "dentry-namespace<new>", "fd-table", "inode-bitmap",
                  "inode-table", "orphan-set", "superblock",),
        "writes": ("block-bitmap", "dentry-namespace<existing,new>",
                  "dentry-namespace<new>", "inode-table", "superblock",),
    },
    "lseek": {
        "reads": ("fd-table", "inode-bitmap", "inode-table", "orphan-set",),
        "writes": ("fd-table",),
    },
    "lstat": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "superblock",),
        "writes": (),
    },
    "mkdir": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "superblock",),
        "writes": ("block-bitmap", "dentry-namespace<path>", "inode-bitmap",
                  "inode-table", "superblock",),
    },
    "open": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "page-cache",
                  "superblock",),
        "writes": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "page-cache", "superblock",),
    },
    "read": {
        "reads": ("block-bitmap", "fd-table", "inode-bitmap", "inode-table",
                  "orphan-set", "page-cache",),
        "writes": ("fd-table",),
    },
    "readdir": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "superblock",),
        "writes": (),
    },
    "readlink": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "superblock",),
        "writes": (),
    },
    "rename": {
        "reads": ("block-bitmap", "dentry-namespace<dst,src>",
                  "dentry-namespace<dst>", "dentry-namespace<src>",
                  "fd-table", "inode-bitmap", "inode-table", "orphan-set",
                  "page-cache", "superblock",),
        "writes": ("block-bitmap", "dentry-namespace<dst,src>",
                  "dentry-namespace<src>", "inode-bitmap", "inode-table",
                  "orphan-set", "page-cache", "superblock",),
    },
    "rmdir": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "page-cache",
                  "superblock",),
        "writes": ("block-bitmap", "dentry-namespace<path>", "inode-bitmap",
                  "inode-table", "page-cache", "superblock",),
    },
    "stat": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "superblock",),
        "writes": (),
    },
    "symlink": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "superblock",),
        "writes": ("block-bitmap", "dentry-namespace<path>", "inode-bitmap",
                  "inode-table", "superblock",),
    },
    "truncate": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "page-cache",
                  "superblock",),
        "writes": ("block-bitmap", "inode-table", "page-cache", "superblock",),
    },
    "unlink": {
        "reads": ("block-bitmap", "dentry-namespace<path>", "fd-table",
                  "inode-bitmap", "inode-table", "orphan-set", "page-cache",
                  "superblock",),
        "writes": ("block-bitmap", "dentry-namespace<path>", "inode-bitmap",
                  "inode-table", "orphan-set", "page-cache", "superblock",),
    },
    "write": {
        "reads": ("block-bitmap", "fd-table", "inode-bitmap", "inode-table",
                  "orphan-set", "page-cache", "superblock",),
        "writes": ("block-bitmap", "fd-table", "inode-table", "page-cache",
                  "superblock",),
    },
}
