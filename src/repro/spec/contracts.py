"""The declared per-operation contract table.

Every :class:`~repro.api.FilesystemAPI` operation is assigned the set of
:class:`~repro.errors.Errno` values its implementations are allowed to
raise via ``FsError`` and the effect footprint each implementation is
allowed to have.  raelint's contract rules (ERRNO-PARITY and
EFFECT-CONTRACT, see ``docs/STATIC_ANALYSIS.md``) compare these
declarations against *inferred* interprocedural summaries of the actual
``basefs``/``shadowfs`` code: an implementation that can raise an errno
or reach an effect not declared here is a finding.  The table is the
static analogue of the paper's constrained-mode outcome cross-checking
(§3.3): base and shadow must agree on the observable error surface, and
every sanctioned divergence is written down, argued, and reviewable.

Conventions:

* ``errnos`` — what the **base** implementation may raise.  The shadow
  may raise ``errnos | shadow_extra``; ``shadow_extra`` therefore *is*
  the sanctioned §3.3 divergence list, not a loophole.  Keep it short
  and keep the argument next to it.
* ``effects`` / ``shadow_effects`` — the allowed transitive footprint,
  in raelint's effect vocabulary (``device-write``, ``device-flush``,
  ``journal-begin``/``journal-commit``/``journal-abort``,
  ``cache-dirty``, ``lock-acquire``/``lock-release``, ``fd-table``).
  The shadow may never have ``device-write`` or ``device-flush``
  regardless of what this table says — that check is unconditional.
* ``read_only`` — the op must not dirty caches or take locks in the
  base.  Note that read-only ops may still carry ``device-write``: a
  metadata *read* can evict a dirty buffer from the buffer cache, whose
  writeback is a device write (see ``BufferCache._evict_one``), and a
  data read pumps the block multi-queue, dispatching queued writes.
  That is writeback piggybacking, not a mutation of the namespace.

The table is a pure literal: raelint extracts it from this file's AST
(``ast.literal_eval``), so it must stay free of computed values.

This module is also importable at runtime; :func:`contract_for` returns
typed :class:`OpContract` views, and ``tests/test_spec_contracts.py``
pins the table against :class:`~repro.errors.Errno` so adding an errno
without a contract decision fails a test, not a recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import Errno

# Path resolution can surface EINVAL/ELOOP/ENAMETOOLONG/ENOENT/ENOTDIR on
# any op that takes a path: bad or overlong names, symlink cycles,
# missing components, non-directories mid-walk.  The table repeats the
# five inline because it must stay a pure literal (see module docstring).
OP_CONTRACTS = {
    "mkdir": {
        # EFBIG: inserting into a directory that has hit the per-file
        # block-map limit surfaces the _map_block guard.
        "errnos": ("EEXIST", "EFBIG", "EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOSPC", "ENOTDIR"),
        "shadow_extra": (),
        "effects": ("cache-dirty", "device-write", "lock-acquire", "lock-release"),
        "shadow_effects": (),
        "read_only": False,
    },
    "rmdir": {
        "errnos": ("EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR", "ENOTEMPTY"),
        # EFBIG: the shadow resolves paths by walking raw directory
        # blocks through the bounded block map (it has no dentry cache),
        # so a corrupted directory inode can trip the EFBIG guard during
        # resolution.  The base's cached lookups never reach it.  During
        # recovery, failing loudly on a corrupt image is the point.
        "shadow_extra": ("EFBIG",),
        "effects": ("cache-dirty", "device-write", "lock-acquire", "lock-release"),
        "shadow_effects": (),
        "read_only": False,
    },
    "unlink": {
        "errnos": ("EINVAL", "EISDIR", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR"),
        "shadow_extra": ("EFBIG",),  # raw-block resolution; see rmdir
        "effects": ("cache-dirty", "device-write", "lock-acquire", "lock-release"),
        "shadow_effects": (),
        "read_only": False,
    },
    "rename": {
        "errnos": ("EFBIG", "EINVAL", "EISDIR", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOSPC", "ENOTDIR", "ENOTEMPTY"),
        "shadow_extra": (),
        "effects": ("cache-dirty", "device-write", "lock-acquire", "lock-release"),
        "shadow_effects": (),
        "read_only": False,
    },
    "link": {
        # EPERM: hard links to directories are refused.
        "errnos": ("EEXIST", "EFBIG", "EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOSPC", "ENOTDIR", "EPERM"),
        "shadow_extra": (),
        "effects": ("cache-dirty", "device-write", "lock-acquire", "lock-release"),
        "shadow_effects": (),
        "read_only": False,
    },
    "symlink": {
        "errnos": ("EEXIST", "EFBIG", "EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOSPC", "ENOTDIR"),
        "shadow_extra": (),
        "effects": ("cache-dirty", "device-write", "lock-acquire", "lock-release"),
        "shadow_effects": (),
        "read_only": False,
    },
    "readlink": {
        "errnos": ("EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR"),
        "shadow_extra": ("EFBIG",),  # raw-block resolution; see rmdir
        "effects": ("device-write",),  # buffer-cache eviction writeback
        "shadow_effects": (),
        "read_only": True,
    },
    "readdir": {
        "errnos": ("EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR"),
        "shadow_extra": ("EFBIG",),  # raw-block resolution; see rmdir
        "effects": ("device-write",),  # buffer-cache eviction writeback
        "shadow_effects": (),
        "read_only": True,
    },
    "stat": {
        "errnos": ("EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR"),
        "shadow_extra": ("EFBIG",),  # raw-block resolution; see rmdir
        "effects": ("device-write",),  # buffer-cache eviction writeback
        "shadow_effects": (),
        "read_only": True,
    },
    "lstat": {
        "errnos": ("EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR"),
        "shadow_extra": ("EFBIG",),  # raw-block resolution; see rmdir
        "effects": ("device-write",),  # buffer-cache eviction writeback
        "shadow_effects": (),
        "read_only": True,
    },
    "truncate": {
        "errnos": ("EFBIG", "EINVAL", "EISDIR", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR"),
        "shadow_extra": (),
        "effects": ("cache-dirty", "device-flush", "device-write"),
        "shadow_effects": (),
        "read_only": False,
    },
    "open": {
        "errnos": ("EEXIST", "EFBIG", "EINVAL", "EISDIR", "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOSPC", "ENOTDIR"),
        "shadow_extra": (),
        "effects": ("cache-dirty", "device-flush", "device-write", "fd-table", "lock-acquire", "lock-release"),
        "shadow_effects": ("fd-table",),
        "read_only": False,
    },
    "close": {
        "errnos": ("EBADF",),
        "shadow_extra": (),
        # Closing the last fd of an orphaned (unlinked-while-open) inode
        # frees its blocks: bitmap and inode dirtying plus writeback.
        "effects": ("cache-dirty", "device-write", "fd-table"),
        "shadow_effects": ("fd-table",),
        "read_only": False,
    },
    "read": {
        "errnos": ("EBADF", "EINVAL", "EISDIR"),
        "shadow_extra": ("EFBIG",),  # bounded block-map walk; see rmdir
        "effects": ("device-flush", "device-write"),  # blkmq pump dispatch
        "shadow_effects": (),
        "read_only": True,
    },
    "write": {
        "errnos": ("EBADF", "EFBIG", "EINVAL", "EISDIR", "ENOSPC"),
        "shadow_extra": (),
        "effects": ("cache-dirty", "device-flush", "device-write"),
        "shadow_effects": (),
        "read_only": False,
    },
    "lseek": {
        "errnos": ("EBADF", "EINVAL"),
        "shadow_extra": (),
        "effects": ("device-write",),  # buffer-cache eviction writeback
        "shadow_effects": (),
        "read_only": True,
    },
    "fsync": {
        # The base's fsync commits: delayed allocation happens here, so
        # ENOSPC/EFBIG surface at sync time, not write time.
        "errnos": ("EBADF", "EFBIG", "ENOSPC"),
        # EINVAL: §3.3 — the shadow omits the sync family entirely and
        # rejects fsync; constrained-mode replay skips sync ops, so the
        # divergence is never observable during recovery.
        "shadow_extra": ("EINVAL",),
        "effects": ("cache-dirty", "device-flush", "device-write", "journal-commit"),
        "shadow_effects": (),
        "read_only": False,
    },
    "fstat_ino": {
        "errnos": ("EBADF",),
        "shadow_extra": (),
        "effects": (),
        "shadow_effects": (),
        "read_only": True,
    },
}

#: Errnos deliberately assigned to no operation.  The regression test
#: requires every :class:`Errno` member to appear either in a contract
#: or here, with the reason recorded.
UNASSIGNED_ERRNOS = {
    # Device-level IO failure is modeled as DeviceError and escalates to
    # the detector/recovery machinery; it is never surfaced to the
    # application as an FsError in this reproduction.
    "EIO": "device faults engage RAE, they are not POSIX results",
    # No read-only remount path exists in the reproduction.
    "EROFS": "read-only mounts are not modeled",
}

#: The effect vocabulary this table may use; mirrors
#: ``repro.analysis.contracts.summaries.EFFECT_NAMES`` (the analyzer
#: cannot be imported from product code, so the regression test pins the
#: two tuples against each other).
EFFECT_NAMES = (
    "cache-dirty",
    "device-flush",
    "device-write",
    "fd-table",
    "journal-abort",
    "journal-begin",
    "journal-commit",
    "lock-acquire",
    "lock-release",
)


@dataclass(frozen=True)
class OpContract:
    """A typed view of one operation's declared contract."""

    name: str
    errnos: frozenset[Errno]
    shadow_extra: frozenset[Errno]
    effects: frozenset[str]
    shadow_effects: frozenset[str]
    read_only: bool

    @property
    def shadow_errnos(self) -> frozenset[Errno]:
        return self.errnos | self.shadow_extra


def contract_for(name: str) -> OpContract:
    spec = OP_CONTRACTS[name]
    return OpContract(
        name=name,
        errnos=frozenset(Errno[e] for e in spec["errnos"]),
        shadow_extra=frozenset(Errno[e] for e in spec["shadow_extra"]),
        effects=frozenset(spec["effects"]),
        shadow_effects=frozenset(spec["shadow_effects"]),
        read_only=bool(spec["read_only"]),
    )


def all_contracts() -> dict[str, OpContract]:
    return {name: contract_for(name) for name in OP_CONTRACTS}
