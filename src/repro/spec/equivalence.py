"""Equivalence definitions (§3.3 "Core functionality").

"For a given operation sequence, the output at the API level and the
effects to on-disk structures must be equivalent between the base and
the shadow.  While some policy decisions might differ, the two must
agree on essential invariants."

Operationally, two filesystems are state-equivalent when their *logical*
states match:

* the namespace: the same set of paths with the same types;
* per path: size (directories excluded — the spec model has no blocks),
  link count, permissions, logical timestamps, symlink target, and file
  content;
* hard-link structure: the path→ino map of one induces the same
  partition of paths as the other's (an ino *bijection*), without
  requiring equal numbers — equal numbers are the stronger condition
  constrained replay separately enforces against the base's records.

Block placement, bitmap contents, and cache state are explicitly *not*
part of equivalence — they are the sanctioned policy divergence.

:func:`capture_state` extracts the logical state through the public API
only (so it works identically on base, shadow, spec model, and the RAE
supervisor), using operations that have no timestamp or fd side effects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.api import FilesystemAPI, OpResult, StatResult
from repro.ondisk.inode import FileType


@dataclass
class PathState:
    ftype: FileType
    size: int
    nlink: int
    perms: int
    mtime: int
    ctime: int
    atime: int
    ino: int
    target: str = ""
    content_sha: str = ""


@dataclass
class FsState:
    """Logical filesystem state: path -> attributes."""

    paths: dict[str, PathState] = field(default_factory=dict)

    def ino_partition(self) -> dict[int, frozenset[str]]:
        groups: dict[int, set[str]] = {}
        for path, state in self.paths.items():
            groups.setdefault(state.ino, set()).add(path)
        return {ino: frozenset(paths) for ino, paths in groups.items()}


@dataclass
class EquivalenceReport:
    problems: list[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)

    def __str__(self) -> str:
        if self.equivalent:
            return "equivalent"
        return f"{len(self.problems)} divergences: " + "; ".join(self.problems[:8])


def capture_state(fs: FilesystemAPI, read_content: bool = True) -> FsState:
    """Walk the namespace via the public API and snapshot logical state."""
    state = FsState()
    stack = ["/"]
    while stack:
        path = stack.pop()
        st = fs.lstat(path)
        entry = PathState(
            ftype=st.ftype,
            size=st.size,
            nlink=st.nlink,
            perms=st.perms,
            mtime=st.mtime,
            ctime=st.ctime,
            atime=st.atime,
            ino=st.ino,
        )
        if st.ftype == FileType.SYMLINK:
            entry.target = fs.readlink(path)
        elif st.ftype == FileType.REGULAR and read_content:
            entry.content_sha = _content_sha(fs, path, st.size)
        state.paths[path] = entry
        if st.ftype == FileType.DIRECTORY:
            for name in fs.readdir(path):
                stack.append(path.rstrip("/") + "/" + name)
    return state


def _content_sha(fs: FilesystemAPI, path: str, size: int) -> str:
    fd = fs.open(path)
    try:
        fs.lseek(fd, 0, 0)
        hasher = hashlib.sha256()
        remaining = size
        while remaining > 0:
            chunk = fs.read(fd, min(remaining, 1 << 16))
            if not chunk:
                break
            hasher.update(chunk)
            remaining -= len(chunk)
        return hasher.hexdigest()
    finally:
        fs.close(fd)


def states_equivalent(
    a: FsState,
    b: FsState,
    compare_ino_numbers: bool = False,
    compare_dir_sizes: bool = False,
) -> EquivalenceReport:
    """Compare two logical states.

    ``compare_ino_numbers`` demands *equal* inode numbers (base vs shadow
    under constrained replay); otherwise only the bijection property is
    required (valid for the spec model).  ``compare_dir_sizes`` is off
    because the spec model defines directory size as 0.
    """
    report = EquivalenceReport()
    only_a = sorted(set(a.paths) - set(b.paths))
    only_b = sorted(set(b.paths) - set(a.paths))
    for path in only_a[:10]:
        report.add(f"path {path} exists only in A")
    for path in only_b[:10]:
        report.add(f"path {path} exists only in B")

    for path in sorted(set(a.paths) & set(b.paths)):
        pa, pb = a.paths[path], b.paths[path]
        if pa.ftype != pb.ftype:
            report.add(f"{path}: type {pa.ftype.name} vs {pb.ftype.name}")
            continue
        if pa.ftype != FileType.DIRECTORY or compare_dir_sizes:
            if pa.size != pb.size:
                report.add(f"{path}: size {pa.size} vs {pb.size}")
        for attr in ("nlink", "perms", "mtime", "ctime", "atime"):
            va, vb = getattr(pa, attr), getattr(pb, attr)
            if va != vb:
                report.add(f"{path}: {attr} {va} vs {vb}")
        if pa.target != pb.target:
            report.add(f"{path}: symlink target {pa.target!r} vs {pb.target!r}")
        if pa.content_sha != pb.content_sha:
            report.add(f"{path}: content differs")
        if compare_ino_numbers and pa.ino != pb.ino:
            report.add(f"{path}: ino {pa.ino} vs {pb.ino}")

    if not compare_ino_numbers:
        partition_a = set(a.ino_partition().values())
        partition_b = set(b.ino_partition().values())
        if partition_a != partition_b:
            report.add("hard-link structure differs (ino partitions are not isomorphic)")
    return report


def outcomes_equivalent(a: OpResult, b: OpResult, ino_map: dict[int, int] | None = None) -> bool:
    """Outcome equivalence with ino-bijection support (A=reference).

    ``ino_map`` accumulates the reference→other inode correspondence; a
    violated correspondence means outcomes diverge even if this pair of
    values looks plausible in isolation.  The map is sound only while no
    inode number is *reused* (allocators recycle freed numbers at
    different times) — pass ``None`` for long free-running streams and
    rely on final-state equivalence, which checks the live-inode
    partition instead.
    """
    if a.errno != b.errno:
        return False
    if a.errno is not None:
        return True
    if not _values_equivalent(a.value, b.value, ino_map):
        return False
    if (a.ino is None) != (b.ino is None):
        return False
    if a.ino is not None and not _ino_consistent(a.ino, b.ino, ino_map):
        return False
    return True


def _values_equivalent(va, vb, ino_map: dict[int, int] | None) -> bool:
    if isinstance(va, StatResult) and isinstance(vb, StatResult):
        if va.ftype != vb.ftype or va.nlink != vb.nlink or va.perms != vb.perms:
            return False
        if (va.mtime, va.ctime, va.atime) != (vb.mtime, vb.ctime, vb.atime):
            return False
        if va.ftype != FileType.DIRECTORY and va.size != vb.size:
            return False
        return _ino_consistent(va.ino, vb.ino, ino_map)
    return va == vb


def _ino_consistent(ino_a: int, ino_b: int, ino_map: dict[int, int] | None) -> bool:
    if ino_map is None:
        return True
    known = ino_map.get(ino_a)
    if known is None:
        if ino_b in ino_map.values():
            return False  # would break injectivity
        ino_map[ino_a] = ino_b
        return True
    return known == ino_b
