"""The executable POSIX specification model.

``SpecFilesystem`` is the semantics of the API with every systems concern
deleted: no blocks, no allocation, no durability — files are byte
strings, directories are dicts.  It exists to be *obviously* correct, so
that "shadow refines spec" (checked exhaustively at small scope and
property-based at random scope) is meaningful evidence, in the spirit of
the verified-shadow design.

Behavioural contract shared with base and shadow (kept in lockstep —
divergence here is a spec bug, and the differential tests will find it):

* errno codes and their *precedence* per operation;
* fd numbering (lowest free >= 3) and offset semantics;
* logical timestamps: any time written during an operation equals the
  caller's ``opseq``; atime is set at creation only (noatime);
* symlink resolution: intermediate always followed, final per-op,
  8-deep ELOOP limit, relative targets resolved against the link's
  directory;
* orphan semantics: unlinked-but-open files stay readable until the
  last close.

Inode numbers: the model allocates from its own monotone counter with a
free-list — these do not match the disk filesystems' allocators, so
equivalence uses an ino *bijection* rather than equality (see
:mod:`repro.spec.equivalence`).  The free-list is first-fit (lowest ino
first): the bijection carries stale pairs for destroyed inodes, so on
reuse the model must pick the same slot the shadow's in-group bitmap
scan picks, and that scan is first-fit ascending.  ``ino_hint`` is
honoured like the shadow's, so constrained replay against the spec also
works.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field

from repro.api import (
    FilesystemAPI,
    OpenFlags,
    SYMLINK_DEPTH_LIMIT,
    StatResult,
    parent_and_name,
    split_path,
)
from repro.basefs.vfs import FdTable
from repro.errors import Errno, FsError
from repro.ondisk.inode import FileType, MAX_FILE_SIZE
from repro.ondisk.layout import BLOCK_SIZE, ROOT_INO

MAX_SYMLINK_TARGET = BLOCK_SIZE - 1


@dataclass
class SpecNode:
    ino: int
    ftype: FileType
    perms: int
    nlink: int = 0
    atime: int = 0
    mtime: int = 0
    ctime: int = 0
    data: bytearray = field(default_factory=bytearray)  # file content
    children: dict[str, int] = field(default_factory=dict)  # dir entries
    target: str = ""  # symlink target

    @property
    def size(self) -> int:
        if self.ftype == FileType.REGULAR:
            return len(self.data)
        if self.ftype == FileType.SYMLINK:
            return len(self.target.encode())
        # Directory size mirrors the on-disk representation: one block
        # minimum, growing with entries — but the *model* has no blocks, so
        # directory size is defined as 0 here and excluded from
        # equivalence (see spec.equivalence).
        return 0


class SpecFilesystem(FilesystemAPI):
    def __init__(self):
        self._nodes: dict[int, SpecNode] = {}
        self._next_ino = ROOT_INO + 1
        self._free_inos: list[int] = []
        self.fd_table = FdTable()
        self.ino_hint: int | None = None
        self._orphans: set[int] = set()
        root = SpecNode(ino=ROOT_INO, ftype=FileType.DIRECTORY, perms=0o755, nlink=2, atime=1, mtime=1, ctime=1)
        root.children["."] = ROOT_INO
        root.children[".."] = ROOT_INO
        self._nodes[ROOT_INO] = root

    # ------------------------------------------------------------------

    def _alloc_ino(self) -> int:
        if self.ino_hint is not None:
            ino = self.ino_hint
            self.ino_hint = None
            if ino in self._nodes:
                raise ValueError(f"ino hint {ino} already live in the spec model")
            if ino in self._free_inos:
                # The hint names a previously-freed slot: take it out of
                # the free-list or a later alloc would hand it out twice.
                self._free_inos.remove(ino)
                heapq.heapify(self._free_inos)
            return ino
        if self._free_inos:
            # First-fit, matching the shadow's in-group bitmap scan; a
            # LIFO pop here diverges from the shadow once the bijection
            # holds stale pairs for the destroyed inodes (e.g. mkdir a,
            # mkdir b, rmdir a, rmdir b, mkdir a).
            return heapq.heappop(self._free_inos)
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _node(self, ino: int) -> SpecNode:
        return self._nodes[ino]

    def _destroy(self, node: SpecNode) -> None:
        del self._nodes[node.ino]
        heapq.heappush(self._free_inos, node.ino)

    # ------------------------------------------------------------------
    # resolution (identical algorithm to base/shadow)

    def _resolve_entry(self, path: str, follow_last: bool = True) -> tuple[SpecNode, str, SpecNode | None]:
        components = split_path(path)
        current = self._node(ROOT_INO)
        if not components:
            return current, "", current
        depth = 0
        i = 0
        while i < len(components):
            name = components[i]
            is_last = i == len(components) - 1
            if current.ftype != FileType.DIRECTORY:
                raise FsError(Errno.ENOTDIR, "/" + "/".join(components[:i]))
            child_ino = current.children.get(name)
            if child_ino is None:
                if is_last:
                    return current, name, None
                raise FsError(Errno.ENOENT, "/" + "/".join(components[: i + 1]))
            child = self._node(child_ino)
            if child.ftype == FileType.SYMLINK and (follow_last or not is_last):
                depth += 1
                if depth > SYMLINK_DEPTH_LIMIT:
                    raise FsError(Errno.ELOOP, path)
                rest = components[i + 1 :]
                if child.target.startswith("/"):
                    components = split_path(child.target) + rest
                    current = self._node(ROOT_INO)
                else:
                    components = split_path("/" + child.target) + rest
                i = 0
                if not components:
                    return current, "", current
                continue
            if is_last:
                return current, name, child
            current = child
            i += 1
        raise AssertionError("unreachable")

    def _resolve(self, path: str, follow_last: bool = True) -> SpecNode:
        _p, _n, node = self._resolve_entry(path, follow_last=follow_last)
        if node is None:
            raise FsError(Errno.ENOENT, path)
        return node

    def _resolve_parent(self, path: str) -> tuple[SpecNode, str]:
        parents, name = parent_and_name(path)
        parent = self._resolve("/" + "/".join(parents), follow_last=True)
        if parent.ftype != FileType.DIRECTORY:
            raise FsError(Errno.ENOTDIR, path)
        return parent, name

    # ==================================================================
    # FilesystemAPI

    def mkdir(self, path: str, perms: int = 0o755, opseq: int = 0) -> None:
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise FsError(Errno.EEXIST, path)
        child = SpecNode(
            ino=self._alloc_ino(),
            ftype=FileType.DIRECTORY,
            perms=perms,
            nlink=2,
            atime=opseq,
            mtime=opseq,
            ctime=opseq,
        )
        child.children["."] = child.ino
        child.children[".."] = parent.ino
        self._nodes[child.ino] = child
        parent.children[name] = child.ino
        parent.nlink += 1
        parent.mtime = opseq
        parent.ctime = opseq

    def rmdir(self, path: str, opseq: int = 0) -> None:
        parent, name = self._resolve_parent(path)
        child_ino = parent.children.get(name)
        if child_ino is None:
            raise FsError(Errno.ENOENT, path)
        child = self._node(child_ino)
        if child.ftype != FileType.DIRECTORY:
            raise FsError(Errno.ENOTDIR, path)
        if set(child.children) - {".", ".."}:
            raise FsError(Errno.ENOTEMPTY, path)
        del parent.children[name]
        parent.nlink -= 1
        parent.mtime = opseq
        parent.ctime = opseq
        self._destroy(child)

    def unlink(self, path: str, opseq: int = 0) -> None:
        parent, name = self._resolve_parent(path)
        child_ino = parent.children.get(name)
        if child_ino is None:
            raise FsError(Errno.ENOENT, path)
        child = self._node(child_ino)
        if child.ftype == FileType.DIRECTORY:
            raise FsError(Errno.EISDIR, path)
        del parent.children[name]
        parent.mtime = opseq
        parent.ctime = opseq
        child.nlink -= 1
        child.ctime = opseq
        if child.nlink == 0:
            if self.fd_table.fds_for_ino(child.ino):
                self._orphans.add(child.ino)
            else:
                self._destroy(child)

    def rename(self, src: str, dst: str, opseq: int = 0) -> None:
        src_parent, src_name = self._resolve_parent(src)
        dst_parent, dst_name = self._resolve_parent(dst)
        moving_ino = src_parent.children.get(src_name)
        if moving_ino is None:
            raise FsError(Errno.ENOENT, src)
        moving = self._node(moving_ino)
        existing_ino = dst_parent.children.get(dst_name)
        if existing_ino == moving_ino:
            return
        if moving.ftype == FileType.DIRECTORY:
            cursor = dst_parent
            while cursor.ino != ROOT_INO:
                if cursor.ino == moving_ino:
                    raise FsError(Errno.EINVAL, f"{dst} is inside {src}")
                cursor = self._node(cursor.children[".."])
            if moving_ino == ROOT_INO:
                raise FsError(Errno.EINVAL, "cannot rename /")

        existing = self._node(existing_ino) if existing_ino is not None else None
        if existing is not None:
            if moving.ftype == FileType.DIRECTORY and existing.ftype != FileType.DIRECTORY:
                raise FsError(Errno.ENOTDIR, dst)
            if moving.ftype != FileType.DIRECTORY and existing.ftype == FileType.DIRECTORY:
                raise FsError(Errno.EISDIR, dst)
            if existing.ftype == FileType.DIRECTORY and set(existing.children) - {".", ".."}:
                raise FsError(Errno.ENOTEMPTY, dst)

        if existing is not None:
            del dst_parent.children[dst_name]
            dst_parent.mtime = opseq
            dst_parent.ctime = opseq
            if existing.ftype == FileType.DIRECTORY:
                dst_parent.nlink -= 1
                self._destroy(existing)
            else:
                existing.nlink -= 1
                existing.ctime = opseq
                if existing.nlink == 0:
                    if self.fd_table.fds_for_ino(existing.ino):
                        self._orphans.add(existing.ino)
                    else:
                        self._destroy(existing)

        del src_parent.children[src_name]
        src_parent.mtime = opseq
        src_parent.ctime = opseq
        dst_parent.children[dst_name] = moving_ino
        dst_parent.mtime = opseq
        dst_parent.ctime = opseq
        if moving.ftype == FileType.DIRECTORY and src_parent.ino != dst_parent.ino:
            moving.children[".."] = dst_parent.ino
            src_parent.nlink -= 1
            dst_parent.nlink += 1
        moving.ctime = opseq

    def link(self, existing: str, new: str, opseq: int = 0) -> None:
        target = self._resolve(existing, follow_last=False)
        if target.ftype == FileType.DIRECTORY:
            raise FsError(Errno.EPERM, "hard link to directory")
        new_parent, new_name = self._resolve_parent(new)
        if new_name in new_parent.children:
            raise FsError(Errno.EEXIST, new)
        new_parent.children[new_name] = target.ino
        new_parent.mtime = opseq
        new_parent.ctime = opseq
        target.nlink += 1
        target.ctime = opseq

    def symlink(self, target: str, path: str, opseq: int = 0) -> None:
        if not target:
            raise FsError(Errno.EINVAL, "empty symlink target")
        if len(target.encode()) > MAX_SYMLINK_TARGET:
            raise FsError(Errno.ENAMETOOLONG, "symlink target too long")
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise FsError(Errno.EEXIST, path)
        child = SpecNode(
            ino=self._alloc_ino(),
            ftype=FileType.SYMLINK,
            perms=0o777,
            nlink=1,
            atime=opseq,
            mtime=opseq,
            ctime=opseq,
            target=target,
        )
        self._nodes[child.ino] = child
        parent.children[name] = child.ino
        parent.mtime = opseq
        parent.ctime = opseq

    def readlink(self, path: str) -> str:
        node = self._resolve(path, follow_last=False)
        if node.ftype != FileType.SYMLINK:
            raise FsError(Errno.EINVAL, path)
        return node.target

    def readdir(self, path: str) -> list[str]:
        node = self._resolve(path, follow_last=True)
        if node.ftype != FileType.DIRECTORY:
            raise FsError(Errno.ENOTDIR, path)
        return sorted(name for name in node.children if name not in (".", ".."))

    def stat(self, path: str) -> StatResult:
        return self._stat_node(self._resolve(path, follow_last=True))

    def lstat(self, path: str) -> StatResult:
        return self._stat_node(self._resolve(path, follow_last=False))

    def _stat_node(self, node: SpecNode) -> StatResult:
        return StatResult(
            ino=node.ino,
            ftype=node.ftype,
            size=node.size,
            nlink=node.nlink,
            perms=node.perms,
            uid=0,
            gid=0,
            atime=node.atime,
            mtime=node.mtime,
            ctime=node.ctime,
        )

    def truncate(self, path: str, size: int, opseq: int = 0) -> None:
        if size < 0:
            raise FsError(Errno.EINVAL, f"negative size {size}")
        if size > MAX_FILE_SIZE:
            raise FsError(Errno.EFBIG, str(size))
        node = self._resolve(path, follow_last=True)
        if node.ftype == FileType.DIRECTORY:
            raise FsError(Errno.EISDIR, path)
        if node.ftype == FileType.SYMLINK:
            raise FsError(Errno.EINVAL, path)
        self._truncate_node(node, size, opseq)

    def _truncate_node(self, node: SpecNode, size: int, opseq: int) -> None:
        if size < len(node.data):
            del node.data[size:]
        else:
            node.data.extend(b"\x00" * (size - len(node.data)))
        node.mtime = opseq
        node.ctime = opseq

    def open(self, path: str, flags: OpenFlags = OpenFlags.NONE, perms: int = 0o644, opseq: int = 0) -> int:
        parent_and_name(path)  # reject "/"
        if flags & OpenFlags.CREAT and flags & OpenFlags.EXCL:
            parent, name, found = self._resolve_entry(path, follow_last=False)
            if found is not None:
                raise FsError(Errno.EEXIST, path)
        else:
            parent, name, found = self._resolve_entry(path, follow_last=True)

        if found is None:
            if not flags & OpenFlags.CREAT:
                raise FsError(Errno.ENOENT, path)
            child = SpecNode(
                ino=self._alloc_ino(),
                ftype=FileType.REGULAR,
                perms=perms,
                nlink=1,
                atime=opseq,
                mtime=opseq,
                ctime=opseq,
            )
            self._nodes[child.ino] = child
            parent.children[name] = child.ino
            parent.mtime = opseq
            parent.ctime = opseq
        else:
            child = found
            if child.ftype == FileType.DIRECTORY:
                raise FsError(Errno.EISDIR, path)
            if child.ftype == FileType.SYMLINK:
                raise FsError(Errno.ELOOP, path)

        state = self.fd_table.allocate(child.ino, flags)
        if flags & OpenFlags.TRUNC and child.size:
            self._truncate_node(child, 0, opseq)
        return state.fd

    def close(self, fd: int, opseq: int = 0) -> None:
        state = self.fd_table.release(fd)
        if state.ino in self._orphans and not self.fd_table.fds_for_ino(state.ino):
            self._orphans.discard(state.ino)
            self._destroy(self._node(state.ino))

    def read(self, fd: int, length: int, opseq: int = 0) -> bytes:
        if length < 0:
            raise FsError(Errno.EINVAL, f"negative length {length}")
        state = self.fd_table.get(fd)
        node = self._node(state.ino)
        if node.ftype == FileType.DIRECTORY:
            raise FsError(Errno.EISDIR, f"fd {fd}")
        start = state.offset
        if start >= len(node.data) or length == 0:
            return b""
        end = min(len(node.data), start + length)
        state.offset = end
        return bytes(node.data[start:end])

    def write(self, fd: int, data: bytes, opseq: int = 0) -> int:
        if not isinstance(data, (bytes, bytearray)):
            raise FsError(Errno.EINVAL, "write data must be bytes")
        state = self.fd_table.get(fd)
        node = self._node(state.ino)
        if node.ftype == FileType.DIRECTORY:
            raise FsError(Errno.EISDIR, f"fd {fd}")
        if not data:
            return 0
        offset = len(node.data) if state.flags & OpenFlags.APPEND else state.offset
        end = offset + len(data)
        if end > MAX_FILE_SIZE:
            raise FsError(Errno.EFBIG, f"write to {end}")
        if offset > len(node.data):
            node.data.extend(b"\x00" * (offset - len(node.data)))
        node.data[offset:end] = data
        node.mtime = opseq
        node.ctime = opseq
        state.offset = end
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int = 0, opseq: int = 0) -> int:
        state = self.fd_table.get(fd)
        node = self._node(state.ino)
        if whence == 0:
            new = offset
        elif whence == 1:
            new = state.offset + offset
        elif whence == 2:
            new = node.size + offset
        else:
            raise FsError(Errno.EINVAL, f"whence {whence}")
        if new < 0:
            raise FsError(Errno.EINVAL, f"offset {new}")
        state.offset = new
        return new

    def fsync(self, fd: int, opseq: int = 0) -> None:
        """Durability is vacuous in the model; only EBADF semantics."""
        self.fd_table.get(fd)

    def fstat_ino(self, fd: int) -> int:
        return self.fd_table.get(fd).ino
