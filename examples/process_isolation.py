#!/usr/bin/env python3
"""The shadow as a separate userspace process (§3.2).

"The shadow filesystem is launched as a separate userspace process to
ensure the strong isolation of faults and a clean interface between the
base and shadow."

This example runs the same recovery twice — once with the default
in-process shadow, once with the shadow in a real child process reading
the image file itself — and shows (a) the results are identical, and
(b) the process boundary genuinely isolates: a shadow that dies (here,
one fed an unparseable operation log) takes down only the child, and
the failure surfaces as a clean RecoveryFailure in the parent.

Run:  python examples/process_isolation.py
"""

import os
import tempfile

from repro import FileBlockDevice, OpenFlags, mkfs
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug, RecoveryFailure


def build(path: str, in_process: bool) -> RAEFilesystem:
    device = FileBlockDevice(path, block_count=4096)
    mkfs(device)
    hooks = HookPoints()

    def bug(point, ctx):
        if "trip" in str(ctx.get("name", "")):
            raise KernelBug("deterministic crash for the demo")

    hooks.register("dir.insert", bug)
    return RAEFilesystem(device, RAEConfig(shadow_in_process=in_process), hooks=hooks)


def run_mode(in_process: bool) -> None:
    label = "in-process shadow" if in_process else "separate-process shadow"
    with tempfile.NamedTemporaryFile(suffix=".img", delete=False) as handle:
        path = handle.name
    try:
        fs = build(path, in_process)
        fs.mkdir("/work")
        fd = fs.open("/work/doc", OpenFlags.CREAT)
        fs.write(fd, b"resilient bytes")
        fs.close(fd)
        fs.mkdir("/trip-mine")  # crash -> recovery in the chosen mode
        print(f"--- {label} ---")
        print(f"recovered: {fs.recovery_count} recovery, namespace {fs.readdir('/')}")
        event = fs.stats.events[0]
        print(f"replayed {event.replayed_ops} ops in {event.total_seconds * 1000:.1f} ms")
        fs.unmount()
    finally:
        os.unlink(path)


def run_isolation_failure() -> None:
    """Feed the child shadow a poisoned record: the child process dies,
    the parent gets a RecoveryFailure — and keeps running."""
    with tempfile.NamedTemporaryFile(suffix=".img", delete=False) as handle:
        path = handle.name
    try:
        fs = build(path, in_process=False)
        fs.mkdir("/work")
        # Poison the recorded outcome so strict cross-check fails in the child.
        fs.oplog.entries[0].outcome.ino = 1  # the reserved inode: unusable
        print("--- isolation under a failing child ---")
        try:
            fs.mkdir("/trip-mine")
        except RecoveryFailure as failure:
            print(f"parent survived; child failure surfaced cleanly:\n  {failure}")
        print(f"parent process pid {os.getpid()} is still in business")
    finally:
        os.unlink(path)


def main() -> None:
    run_mode(in_process=True)
    run_mode(in_process=False)
    run_isolation_failure()


if __name__ == "__main__":
    main()
