#!/usr/bin/env python3
"""Quickstart: mount an RAE filesystem, use it, survive a kernel bug.

Run:  python examples/quickstart.py
"""

from repro import MemoryBlockDevice, OpenFlags, mkfs
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug
from repro.fsck import Fsck


def main() -> None:
    # 1. A 32 MiB in-memory disk, formatted with the shared on-disk format.
    device = MemoryBlockDevice(block_count=8192)
    mkfs(device)

    # 2. Arm a deterministic kernel bug in the base filesystem: inserting
    #    any directory entry whose name contains "bug" dereferences NULL.
    #    (In real life this is the crafted-image / missing-sanity-check
    #    class the paper's study found 78 deterministic crashes of.)
    hooks = HookPoints()

    def nasty_bug(point, ctx):
        if "bug" in str(ctx.get("name", "")):
            raise KernelBug("NULL pointer dereference in dir_add_entry")

    hooks.register("dir.insert", nasty_bug)

    # 3. Mount through the RAE supervisor: base + dormant shadow.
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)

    # 4. Normal life on the common path — full base performance.
    fs.mkdir("/projects")
    fd = fs.open("/projects/notes.txt", OpenFlags.CREAT)
    fs.write(fd, b"RAE: robust alternative execution\n")
    fs.fsync(fd)

    # 5. Trigger the bug.  Without RAE this kernel oops would take the
    #    machine down; with RAE the shadow re-executes the operation
    #    sequence and the application never notices.
    fs.mkdir("/projects/bug-reports")
    print(f"survived a kernel BUG; recoveries so far: {fs.recovery_count}")
    print(f"namespace: {fs.readdir('/projects')}")

    # 6. The open descriptor survived recovery with its offset.
    fs.write(fd, b"...and the fd survived recovery.\n")
    fs.lseek(fd, 0, 0)
    print("file contents:")
    print(fs.read(fd, 4096).decode())
    fs.close(fd)

    # 7. Recovery details, straight from the supervisor's event log.
    for event in fs.stats.events:
        print(f"recovery event: {event.detected}")
        print(f"  ops replayed: {event.replayed_ops}, took {event.total_seconds * 1000:.2f} ms")

    # 8. Everything persisted correctly: unmount and fsck agree.
    fs.unmount()
    report = Fsck(device).run()
    print(f"fsck after unmount: {'clean' if report.clean else report.errors}")


if __name__ == "__main__":
    main()
