#!/usr/bin/env python3
"""Availability demo: a web server surviving kernel bugs.

A simulated web-server application (read-mostly workload, self-verifying
reads) runs over a base filesystem with two non-deterministic bugs armed
— a block-layer crash and a lockdep WARN — plus a deterministic crash on
a particular request pattern.  We run the same world twice:

* without RAE: the first detected error aborts service;
* with RAE: every error is masked by shadow recovery, the application
  completes its full request schedule, and its own data verification
  confirms nothing was lost or corrupted.

Run:  python examples/webserver_survival.py
"""

from repro import MemoryBlockDevice, mkfs
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.faults import (
    Injector,
    make_blkmq_wedge_bug,
    make_dir_insert_crash_bug,
    make_lockdep_warn_bug,
)
from repro.fsck import Fsck
from repro.workloads import SimulatedApplication, webserver_profile

N_REQUESTS = 500


def armed_hooks(seed: int) -> tuple[HookPoints, Injector]:
    hooks = HookPoints()
    injector = Injector(hooks, seed=seed)
    injector.arm(make_blkmq_wedge_bug(probability=0.01))
    injector.arm(make_lockdep_warn_bug(probability=0.005))
    injector.arm(make_dir_insert_crash_bug(substring="mv0"))  # renames trip it
    return hooks, injector


def run_without_rae() -> None:
    device = MemoryBlockDevice(block_count=16384)
    mkfs(device)
    hooks, injector = armed_hooks(seed=7)
    fs = BaseFilesystem(device, hooks=hooks)
    injector.retarget(fs)
    app = SimulatedApplication(fs, webserver_profile(), seed=7)
    stats = app.run(N_REQUESTS, stop_on_runtime_failure=True)
    print("--- without RAE ---")
    print(f"requests completed : {stats.ops_completed}/{stats.ops_attempted}")
    print(f"service lost at    : runtime failure #{stats.runtime_failures}")
    print(f"availability       : {stats.availability:.1%} (then the machine is down)")


def run_with_rae() -> None:
    device = MemoryBlockDevice(block_count=16384)
    mkfs(device)
    hooks, injector = armed_hooks(seed=7)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    injector.retarget(fs.base)
    fs.on_reboot.append(injector.retarget)
    app = SimulatedApplication(fs, webserver_profile(), seed=7)
    stats = app.run(N_REQUESTS, stop_on_runtime_failure=True)
    mismatches = app.verify_all()
    print("--- with RAE ---")
    print(f"requests completed : {stats.ops_completed}/{stats.ops_attempted}")
    print(f"recoveries         : {fs.recovery_count}")
    for event in fs.stats.events:
        print(f"   masked: {event.detected} ({event.total_seconds * 1000:.1f} ms)")
    print(f"availability       : {stats.availability:.1%}")
    print(f"app data verified  : {len(app.expected)} files, {mismatches} mismatches")
    fs.unmount()
    print(f"fsck               : {'clean' if Fsck(device).run().clean else 'CORRUPT'}")


def main() -> None:
    run_without_rae()
    print()
    run_with_rae()


if __name__ == "__main__":
    main()
