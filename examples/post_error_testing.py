#!/usr/bin/env python3
"""The shadow as a post-error testing tool (§4.3).

"the testing phase uses the base as a reference filesystem to test the
shadow by running a large volume of workloads and monitoring for
discrepancies.  Disagreements between the base and shadow indicate bugs
in the base or missing conditions in the shadow. ... running the shadow
is an effective way to stress the bug in the base."

This example runs a differential campaign: the same generated workload
executes on the base and the shadow side by side, outcomes compared op
by op, final logical states compared at the end.  First over a healthy
base (no discrepancies), then over a base with a *silent* cache-
coherence bug armed (a missing dentry invalidation) — the kind of
NoCrash bug neither fsck nor validate-on-sync can see, but differential
testing pins to the exact operation.

Run:  python examples/post_error_testing.py
"""

from repro import MemoryBlockDevice, mkfs
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.faults import Injector, make_stale_dentry_bug
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec.equivalence import capture_state, outcomes_equivalent, states_equivalent
from repro.workloads import WorkloadGenerator, metadata_profile

N_OPS = 250


def differential_run(hooks: HookPoints | None = None, injector_target=None, seed: int = 5):
    """Run the same stream on base and shadow; return discrepancies."""
    base_device = MemoryBlockDevice(block_count=16384)
    mkfs(base_device)
    shadow_device = MemoryBlockDevice(block_count=16384)
    mkfs(shadow_device)

    base = BaseFilesystem(base_device, hooks=hooks or HookPoints())
    if injector_target is not None:
        injector_target.retarget(base)
    shadow = ShadowFilesystem(shadow_device)

    discrepancies = []
    operations = WorkloadGenerator(metadata_profile(), seed=seed).ops(N_OPS)
    for index, operation in enumerate(operations):
        if operation.name == "fsync":
            operation.apply(base, opseq=index + 1)
            continue
        base_result = operation.apply(base, opseq=index + 1)
        shadow_result = operation.apply(shadow, opseq=index + 1)
        if not outcomes_equivalent(base_result, shadow_result, ino_map=None):
            discrepancies.append((index, operation.describe(), base_result, shadow_result))

    state_report = states_equivalent(capture_state(base), capture_state(shadow))
    return discrepancies, state_report


def stale_dentry_demo() -> None:
    """A targeted differential sequence that revisits a removed name —
    the access pattern that exposes the missing invalidation."""
    from repro.api import OpenFlags, op

    hooks = HookPoints()
    injector = Injector(hooks)
    injector.arm(make_stale_dentry_bug(name="victim.txt", collateral="innocent.txt"))

    base_device = MemoryBlockDevice(block_count=8192)
    mkfs(base_device)
    shadow_device = MemoryBlockDevice(block_count=8192)
    mkfs(shadow_device)
    base = BaseFilesystem(base_device, hooks=hooks)
    injector.retarget(base)
    shadow = ShadowFilesystem(shadow_device)

    sequence = [
        op("open", path="/innocent.txt", flags=int(OpenFlags.CREAT)),
        op("close", fd=3),
        op("open", path="/victim.txt", flags=int(OpenFlags.CREAT)),
        op("close", fd=3),
        op("unlink", path="/victim.txt"),  # base: invalidates the WRONG dentry
        op("stat", path="/innocent.txt"),  # base: ghost negative entry -> ENOENT
    ]
    for index, operation in enumerate(sequence):
        base_exc = shadow_exc = None
        base_result = shadow_result = None
        try:
            base_result = operation.apply(base, opseq=index + 1)
        except Exception as exc:  # noqa: BLE001 — a runtime error IS the finding
            base_exc = exc
        try:
            shadow_result = operation.apply(shadow, opseq=index + 1)
        except Exception as exc:  # noqa: BLE001
            shadow_exc = exc
        agree = (
            base_exc is None
            and shadow_exc is None
            and outcomes_equivalent(base_result, shadow_result, ino_map=None)
        )
        print(f"  op {index}: {operation.describe()}")
        print(f"    base   -> {base_exc or base_result}")
        print(f"    shadow -> {shadow_exc or shadow_result}")
        if not agree:
            print("    ^^^ DISCREPANCY: the wrong-entry invalidation planted a ghost")
            print("        negative dentry — the base claims an existing file is gone.")
            return
    print("  (no discrepancy — unexpected)")


def main() -> None:
    print(f"differential campaign: {N_OPS} metadata-heavy ops, base vs shadow\n")

    discrepancies, state_report = differential_run()
    print("--- healthy base ---")
    print(f"per-op discrepancies : {len(discrepancies)}")
    print(f"final-state verdict  : {state_report}")

    print("\n--- base with a silent stale-dentry bug armed ---")
    print("(a generated stream never revisits removed names, so the campaign")
    print(" is extended with a targeted remove-then-lookup sequence:)")
    stale_dentry_demo()
    print("\nverdict: disagreement found -> a bug in the base or a missing")
    print("condition in the shadow; either way, §4.3 says: report it.")


if __name__ == "__main__":
    main()
