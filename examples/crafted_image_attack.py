#!/usr/bin/env python3
"""The §2.1 attack scenario: a crafted disk image that bypasses FSCK.

"One notable type of deterministic bug occurs when a user mounts a
crafted disk image and issues operations to trigger a null-pointer
dereference or use-after-free in the kernel; such images can bypass
FSCK, leading to crashes from malicious attackers."

This example plays both sides:

1. the attacker builds a structurally valid image whose directory
   entries carry names that trip a known input-sanity bug;
2. fsck declares the image clean (it *is* structurally clean);
3. mounting it on the bare base and listing the share crashes the
   kernel — reproducibly, because the bug is deterministic;
4. the same image under RAE: the crash is detected, the shadow (which
   has the sanity checks the base lacks) executes the operations, and
   the user gets their directory listing.

Run:  python examples/crafted_image_attack.py
"""

from repro import MemoryBlockDevice
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug
from repro.faults import Injector, make_dir_insert_crash_bug, make_lookup_crash_bug
from repro.faults.crafted import craft_poisoned_name_image
from repro.fsck import Fsck

TRIGGER = " evil"  # the byte pattern the base's parser mishandles


def buggy_hooks() -> tuple[HookPoints, Injector]:
    hooks = HookPoints()
    injector = Injector(hooks)
    injector.arm(make_dir_insert_crash_bug(substring=TRIGGER))
    injector.arm(make_lookup_crash_bug(substring=TRIGGER))
    return hooks, injector


def main() -> None:
    # --- the attacker prepares the image ------------------------------
    device = MemoryBlockDevice(block_count=8192)
    traps = craft_poisoned_name_image(device, trigger_substring=TRIGGER, n_traps=2)
    print(f"attacker planted: {traps}")

    # --- the victim checks it, like a diligent admin ------------------
    report = Fsck(device).run()
    print(f"fsck verdict: {'CLEAN — mount away!' if report.clean else 'rejected'}")
    assert report.clean

    # --- mounting on the bare (buggy) base: kernel crash ---------------
    hooks, injector = buggy_hooks()
    bare = BaseFilesystem(device, hooks=hooks)
    injector.retarget(bare)
    try:
        bare.stat(traps[0])
    except KernelBug as bug:
        print(f"bare base: KERNEL BUG — {bug}")
    bare._mounted = False  # the machine just died; simulate that

    # --- the same image under RAE --------------------------------------
    hooks, injector = buggy_hooks()
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    injector.retarget(fs.base)
    fs.on_reboot.append(injector.retarget)

    listing = fs.readdir("/share")
    print(f"RAE: /share listed fine: {listing}")
    st = fs.stat(traps[0])
    print(f"RAE: stat({traps[0]!r}) -> ino {st.ino}, {st.size} bytes")
    fd = fs.open(traps[0])
    print(f"RAE: file contents: {fs.read(fd, 64)!r}")
    fs.close(fd)
    print(f"recoveries performed while serving the attack: {fs.recovery_count}")
    for event in fs.stats.events:
        print(f"  masked: {event.detected}")

    fs.unmount()
    print(f"image still clean after the whole episode: {Fsck(device).run().clean}")


if __name__ == "__main__":
    main()
