"""Table 1 — Study of filesystem bugs (Linux ext4).

Regenerates the determinism × consequence table from the curated
256-record dataset by running the real classification pipeline, and
asserts the paper's marginals: 165 deterministic (89 of them detectable
as Crash/WARN), 83 non-deterministic, 8 unknown, 256 total.
"""

from repro.bench.reporting import print_banner
from repro.bugstudy import PAPER_TABLE1, build_dataset, build_table1


def test_table1_bug_study(benchmark):
    records = build_dataset()
    table = benchmark(build_table1, records)

    print_banner("Table 1: Study of filesystem bugs (Linux ext4)")
    print(table.render())
    print(
        f"\nDeterministic bugs: {table.row_total('deterministic')}/165 (paper) | "
        f"detectable (Crash+WARN): {table.detected_deterministic}/89 (paper)"
    )

    assert table.counts == PAPER_TABLE1
    assert table.total == 256
    assert table.row_total("deterministic") == 165
    assert table.detected_deterministic == 89
