"""Ablation — the cost of the shadow's extensive runtime checks (§2.3).

"Due to performance concerns, runtime checks are commonly disabled in
the base, but the shadow can enable all possible checks to survive
dynamic errors without performance concerns."  Quantified two ways:

* shadow throughput at OFF / BASIC / FULL check levels — the price the
  shadow pays, and can afford, per the paper;
* the base's validate-on-sync toggle — the *one* runtime check the base
  keeps (the fault model needs detection before persistence) and its
  common-path cost.
"""

import time

from repro.bench import make_device, run_ops
from repro.bench.reporting import format_table, print_banner
from repro.basefs.filesystem import BaseFilesystem
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.workloads import WorkloadGenerator, fileserver_profile

N_OPS = 300


def shadow_throughput(level: CheckLevel) -> tuple[float, int]:
    operations = [
        operation
        for operation in WorkloadGenerator(fileserver_profile(), seed=123).ops(N_OPS)
        if operation.name != "fsync"
    ]
    shadow = ShadowFilesystem(make_device(16384), check_level=level)
    start = time.perf_counter()
    run_ops(shadow, operations)
    elapsed = time.perf_counter() - start
    return len(operations) / elapsed, shadow.checks.stats.checks_run


def test_shadow_check_levels(benchmark):
    benchmark(shadow_throughput, CheckLevel.FULL)
    rows = []
    throughput = {}
    for level in (CheckLevel.OFF, CheckLevel.BASIC, CheckLevel.FULL):
        ops_per_second, checks_run = shadow_throughput(level)
        throughput[level] = ops_per_second
        rows.append([level.name, ops_per_second, checks_run])
    print_banner("Shadow throughput by check level")
    print(format_table(["check level", "ops/s", "checks run"], rows))
    # FULL costs real work, but remains the same order of magnitude: the
    # shadow can afford it (the paper's point).
    assert throughput[CheckLevel.OFF] >= throughput[CheckLevel.FULL]
    assert throughput[CheckLevel.FULL] > throughput[CheckLevel.OFF] / 20


def test_base_validate_on_sync_cost(benchmark):
    operations = WorkloadGenerator(fileserver_profile(), seed=124).ops(N_OPS)

    def run_base(validate: bool) -> float:
        fs = BaseFilesystem(make_device(16384), validate_on_sync=validate)
        start = time.perf_counter()
        for index, operation in enumerate(operations):
            operation.apply(fs, opseq=index + 1)
            fs.writeback.tick()
        fs.commit()
        return time.perf_counter() - start

    benchmark(run_base, True)
    with_checks = run_base(True)
    without = run_base(False)
    overhead = with_checks / without - 1
    print_banner("Base validate-on-sync cost (the one check the base keeps)")
    print(
        format_table(
            ["configuration", "seconds", "overhead"],
            [["validate_on_sync=False", without, "—"], ["validate_on_sync=True", with_checks, f"{overhead:+.1%}"]],
        )
    )
    # Detection-before-persistence must be affordable on the common path.
    assert overhead < 2.0


def test_checks_catch_what_they_cost(benchmark):
    """The payoff side: FULL checks catch a cross-structure corruption
    that BASIC misses (a block marked free while referenced)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # correctness demo, not a timing
    from repro.errors import InvariantViolation
    from repro.ondisk.image import read_inode, write_inode
    from repro.ondisk.layout import DiskLayout, ROOT_INO

    import pytest

    device = make_device(16384)
    layout = DiskLayout(block_count=16384)
    root = read_inode(device, layout, ROOT_INO)
    # Clear the root dir block's bitmap bit (cross-structure corruption).
    from repro.ondisk.bitmap import Bitmap

    group = layout.group_of_block(root.direct[0])
    bitmap_block = layout.block_bitmap_block(group)
    bitmap = Bitmap.from_block(layout.blocks_per_group, device.read_block(bitmap_block))
    bitmap.clear(root.direct[0] - layout.group_start(group))
    device.write_block(bitmap_block, bitmap.to_block())

    basic = ShadowFilesystem(device, check_level=CheckLevel.BASIC)
    basic.readdir("/")  # BASIC: structure parses, corruption missed

    with pytest.raises(InvariantViolation):
        full = ShadowFilesystem(device, check_level=CheckLevel.FULL)
        full.readdir("/")
