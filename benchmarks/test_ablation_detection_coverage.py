"""Ablation — detection coverage by bug class (§2.1's boundary).

"All errors that can be detected are handled by the shadow."  The
contrapositive matters just as much: a bug that produces no detectable
runtime error is *not* handled — that is the paper's honest boundary,
and this experiment maps it for the reproduction's bug catalog.

For each catalog class we arm the bug, drive the scenario that triggers
it, and record how (and whether) the RAE stack noticed:

* CRASH / FREEZE   -> detected at the faulting operation;
* WARN             -> detected per the WARN policy;
* NOCRASH corruption of on-disk-bound state -> detected by
  validate-on-sync at the next commit (the §3.1 fault-model assumption);
* NOCRASH cache-coherence (stale dentry)    -> NOT detected by RAE; it
  takes differential testing (§4.3) to expose — measured here too.
"""

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.bench import make_device
from repro.bench.reporting import format_table, print_banner
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.faults import (
    Injector,
    make_alloc_accounting_bug,
    make_close_use_after_free_bug,
    make_dir_insert_crash_bug,
    make_freeze_bug,
    make_size_corruption_bug,
    make_stale_dentry_bug,
    make_truncate_warn_bug,
)


def rig(spec):
    hooks = HookPoints()
    injector = Injector(hooks)
    armed = injector.arm(spec)
    fs = RAEFilesystem(make_device(8192), RAEConfig(), hooks=hooks)
    injector.retarget(fs.base)
    fs.on_reboot.append(injector.retarget)
    return fs, armed


def drive(fs, spec_id):
    """The trigger scenario per bug; returns an app-visible anomaly flag."""
    if spec_id == "dirent-null-deref":
        fs.mkdir("/x evil-name")
        return False
    if spec_id == "close-uaf":
        fd = fs.open("/a", OpenFlags.CREAT)
        fs.close(fd)
        return False
    if spec_id == "truncate-warn":
        fd = fs.open("/big", OpenFlags.CREAT)
        fs.write(fd, b"t" * (2 << 20))
        fs.close(fd)
        fs.truncate("/big", 0)
        return False
    if spec_id == "size-corruption":
        fs.mkdir("/c1")
        fs.mkdir("/c2")
        fd = fs.open("/c1/f", OpenFlags.CREAT)
        fs.fsync(fd)  # validate-on-sync runs here
        fs.close(fd)
        return False
    if spec_id == "alloc-accounting":
        fs.mkdir("/acc")
        fd = fs.open("/acc/f", OpenFlags.CREAT)
        fs.write(fd, b"a" * 20000)
        fs.fsync(fd)
        fs.close(fd)
        return False
    if spec_id == "journal-hang":
        fd = fs.open("/h", OpenFlags.CREAT)
        fs.fsync(fd)
        fs.close(fd)
        return False
    if spec_id == "stale-dentry":
        fd = fs.open("/innocent", OpenFlags.CREAT)
        fs.close(fd)
        fd = fs.open("/victim", OpenFlags.CREAT)
        fs.close(fd)
        fs.unlink("/victim")  # plants the ghost negative dentry
        try:
            fs.stat("/innocent")
            return False
        except Exception:  # noqa: BLE001 — the app sees a wrong ENOENT
            return True
    raise AssertionError(spec_id)


CASES = [
    ("deterministic crash (input sanity)", make_dir_insert_crash_bug(substring=" evil"), "dirent-null-deref"),
    ("deterministic crash (use-after-free)", make_close_use_after_free_bug(nth=1), "close-uaf"),
    ("deterministic WARN (size accounting)", make_truncate_warn_bug(threshold=1 << 20), "truncate-warn"),
    ("freeze / watchdog (journal hang)", make_freeze_bug(substring="x"), "journal-hang"),
    ("NoCrash corruption (inode size)", make_size_corruption_bug(nth=2), "size-corruption"),
    ("NoCrash corruption (free count)", make_alloc_accounting_bug(nth=2), "alloc-accounting"),
    ("NoCrash cache-coherence (stale dentry)", make_stale_dentry_bug(name="victim", collateral="innocent"), "stale-dentry"),
]


def test_detection_coverage(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    results = {}
    for label, spec, spec_id in CASES:
        fs, armed = rig(spec)
        anomaly = drive(fs, spec_id)
        detected = fs.recovery_count > 0
        results[spec_id] = (armed.fires, detected, anomaly)
        rows.append(
            [
                label,
                armed.fires,
                "yes" if detected else "NO",
                "masked" if detected else ("app-visible anomaly" if anomaly else "silent"),
            ]
        )
    print_banner("Detection coverage by bug class (RAE's honest boundary)")
    print(format_table(["bug class", "fired", "detected", "outcome"], rows))

    # Every fired detectable class was masked...
    for spec_id in ("dirent-null-deref", "close-uaf", "truncate-warn", "journal-hang",
                    "size-corruption", "alloc-accounting"):
        fires, detected, _ = results[spec_id]
        assert fires >= 1 and detected, spec_id
    # ...and the undetectable class really is RAE's boundary.
    fires, detected, anomaly = results["stale-dentry"]
    assert fires >= 1 and not detected
    # (Whether the anomaly surfaces as a wrong errno depends on lookup
    # order; differential testing catches it either way — see
    # examples/post_error_testing.py.)
