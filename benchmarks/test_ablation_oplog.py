"""Ablation — op-log behaviour (§3.2 recording and truncation).

"When a file descriptor is closed and the buffered updates are flushed
to disk, the corresponding recorded operations can be discarded."  The
log's size is bounded by the commit cadence: this sweep varies the
write-back interval and reports the high-water mark of recorded entries
and bytes — the buffering-vs-replayable-window trade-off, which the
recovery-time ablation prices from the other side.
"""

from repro.basefs.writeback import WritebackPolicy
from repro.bench import make_device
from repro.bench.reporting import format_table, print_banner
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError
from repro.workloads import WorkloadGenerator, varmail_profile, webserver_profile

N_OPS = 400


def run_with_interval(interval: int, profile_factory=varmail_profile, seed: int = 444) -> dict:
    policy = WritebackPolicy(
        dirty_page_high_water=100_000, dirty_metadata_high_water=100_000, commit_interval_ops=interval
    )
    fs = RAEFilesystem(make_device(32768), RAEConfig(), writeback_policy=policy)
    for operation in WorkloadGenerator(profile_factory(), seed=seed).ops(N_OPS):
        try:
            operation.apply(fs)
        except FsError:
            pass
    return {
        "interval": interval,
        "max entries": fs.oplog.stats.max_entries,
        "max KiB": fs.oplog.stats.max_bytes // 1024,
        "truncations": fs.oplog.stats.truncations,
        "commits": fs.base.stats.commits,
    }


def test_oplog_size_vs_commit_interval(benchmark):
    benchmark(run_with_interval, 50)
    rows = []
    results = {}
    for interval in (10, 50, 200, 1000):
        result = run_with_interval(interval)
        results[interval] = result
        rows.append([result[h] for h in ("interval", "max entries", "max KiB", "truncations", "commits")])
    print_banner("Op-log high-water mark vs commit interval (varmail)")
    print(format_table(["commit interval (ops)", "max entries", "max KiB", "truncations", "commits"], rows))
    assert results[1000]["max entries"] > results[10]["max entries"]
    assert results[10]["truncations"] > results[1000]["truncations"]


def test_oplog_truncation_on_fsync(benchmark):
    """fsync is an explicit durability point: the log collapses to the
    fd registry regardless of the write-back cadence."""
    from repro.api import OpenFlags

    def scenario():
        fs = RAEFilesystem(
            make_device(16384),
            RAEConfig(),
            writeback_policy=WritebackPolicy(
                dirty_page_high_water=100_000, dirty_metadata_high_water=100_000, commit_interval_ops=100_000
            ),
        )
        fd = fs.open("/mail", OpenFlags.CREAT | OpenFlags.APPEND)
        sizes = []
        for i in range(30):
            fs.write(fd, b"message body " * 20)
            if (i + 1) % 10 == 0:
                sizes.append(len(fs.oplog))
                fs.fsync(fd)
                sizes.append(len(fs.oplog))
        fs.close(fd)
        return sizes

    sizes = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_banner("Op-log length around fsync boundaries")
    print(format_table(["point", "entries"], [[f"window {i // 2} {'before' if i % 2 == 0 else 'after'} fsync", s] for i, s in enumerate(sizes)]))
    # Before each fsync the window holds ~10 writes; after, only the
    # fsync record itself remains.
    assert all(before >= 9 for before in sizes[0::2])
    assert all(after <= 1 for after in sizes[1::2])


def test_oplog_read_payload_cost(benchmark):
    """A design-cost finding the measurement surfaced: constrained-mode
    cross-checking records *read payloads*, so a read-mostly workload
    with rare durability points accumulates a large log — while a
    write-heavy-but-fsync-happy personality stays tiny because every
    fsync truncates.  The log is bounded by durability cadence, not by
    how mutation-heavy the op mix looks."""
    result = benchmark.pedantic(
        run_with_interval, args=(1000,), kwargs={"profile_factory": webserver_profile, "seed": 445},
        rounds=1, iterations=1,
    )
    varmail = run_with_interval(1000, profile_factory=varmail_profile, seed=445)
    print_banner("Op-log footprint: durability cadence beats op mix (interval=1000)")
    print(
        format_table(
            ["profile", "max entries", "max KiB", "truncations"],
            [
                ["webserver (read-mostly, no fsync)", result["max entries"], result["max KiB"], result["truncations"]],
                ["varmail (write-heavy, fsync-happy)", varmail["max entries"], varmail["max KiB"], varmail["truncations"]],
            ],
        )
    )
    # Reads carry their returned bytes: the fsync-free log is the big one.
    assert result["max KiB"] > varmail["max KiB"]
    assert varmail["truncations"] > result["truncations"]
