"""Ablation — N-version programming overhead (§2.1).

"maintaining and executing multiple versions (often, at least three)
incurs excessive overhead" — measured: a 3-version NVP executor against
a single implementation and against RAE on the same bug-free workload.
RAE's whole bet is paying ~1x until an error actually happens.
"""

import time

from repro.bench import make_device
from repro.bench.reporting import format_table, print_banner
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError
from repro.spec.model import SpecFilesystem
from repro.spec.nvp import NVPExecutor
from repro.spec.verifier import fresh_shadow
from repro.workloads import WorkloadGenerator, fileserver_profile

N_OPS = 300


def operations():
    return [
        operation
        for operation in WorkloadGenerator(fileserver_profile(), seed=321).ops(N_OPS)
        if operation.name != "fsync"  # the shadow member cannot fsync
    ]


def run_single() -> float:
    fs = SpecFilesystem()
    ops = operations()
    start = time.perf_counter()
    for index, operation in enumerate(ops):
        operation.apply(fs, opseq=index + 1)
    return time.perf_counter() - start


def run_nvp(n_versions: int) -> tuple[float, int]:
    versions = [SpecFilesystem()] + [fresh_shadow(block_count=16384) for _ in range(n_versions - 1)]
    nvp = NVPExecutor(versions)
    ops = operations()
    start = time.perf_counter()
    for index, operation in enumerate(ops):
        nvp.apply(operation, opseq=index + 1)
    return time.perf_counter() - start, nvp.stats.executions


def run_rae() -> float:
    fs = RAEFilesystem(make_device(16384), RAEConfig())
    ops = operations()
    start = time.perf_counter()
    for operation in ops:
        try:
            operation.apply(fs)
        except FsError:
            pass
    return time.perf_counter() - start


def test_nvp_overhead_vs_rae(benchmark):
    benchmark.pedantic(run_nvp, args=(3,), rounds=2, iterations=1)
    single = run_single()
    nvp3_time, nvp3_executions = run_nvp(3)
    rae_time = run_rae()
    total = len(operations())

    print_banner(f"NVP-3 vs RAE on a bug-free workload ({total} ops)")
    print(
        format_table(
            ["configuration", "seconds", "executions", "vs single spec"],
            [
                ["single version (spec)", single, total, 1.0],
                ["NVP-3 (spec + 2 shadows, voting)", nvp3_time, nvp3_executions, nvp3_time / single],
                ["RAE (base + dormant shadow)", rae_time, total, rae_time / single],
            ],
        )
    )
    assert nvp3_executions == 3 * total
    # NVP executes 3x the work; RAE executes the workload once.  (Wall
    # clock comparisons against the pure-dict spec model are unfair to
    # both systems; the executions column is the honest axis.)
    assert nvp3_time > single * 2


def test_nvp_disagreement_reporting(benchmark):
    """§4.3: discrepancy reporting is useful beyond voting — NVP-style
    differential runs flag a buggy member precisely."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    versions = [SpecFilesystem(), SpecFilesystem(), SpecFilesystem()]
    original = versions[1].readdir
    versions[1].readdir = lambda path: ["phantom-entry"]
    nvp = NVPExecutor(versions)
    from repro.api import op

    nvp.apply(op("mkdir", path="/d"), opseq=1)
    result = nvp.apply(op("readdir", path="/"), opseq=2)
    assert result.dissenting_versions == [1]
    assert nvp.stats.disagreements == 1
