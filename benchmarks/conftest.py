"""Shared benchmark configuration.

Every benchmark prints a paper-style table alongside pytest-benchmark's
timing output; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

import pytest


@pytest.fixture(autouse=True)
def _deterministic_env():
    """Benchmarks are seeded; nothing to set up, but the fixture is the
    place to grow environment pinning if needed."""
    yield
