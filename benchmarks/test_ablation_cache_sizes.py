"""Ablation — how much each base-side cache buys (Figure 2's left side,
decomposed).

The paper's architecture argument is that the base's performance comes
from exactly the components the shadow omits.  This sweep turns them
down one at a time — dentry cache, page cache, buffer cache — and
measures throughput on a cache-friendly workload, quantifying how far a
"de-optimized base" drifts toward shadow territory.
"""

import time

from repro.basefs.filesystem import BaseFilesystem
from repro.bench import make_device, run_ops
from repro.bench.reporting import format_table, print_banner
from repro.workloads import WorkloadGenerator, webserver_profile

N_OPS = 300


def throughput(**kwargs) -> float:
    operations = WorkloadGenerator(webserver_profile(), seed=777).ops(N_OPS)
    fs = BaseFilesystem(make_device(16384), **kwargs)
    start = time.perf_counter()
    run_ops(fs, operations)
    return len(operations) / (time.perf_counter() - start)


CONFIGS = [
    ("full caches (default)", {}),
    ("tiny dentry cache (4)", {"dentry_cache_capacity": 4}),
    ("tiny page cache (8)", {"page_cache_capacity": 8}),
    ("tiny buffer cache (8)", {"buffer_cache_capacity": 8}),
    ("tiny inode cache (4)", {"inode_cache_capacity": 4}),
    ("everything tiny", {
        "dentry_cache_capacity": 4,
        "page_cache_capacity": 8,
        "buffer_cache_capacity": 8,
        "inode_cache_capacity": 4,
    }),
]


def test_cache_size_ablation(benchmark):
    benchmark(throughput)
    rows = []
    results = {}
    for label, kwargs in CONFIGS:
        ops_per_second = throughput(**kwargs)
        results[label] = ops_per_second
        rows.append([label, ops_per_second])
    full = results["full caches (default)"]
    for row in rows:
        row.append(f"{row[1] / full:.2f}x")
    print_banner("Base throughput vs cache capacities (webserver)")
    print(format_table(["configuration", "ops/s", "vs full"], rows))
    # Starving every cache must cost real throughput on this workload.
    assert results["everything tiny"] < full * 0.9


def test_readahead_ablation(benchmark):
    """Read-ahead effect on sequential read throughput."""
    from repro.api import OpenFlags, op

    def build_and_read(readahead_window: int) -> float:
        fs = BaseFilesystem(make_device(16384))
        fs.page_cache.readahead_window = readahead_window
        fd = fs.open("/seq", OpenFlags.CREAT, opseq=1)
        fs.write(fd, b"r" * (256 * 4096), opseq=2)
        fs.commit()
        fs.page_cache.drop_all()
        fs.lseek(fd, 0, 0, opseq=3)
        start = time.perf_counter()
        while fs.read(fd, 4096, opseq=4):
            pass
        elapsed = time.perf_counter() - start
        fs.close(fd, opseq=5)
        return 256 / elapsed

    benchmark.pedantic(build_and_read, args=(4,), rounds=2, iterations=1)
    without = build_and_read(0)
    with_ra = build_and_read(8)
    print_banner("Sequential read throughput: read-ahead off vs window=8")
    print(
        format_table(
            ["configuration", "blocks/s"],
            [["readahead off", without], ["readahead window 8", with_ra]],
        )
    )
    # Read-ahead must not hurt; in this in-memory model the win is small
    # (no seek latency), so the assertion is directional only.
    assert with_ra > without * 0.7
