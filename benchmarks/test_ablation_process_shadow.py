"""Ablation — in-process vs separate-process shadow (§3.2 isolation).

The paper launches the shadow "as a separate userspace process to
ensure the strong isolation of faults".  This benchmark prices that
isolation: the same recovery (fixed window) executed with the shadow
in-process and as a child process over a file-backed image.  The
process mode pays fork/pipe/pickling costs — the fault-containment
premium — while producing identical recovery output.
"""

import os
import tempfile

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.bench.reporting import format_table, print_banner
from repro.blockdev.device import FileBlockDevice
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug
from repro.ondisk.mkfs import mkfs
from repro.workloads import WorkloadGenerator, fileserver_profile

WINDOW_OPS = 100


def run_recovery(in_process: bool) -> tuple[float, list[str]]:
    """Returns (recovery seconds, post-recovery namespace)."""
    with tempfile.NamedTemporaryFile(suffix=".img", delete=False) as handle:
        path = handle.name
    try:
        device = FileBlockDevice(path, block_count=8192)
        mkfs(device)
        hooks = HookPoints()

        def bug(point, ctx):
            if ctx.get("name") == "trigger":
                raise KernelBug("process ablation bug")

        hooks.register("dir.insert", bug)
        from repro.basefs.writeback import WritebackPolicy

        fs = RAEFilesystem(
            device,
            RAEConfig(shadow_in_process=in_process),
            hooks=hooks,
            writeback_policy=WritebackPolicy(
                dirty_page_high_water=100_000, dirty_metadata_high_water=100_000, commit_interval_ops=100_000
            ),
        )
        for operation in WorkloadGenerator(fileserver_profile(), seed=202).ops(
            WINDOW_OPS, include_prepopulation=False
        ):
            if operation.name == "fsync":
                continue
            try:
                operation.apply(fs)
            except Exception:  # noqa: BLE001
                pass
        fs.mkdir("/trigger")
        assert fs.recovery_count == 1
        seconds = fs.stats.recovery.total_seconds[0]
        namespace = fs.readdir("/")
        fs.unmount()
        device.close()
        return seconds, namespace
    finally:
        os.unlink(path)


def test_process_shadow_isolation_premium(benchmark):
    benchmark.pedantic(run_recovery, args=(True,), rounds=3, iterations=1)
    in_process_seconds, in_namespace = run_recovery(True)
    process_seconds, proc_namespace = run_recovery(False)
    premium = process_seconds - in_process_seconds
    print_banner(f"Recovery cost: in-process vs separate-process shadow ({WINDOW_OPS}-op window)")
    print(
        format_table(
            ["shadow execution", "recovery ms"],
            [
                ["in-process (default)", in_process_seconds * 1000],
                ["separate process (paper's isolation)", process_seconds * 1000],
            ],
        )
    )
    print(f"isolation premium: {premium * 1000:.1f} ms per recovery")
    # Identical results, regardless of where the shadow ran.
    assert in_namespace == proc_namespace
    # The premium exists (fork + IPC) but recovery still completes fast.
    assert process_seconds > in_process_seconds
    assert process_seconds < 5.0
