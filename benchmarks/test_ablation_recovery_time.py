"""Ablation — recovery time (§4.3).

"Even though recovery performance is not a primary concern for the
shadow filesystem, recovery time does impact the expected response time
observed by applications with in-flight operations."

Two sweeps:

* recovery latency vs **op-log length** (the window since the last
  commit): replay dominates, so latency grows roughly linearly;
* recovery latency vs **image size**: mount/replay touch per-group
  metadata, so the dependence is mild — the shadow only reads what the
  window needs.
"""

import time

from repro.api import OpenFlags, op
from repro.basefs.hooks import HookPoints
from repro.basefs.writeback import WritebackPolicy
from repro.bench import make_device
from repro.bench.reporting import format_table, print_banner
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug
from repro.workloads import WorkloadGenerator, fileserver_profile

HUGE_INTERVAL = WritebackPolicy(
    dirty_page_high_water=10_000, dirty_metadata_high_water=10_000, commit_interval_ops=100_000
)


def recovery_latency(window_ops: int, block_count: int = 16384) -> tuple[float, int]:
    """Build a window of ``window_ops`` uncommitted ops, then trigger a
    bug and measure the recovery the supervisor performs."""
    hooks = HookPoints()

    def bomb(point, ctx):
        if ctx.get("name") == "trigger-now":
            raise KernelBug("measured failure")

    hooks.register("dir.insert", bomb)
    # A journal sized for the giant uncommitted window this sweep builds
    # (the clamped write-back policy would otherwise commit early).
    device = make_device(block_count, journal_blocks=768)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks, writeback_policy=HUGE_INTERVAL)
    operations = WorkloadGenerator(fileserver_profile(), seed=55).ops(window_ops, include_prepopulation=False)
    for operation in operations:
        if operation.name == "fsync":
            continue  # an fsync is a durability point: it would truncate the window
        try:
            operation.apply(fs)
        except Exception:  # noqa: BLE001 — errno noise is fine
            pass
    window = len(fs.oplog)
    fs.mkdir("/trigger-now")
    assert fs.recovery_count == 1
    return fs.stats.recovery.total_seconds[0], window


def test_recovery_time_vs_oplog_length(benchmark):
    benchmark(recovery_latency, 50)

    rows = []
    latencies = {}
    for window_ops in (10, 50, 200, 800):
        latency, window = recovery_latency(window_ops)
        latencies[window_ops] = latency
        rows.append([window_ops, window, latency * 1000])
    print_banner("Recovery time vs op-log length (uncommitted window)")
    print(format_table(["workload ops", "recorded entries", "recovery ms"], rows))
    # Longer windows must cost more to replay (generous 1.5x guard
    # against timer noise at the small end).
    assert latencies[800] > latencies[10] * 1.5


def test_recovery_time_vs_image_size(benchmark):
    benchmark(recovery_latency, 100, 4096)
    rows = []
    latencies = {}
    for block_count in (4096, 16384, 65536):
        latency, _ = recovery_latency(100, block_count=block_count)
        latencies[block_count] = latency
        rows.append([f"{block_count * 4 // 1024} MiB", block_count, latency * 1000])
    print_banner("Recovery time vs image size (fixed 100-op window)")
    print(format_table(["image", "blocks", "recovery ms"], rows))
    # Image size must matter far less than linearly (16x size, < 8x time).
    assert latencies[65536] < latencies[4096] * 8


def test_recovery_phase_breakdown_is_replay_dominated(benchmark):
    benchmark(recovery_latency, 50)
    hooks = HookPoints()

    def bomb(point, ctx):
        if ctx.get("name") == "trigger-now":
            raise KernelBug("x")

    hooks.register("dir.insert", bomb)
    device = make_device(16384, journal_blocks=768)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks, writeback_policy=HUGE_INTERVAL)
    for operation in WorkloadGenerator(fileserver_profile(), seed=56).ops(400, include_prepopulation=False):
        if operation.name == "fsync":
            continue
        try:
            operation.apply(fs)
        except Exception:  # noqa: BLE001
            pass
    fs.mkdir("/trigger-now")
    recovery = fs.stats.recovery
    print_banner("Recovery phase breakdown (400-op window)")
    print(
        format_table(
            ["phase", "ms", "share"],
            [
                ["contained reboot", recovery.reboot_seconds[0] * 1000,
                 f"{recovery.reboot_seconds[0] / recovery.total_seconds[0]:.0%}"],
                ["shadow replay", recovery.replay_seconds[0] * 1000,
                 f"{recovery.replay_seconds[0] / recovery.total_seconds[0]:.0%}"],
                ["hand-off", recovery.handoff_seconds[0] * 1000,
                 f"{recovery.handoff_seconds[0] / recovery.total_seconds[0]:.0%}"],
            ],
        )
    )
    assert recovery.replay_seconds[0] > recovery.handoff_seconds[0]
