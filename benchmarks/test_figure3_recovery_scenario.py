"""Figure 3's scenario — the three recovery problems, executed.

The paper's problem figure: ops Op0..Op3 complete (visible to the app),
Op4 triggers an error mid-execution.  Recovery must deliver

  ① contained reboot  — the error does not reach the application and
    the machine (here: the supervisor) keeps running;
  ② state reconstruction — the essential states (namespace, file
    contents, inode numbers of completed ops, fd numbers/offsets) reach
    S4 exactly;
  ③ error avoidance — Op4 completes via the shadow (S5) without
    re-triggering the bug on the base.

The benchmark times the full recovery and prints the phase breakdown.
"""

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.bench import make_device
from repro.bench.reporting import format_table, print_banner
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug
from repro.fsck import Fsck
from repro.ondisk.inode import FileType


def build_scenario():
    """Arm the Op4 bug and run Op0..Op3; returns (fs, context)."""
    hooks = HookPoints()

    def op4_bug(point, ctx):
        if ctx.get("name") == "op4-dir":
            raise KernelBug("error while executing Op4", bug_id="figure3")

    hooks.register("dir.insert", op4_bug)
    device = make_device(8192)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)

    fs.mkdir("/op0-dir")                                   # Op0
    fd = fs.open("/op0-dir/op1-file", OpenFlags.CREAT)     # Op1
    fs.write(fd, b"op2 payload " * 64)                     # Op2
    fs.symlink("/op0-dir", "/op3-link")                    # Op3
    observed = {
        "dir_ino": fs.stat("/op0-dir").ino,
        "file_ino": fs.stat("/op0-dir/op1-file").ino,
        "fd": fd,
        "size": fs.stat("/op0-dir/op1-file").size,
    }
    return fs, device, observed


def test_figure3_recovery_scenario(benchmark):
    def scenario():
        fs, device, observed = build_scenario()
        fs.mkdir("/op4-dir")  # Op4: triggers the error -> recovery
        return fs, device, observed

    fs, device, observed = benchmark(scenario)

    # ① contained reboot: we are still running, exactly one recovery.
    assert fs.recovery_count == 1
    event = fs.stats.events[0]

    # ② state reconstruction: completed ops' essential state is identical.
    assert fs.stat("/op0-dir").ino == observed["dir_ino"]
    assert fs.stat("/op0-dir/op1-file").ino == observed["file_ino"]
    assert fs.stat("/op0-dir/op1-file").size == observed["size"]
    assert fs.readlink("/op3-link") == "/op0-dir"
    # the fd survived with its offset: appending continues seamlessly
    assert fs.write(observed["fd"], b"+tail") == 5
    assert fs.stat("/op0-dir/op1-file").size == observed["size"] + 5

    # ③ error avoidance: Op4's effect exists (the shadow executed it).
    assert fs.stat("/op4-dir").ftype == FileType.DIRECTORY
    assert event.discrepancies == 0

    recovery = fs.stats.recovery
    print_banner("Figure 3 scenario: recovery phase breakdown")
    print(
        format_table(
            ["phase", "seconds"],
            [
                ["① contained reboot (journal replay + remount)", recovery.reboot_seconds[0]],
                ["② state reconstruction (shadow replay)", recovery.replay_seconds[0]],
                ["   hand-off (metadata download)", recovery.handoff_seconds[0]],
                ["total", recovery.total_seconds[0]],
            ],
        )
    )
    print(f"ops replayed: {event.replayed_ops} (constrained Op0..Op3 + autonomous Op4)")

    fs.close(observed["fd"])
    fs.unmount()
    assert Fsck(device).run().clean


def test_figure3_error_avoidance_on_base_reexecution(benchmark):
    """Control experiment: re-executing the sequence on the base *does*
    re-trigger the bug — the §2.2 conflict RAE exists to break."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # control: nothing to time
    hooks = HookPoints()

    def op4_bug(point, ctx):
        if ctx.get("name") == "op4-dir":
            raise KernelBug("deterministic: fires every time", bug_id="figure3")

    hooks.register("dir.insert", op4_bug)
    from repro.basefs.filesystem import BaseFilesystem

    device = make_device(8192)
    fs = BaseFilesystem(device, hooks=hooks)
    import pytest

    for attempt in range(3):  # same inputs, same failure, every time
        with pytest.raises(KernelBug):
            fs.mkdir("/op4-dir", opseq=attempt + 10)
