"""Ablation — what does layer-attribution profiling cost?

The layer profiler (:mod:`repro.obs.prof`) is on by default
(``RAEConfig.profile=True``): every supervisor op pays ~20 wrapped
method calls, each two reads of the monotonic clock plus a dict update.
This ablation measures attribution-on vs attribution-off on the
webserver personality and enforces the declared overhead budget.

The budget is deliberately a *budget*, not a noise floor: on an
all-RAM :class:`MemoryBlockDevice` the per-call wrapping overhead is
maximal because the wrapped device/cache calls themselves cost almost
nothing — this is the worst case the profiler can face, and the bound
below is what "cheap enough to stay on by default" means here.  On any
device with real IO latency the relative overhead only shrinks.

Numbers land in ``BENCH_hotpath.json`` via ``rae-bench`` (whose meta
records the attribution arm); this benchmark is the regression guard.
"""

import time

from repro.bench import format_table, make_rae, print_banner, run_ops
from repro.core.supervisor import RAEConfig
from repro.workloads import WorkloadGenerator, webserver_profile

N_OPS = 400
ROUNDS = 5
#: attribution-on may cost at most this factor over attribution-off on
#: the worst-case in-memory device (measured ~1.25x; band allows CI
#: scheduler noise on top).
OVERHEAD_BUDGET = 1.50


def _best_seconds(profile: bool, operations) -> tuple[float, object]:
    """Fastest of ROUNDS fresh runs (min is the noise-robust estimator);
    also returns the last run's filesystem for inspection."""
    best = float("inf")
    fs = None
    for _ in range(ROUNDS):
        fs = make_rae(
            block_count=16384, config=RAEConfig(metrics=True, profile=profile)
        )
        start = time.perf_counter()
        run_ops(fs, operations)
        best = min(best, time.perf_counter() - start)
    return best, fs


def test_prof_overhead_within_budget(benchmark):
    operations = WorkloadGenerator(webserver_profile(), seed=77).ops(N_OPS)

    def run_profiled():
        run_ops(
            make_rae(block_count=16384, config=RAEConfig(metrics=True, profile=True)),
            operations,
        )

    benchmark(run_profiled)

    on_s, on_fs = _best_seconds(True, operations)
    off_s, _ = _best_seconds(False, operations)

    print_banner("Layer-attribution ablation — RAE supervisor, webserver profile")
    print(
        format_table(
            ["configuration", "best seconds", "ops/s", "relative"],
            [
                ["attribution on", on_s, N_OPS / on_s, on_s / off_s],
                ["attribution off", off_s, N_OPS / off_s, 1.0],
            ],
        )
    )
    overhead = on_s / off_s - 1.0
    print(f"attribution overhead (on vs off, worst-case RAM device): {overhead * 100:.1f}%")

    assert on_s <= off_s * OVERHEAD_BUDGET, (
        f"profile=True ({on_s:.4f}s) exceeds the declared overhead budget "
        f"({OVERHEAD_BUDGET:.2f}x) over profile=False ({off_s:.4f}s); either "
        "the wrappers got more expensive or the budget needs a deliberate bump"
    )

    # The profiled run actually attributed: every layer was exercised by
    # the webserver mix and the self-times account for real time.
    summary = on_fs.profiler.layer_summary()
    assert on_fs.profiler.ops > 0
    assert summary["vfs"]["calls"] > 0 and summary["device"]["calls"] > 0
    assert sum(entry["self_seconds"] for entry in summary.values()) > 0.0
