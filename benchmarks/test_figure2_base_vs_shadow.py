"""Figure 2's quantitative claim — common path vs alternative path.

The architecture figure annotates the base side "(performance)" and the
shadow side "(error handling)": the base, with its dentry/inode/page
caches, delayed allocation and asynchronous block layer, must beat the
cache-less, synchronous, check-everything shadow by a wide margin on the
same workloads.  This benchmark measures both implementations on the
four profiles and asserts the base wins everywhere, with the biggest
margins on cache-friendly (read-mostly, metadata-heavy) personalities.
"""

import time

import pytest

from repro.bench import make_base, make_shadow, run_ops
from repro.bench.reporting import format_table, print_banner
from repro.workloads import (
    WorkloadGenerator,
    fileserver_profile,
    metadata_profile,
    varmail_profile,
    webserver_profile,
)

PROFILES = {
    "fileserver": fileserver_profile,
    "varmail": varmail_profile,
    "webserver": webserver_profile,
    "metadata": metadata_profile,
}
N_OPS = 400


def run_profile(name: str, which: str) -> float:
    """ops/second of one implementation on one profile."""
    operations = [
        operation
        for operation in WorkloadGenerator(PROFILES[name](), seed=77).ops(N_OPS)
        if not (which == "shadow" and operation.name == "fsync")
    ]
    fs = make_base(block_count=16384) if which == "base" else make_shadow(block_count=16384)
    start = time.perf_counter()
    run_ops(fs, operations)
    elapsed = time.perf_counter() - start
    return len(operations) / elapsed


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_figure2_common_path_speedup(benchmark, profile_name):
    operations = WorkloadGenerator(PROFILES[profile_name](), seed=77).ops(N_OPS)

    def run_base():
        fs = make_base(block_count=16384)
        run_ops(fs, operations)

    benchmark(run_base)
    base_tput = run_profile(profile_name, "base")
    shadow_tput = run_profile(profile_name, "shadow")
    speedup = base_tput / shadow_tput

    print_banner(f"Figure 2 claim — {profile_name}: base (common path) vs shadow (alternative path)")
    print(
        format_table(
            ["implementation", "ops/s", "relative"],
            [
                ["base (caches, async IO, delalloc)", base_tput, 1.0],
                ["shadow (no caches, sync, full checks)", shadow_tput, shadow_tput / base_tput],
            ],
        )
    )
    print(f"base speedup over shadow: {speedup:.1f}x")
    assert speedup > 1.5, f"base should clearly beat the shadow, got {speedup:.2f}x"


def test_figure2_cache_hit_rates_explain_the_gap(benchmark):
    """The mechanism behind the gap: the base's caches absorb lookups and
    reads that the shadow pays for with device IO every time."""
    operations = WorkloadGenerator(webserver_profile(), seed=78).ops(N_OPS)
    base = make_base(block_count=16384)
    benchmark.pedantic(run_ops, args=(base, operations), rounds=1, iterations=1)

    from repro.blockdev.device import CountingDevice
    from repro.bench import make_device
    from repro.shadowfs.filesystem import ShadowFilesystem

    counted = CountingDevice(make_device(16384))
    shadow = ShadowFilesystem(counted)
    run_ops(shadow, [o for o in operations if o.name != "fsync"])

    base_reads = base.stats.data_reads + base.cache.stats.misses
    print_banner("Figure 2 mechanism: cache effectiveness (webserver)")
    print(
        format_table(
            ["metric", "base", "shadow"],
            [
                ["dentry hit rate", f"{base.dentry_cache.stats.hit_rate:.2f}", "n/a (no cache)"],
                ["buffer cache hit rate", f"{base.cache.stats.hit_rate:.2f}", "n/a"],
                ["page cache hit rate", f"{base.page_cache.stats.hit_rate:.2f}", "n/a"],
                ["device reads", base_reads, counted.reads],
            ],
        )
    )
    assert base.dentry_cache.stats.hit_rate > 0.3
    assert counted.reads > base_reads  # the shadow re-reads what the base caches
