"""The verification budget, spent (§2.3's stand-in).

Runs the bounded-exhaustive refinement check at depth 3: every sequence
of up to three operations from the 12-op alphabet (1,884 sequences)
executes on a fresh shadow and on the spec model, comparing every
outcome and every final state.  Zero divergences is the reproduction's
"the shadow is verified" claim; the benchmark also reports the price of
that claim in sequences/second.
"""

from repro.bench.reporting import print_banner
from repro.spec import BoundedVerifier


def test_exhaustive_refinement_depth3(benchmark):
    def run_depth2():
        return BoundedVerifier(max_depth=2).run()

    benchmark(run_depth2)

    result = BoundedVerifier(max_depth=3).run()
    print_banner("Bounded-exhaustive refinement: shadow vs executable spec")
    print(f"depth 3: {result.sequences_checked} sequences, {result.ops_executed} ops executed")
    print(f"divergences: {len(result.divergences)}")
    for divergence in result.divergences[:5]:
        print(f"  {divergence}")
    assert result.ok
    assert result.sequences_checked == 12 + 144 + 1728
