"""Figure 1 — Number of deterministic bugs by year.

Regenerates the per-year stacked series (2013–2023) from the dataset via
the classifier and checks the paper's qualitative claim: more bugs are
fixed in recent years (testing reveals more vulnerabilities; new kernel
features introduce new bugs).
"""

from repro.bench.reporting import print_banner
from repro.bugstudy import PAPER_YEARS, build_dataset, build_figure1


def test_figure1_bugs_by_year(benchmark):
    records = build_dataset()
    figure = benchmark(build_figure1, records)

    print_banner("Figure 1: Number of deterministic bugs by year")
    print(figure.render())

    assert figure.total == 165
    assert {year: figure.year_total(year) for year in sorted(figure.by_year)} == PAPER_YEARS
    # Rising trend: the 2019-2023 half strictly exceeds 2013-2017.
    early = sum(PAPER_YEARS[y] for y in range(2013, 2018))
    late = sum(PAPER_YEARS[y] for y in range(2019, 2024))
    assert late > early
    # Every consequence class appears somewhere in the series.
    for consequence in ("crash", "nocrash", "warn", "unknown"):
        assert sum(count for _y, count in figure.series(consequence)) > 0
