"""Ablation — availability under bugs (§1, §2.3).

The paper's availability pitch: "when a bug is triggered, the
slow-but-correct shadow takes over, updates state correctly, and then
resumes the base, thus providing high availability."  This benchmark
runs the same bug-ridden workload under three regimes:

* **RAE** — recovery masks every detected error;
* **crash-restart** — the 'traditional' world: a detected error aborts
  the mount; the operator remounts (journal replay) and the application
  retries, losing the uncommitted window;
* **NVP-3** — three-version voting (the §2.1 strawman), which masks the
  fault but pays ~3× on every operation and cannot re-synchronize the
  faulted member.

Reported: operations completed, runtime failures surfaced to the app,
executions performed (the overhead axis), and recoveries.
"""

from repro.api import FsOp
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.bench import make_device
from repro.bench.reporting import format_table, print_banner
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError, KernelBug
from repro.spec.model import SpecFilesystem
from repro.spec.nvp import NVPExecutor
from repro.workloads import WorkloadGenerator, fileserver_profile

N_OPS = 600
BUG_PERIOD = 150  # every Nth page.write hook call crashes (base regimes)
NVP_BUG_PERIOD = 40  # every Nth write() call crashes member 0 (NVP regime)


def make_hooks() -> HookPoints:
    hooks = HookPoints()
    counter = {"n": 0}

    def periodic_bug(point, ctx):
        counter["n"] += 1
        if counter["n"] % BUG_PERIOD == 0:
            raise KernelBug("periodic deterministic bug")

    hooks.register("page.write", periodic_bug)
    return hooks


def workload() -> list[FsOp]:
    return WorkloadGenerator(fileserver_profile(), seed=99).ops(N_OPS)


def run_rae() -> dict:
    fs = RAEFilesystem(make_device(32768), RAEConfig(), hooks=make_hooks())
    completed = failures = 0
    for operation in workload():
        try:
            operation.apply(fs)
            completed += 1
        except FsError:
            completed += 1
        except Exception:  # noqa: BLE001
            failures += 1
    return {
        "regime": "RAE (base + shadow)",
        "completed": completed,
        "surfaced failures": failures,
        "executions": completed + failures,
        "recoveries": fs.recovery_count,
    }


def run_crash_restart() -> dict:
    """A bare base; every runtime error aborts and costs a remount, and
    the application's op is lost (reported as a failure)."""
    device = make_device(32768)
    fs = BaseFilesystem(device, hooks=make_hooks())
    completed = failures = remounts = 0
    seq = 0
    for operation in workload():
        seq += 1
        try:
            operation.apply(fs, opseq=seq)
            completed += 1
        except FsError:
            completed += 1
        except Exception:  # noqa: BLE001 — crash: remount, lose the window
            failures += 1
            remounts += 1
            fs._mounted = False
            fs = BaseFilesystem(device, hooks=fs.hooks)
    return {
        "regime": "crash + remount",
        "completed": completed,
        "surfaced failures": failures,
        "executions": completed + failures,
        "recoveries": remounts,
    }


def run_nvp() -> dict:
    """Three spec-model versions with the bug armed in version 0 only
    (independent-failure assumption, generously granted)."""
    versions = [SpecFilesystem(), SpecFilesystem(), SpecFilesystem()]
    counter = {"n": 0}
    original_write = versions[0].write

    def buggy_write(fd, data, opseq=0):
        counter["n"] += 1
        if counter["n"] % NVP_BUG_PERIOD == 0:
            raise KernelBug("periodic deterministic bug")
        return original_write(fd, data, opseq=opseq)

    versions[0].write = buggy_write
    nvp = NVPExecutor(versions)
    completed = failures = 0
    for index, operation in enumerate(workload()):
        try:
            nvp.apply(operation, opseq=index + 1)
            completed += 1
        except Exception:  # noqa: BLE001
            failures += 1
    return {
        "regime": "NVP-3 (voting)",
        "completed": completed,
        "surfaced failures": failures,
        "executions": nvp.stats.executions,
        "recoveries": len(nvp.faulted),
    }


def test_availability_rae_vs_baselines(benchmark):
    rae = benchmark(run_rae)
    crash = run_crash_restart()
    nvp = run_nvp()

    total_ops = len(workload())
    print_banner(f"Availability under periodic deterministic bugs ({total_ops} ops)")
    headers = ["regime", "completed", "surfaced failures", "executions", "recoveries"]
    print(format_table(headers, [[r[h] for h in headers] for r in (rae, crash, nvp)]))

    # RAE: full availability, ~1x execution cost.
    assert rae["surfaced failures"] == 0
    assert rae["completed"] == total_ops
    assert rae["recoveries"] >= 1
    # Crash-restart: loses operations.
    assert crash["surfaced failures"] >= 1
    # NVP masks the member fault but pays well over 2x executions and
    # permanently retires the faulted member (no state reconstruction).
    assert nvp["surfaced failures"] == 0
    assert nvp["executions"] > 2 * total_ops
    assert nvp["recoveries"] == 1  # one faulted member, never repaired


def test_rae_overhead_without_bugs(benchmark):
    """The other half of the availability claim: in the common case
    (no errors), RAE's recording costs little over the bare base."""
    import time

    operations = workload()

    def run_bare():
        fs = BaseFilesystem(make_device(32768))
        for index, operation in enumerate(operations):
            operation.apply(fs, opseq=index + 1)
            fs.writeback.tick()

    def run_supervised():
        fs = RAEFilesystem(make_device(32768), RAEConfig())
        for operation in operations:
            try:
                operation.apply(fs)
            except FsError:
                pass

    benchmark(run_supervised)
    start = time.perf_counter()
    run_bare()
    bare = time.perf_counter() - start
    start = time.perf_counter()
    run_supervised()
    supervised = time.perf_counter() - start
    overhead = supervised / bare - 1
    print_banner("RAE common-path overhead (no bugs triggered)")
    print(
        format_table(
            ["configuration", "seconds", "overhead"],
            [["bare base", bare, "—"], ["RAE supervisor (recording on)", supervised, f"{overhead:+.1%}"]],
        )
    )
    assert overhead < 1.0, f"recording overhead should be moderate, got {overhead:.1%}"
