"""Ablation — what does observability cost, and what does it record?

Two claims from the observability design (docs/OBSERVABILITY.md):

1. **Disabled means free.**  With ``RAEConfig(metrics=False)`` the
   supervisor's hot path pays one boolean test per operation; there is
   no baseline without the code, so the regression guard here is that
   the disabled configuration is at least as fast as the enabled one
   (within noise) on the figure-2 workload.  The figure-2 benchmark
   itself runs the bare :class:`BaseFilesystem`, which carries *zero*
   instrumentation — its overhead with metrics disabled is structurally
   0%, well under the 5% budget.
2. **Enabled runs leave an artifact.**  The metrics-on run's registry is
   staged and flushed to ``BENCH_obs.json`` via the harness hook, which
   CI uploads — the seed of the perf trajectory.
"""

import time

from repro.bench import (
    emit_obs_section,
    flush_bench_obs,
    format_table,
    make_rae,
    print_banner,
    run_ops,
)
from repro.core.supervisor import RAEConfig
from repro.workloads import WorkloadGenerator, webserver_profile

N_OPS = 400
ROUNDS = 5


def _best_seconds(metrics: bool, operations) -> tuple[float, object]:
    """Fastest of ROUNDS fresh runs (min is the noise-robust estimator);
    also returns the last run's filesystem for snapshot export."""
    best = float("inf")
    fs = None
    for _ in range(ROUNDS):
        fs = make_rae(block_count=16384, config=RAEConfig(metrics=metrics))
        start = time.perf_counter()
        run_ops(fs, operations)
        best = min(best, time.perf_counter() - start)
    return best, fs


def test_obs_overhead_and_bench_obs_emission(benchmark):
    operations = WorkloadGenerator(webserver_profile(), seed=77).ops(N_OPS)

    def run_enabled():
        run_ops(make_rae(block_count=16384, config=RAEConfig(metrics=True)), operations)

    benchmark(run_enabled)

    enabled_s, enabled_fs = _best_seconds(True, operations)
    disabled_s, _ = _best_seconds(False, operations)

    print_banner("Observability ablation — RAE supervisor, webserver profile")
    print(
        format_table(
            ["configuration", "best seconds", "ops/s", "relative"],
            [
                ["metrics enabled", enabled_s, N_OPS / enabled_s, 1.0],
                ["metrics disabled", disabled_s, N_OPS / disabled_s, disabled_s / enabled_s],
            ],
        )
    )
    overhead = enabled_s / disabled_s - 1.0
    print(f"instrumentation overhead (enabled vs disabled): {overhead * 100:.1f}%")

    # The disabled path must not do metric work: allow generous noise but
    # catch any change that makes metrics=False pay for instruments.
    assert disabled_s <= enabled_s * 1.25, (
        f"metrics=False ({disabled_s:.4f}s) should not be slower than "
        f"metrics=True ({enabled_s:.4f}s) beyond noise"
    )

    snapshot = enabled_fs.obs.snapshot()
    assert snapshot["counters"], "enabled run recorded no counters"
    assert any(name.startswith("op.latency.") for name in snapshot["histograms"])

    emit_obs_section(
        "ablation_obs_overhead",
        enabled_fs,
        extra={
            "profile": "webserver",
            "ops": N_OPS,
            "enabled_seconds": enabled_s,
            "disabled_seconds": disabled_s,
        },
    )
    path = flush_bench_obs()
    print(f"wrote {path}")
