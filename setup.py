"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build a PEP 660 editable wheel.  ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on machines with ``wheel``)
installs the package; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
